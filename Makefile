# Convenience targets for the Corleone reproduction.

PYTHON ?= python

.PHONY: install lint lint-fast test bench bench-smoke bench-shard bench-plan trace-report results examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# corlint: the repo's own AST-based invariant analyzer (see
# docs/static_analysis.md).  Exits nonzero on any non-baselined finding.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro --format text

# Diff-aware lint: only files changed since LINT_REF (default HEAD).
# Whole-program rules (CL012, CL014) are skipped on partial scans.
LINT_REF ?= HEAD
lint-fast:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --changed $(LINT_REF)

test: lint
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick substrate microbenches; refreshes the BENCH_substrates.json
# baseline (scalar vs batched feature-evaluation throughput), the
# BENCH_engine.json baseline (checkpoint overhead, event throughput),
# BENCH_faults.json (gateway overhead/recovery), BENCH_obs.json
# (run-telemetry instrumentation overhead), BENCH_shard.json
# (sharded blocking worker-scaling curve), BENCH_plan.json
# (plan-compiler fused blocking + memmap spill) and BENCH_storage.json
# (durable-storage fsync overhead + crash-recovery sweep).
bench-smoke:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_micro_substrates.py --benchmark-only \
		--benchmark-json=benchmarks/results/substrates_benchmark.json
	$(PYTHON) benchmarks/collect_results.py \
		--substrates benchmarks/results/substrates_benchmark.json
	$(PYTHON) benchmarks/collect_results.py --engine
	$(PYTHON) benchmarks/collect_results.py --faults
	$(PYTHON) benchmarks/collect_results.py --obs
	$(PYTHON) benchmarks/collect_results.py --shard
	$(PYTHON) benchmarks/collect_results.py --plan
	$(PYTHON) benchmarks/collect_results.py --storage

# The sharded blocking executor's 1/2/4/8-worker scaling curve and
# merge-determinism check (docs/architecture.md); refreshes
# BENCH_shard.json and benchmarks/results/shard_scaling.txt.
bench-shard:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/collect_results.py --shard

# The plan compiler's fused-blocking speedup and memmap spill
# behaviour, one fresh subprocess per variant for honest peak RSS
# (docs/architecture.md, "The plan compiler"); refreshes
# BENCH_plan.json and benchmarks/results/plan_compiler.txt.
bench-plan:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/collect_results.py --plan

# Render the obs report (docs/observability.md) for the newest run
# directory under the repo — any directory holding a run.json; `make
# bench-smoke` leaves one at benchmarks/results/obs_run.
trace-report:
	@run_dir=$$(find . -path ./.git -prune -o -name run.json \
		-printf '%T@ %h\n' | sort -rn | head -1 | cut -d' ' -f2-); \
	if [ -z "$$run_dir" ]; then \
		echo "no run directories found — run 'make bench-smoke' first"; \
		exit 1; \
	fi; \
	echo "== $$run_dir"; \
	PYTHONPATH=src $(PYTHON) -m repro.obs report "$$run_dir"

results: bench
	$(PYTHON) benchmarks/collect_results.py

# Run every example end-to-end (several minutes of simulated crowdwork).
examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf benchmarks/results benchmarks/.cache .pytest_cache .hypothesis .corlint_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
