"""Crowd profiling & budget planning: the paper's §10 extensions, live.

Two questions the paper leaves as future work, answered by this repo:

1. *What is my crowd's error rate, and should I pay for stronger
   voting?* — `ProfilingLabelingService` estimates the per-answer error
   rate purely from answer disagreement (no gold labels needed) and can
   adapt the voting scheme on the fly.
2. *How should a fixed budget be split across pipeline phases?* —
   `BudgetPlan.from_total` allocates dollars to blocking / matching /
   estimation / reduction with rollover, and each phase degrades
   gracefully when its allocation runs dry.

Run:  python examples/crowd_profiling.py
"""

import numpy as np

from repro import SimulatedCrowd, load_dataset, scaled_config
from repro.config import CrowdConfig
from repro.core.budgeting import BudgetPlan
from repro.core.pipeline import Corleone
from repro.crowd.profiler import AdaptivePolicy, ProfilingLabelingService
from repro.data.pairs import Pair
from repro.metrics import prf1


def demo_profiling() -> None:
    print("== 1. Profiling an unknown crowd ==")
    matches = {Pair(f"a{i}", f"b{i}") for i in range(500)}
    questions = [Pair(f"a{i}", f"b{i + (i % 3 == 0)}") for i in range(400)]

    for true_rate in (0.02, 0.12, 0.25):
        crowd = SimulatedCrowd(matches, error_rate=true_rate,
                               rng=np.random.default_rng(1))
        service = ProfilingLabelingService(
            crowd, CrowdConfig(), policy=AdaptivePolicy(),
            min_questions=40,
        )
        service.label_all(questions)
        profile = service.profile
        print(f"  true error {true_rate:.0%}: estimated "
              f"{profile['error_rate']:.1%} "
              f"[{profile['error_rate_low']:.1%}, "
              f"{profile['error_rate_high']:.1%}] "
              f"from {profile['questions_observed']} questions, "
              f"{service.tracker.answers} answers paid")


def demo_budget_plan() -> None:
    print("\n== 2. Splitting a budget across phases ==")
    dataset = load_dataset("citations", seed=4)
    plan = BudgetPlan.from_total(40.0)
    print(f"  plan for $40: blocking=${plan.blocking:.1f} "
          f"matching=${plan.matching:.1f} "
          f"estimation=${plan.estimation:.1f} "
          f"reduction=${plan.reduction:.1f}")

    crowd = SimulatedCrowd(dataset.matches, error_rate=0.1,
                           rng=np.random.default_rng(2))
    config = scaled_config(t_b=20_000).replace(max_pipeline_iterations=1)
    pipeline = Corleone(config, crowd, rng=np.random.default_rng(0))
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels, budget_plan=plan)

    p, r, f1 = prf1(result.predicted_matches, dataset.matches)
    print(f"  spent ${result.cost.dollars:.2f} of ${plan.total:.2f}; "
          f"true F1 {f1:.1%} (stop: {result.stop_reason})")


if __name__ == "__main__":
    demo_profiling()
    demo_budget_plan()
