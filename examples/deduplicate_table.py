"""Deduplicating a single dirty table — the paper's "other EM setting".

A mailing list, a product catalog after an import, a CRM after a merger:
one table, unknown duplicates.  `Deduplicator` reduces the problem to
Corleone's two-table pipeline (self-pairs answered for free, unordered
pairs canonicalized) and returns duplicate *clusters*, the transitive
closure a dedup user actually wants.

Run:  python examples/deduplicate_table.py
"""

import numpy as np

from repro import Record, SimulatedCrowd, Table, scaled_config
from repro.core.dedup import Deduplicator, canonical_pair
from repro.synth.restaurants import RESTAURANT_SCHEMA, generate_restaurants


def build_dirty_table():
    """One table containing both guides' listings -> hidden duplicates."""
    dataset = generate_restaurants(n_a=50, n_b=40, n_matches=15, seed=21)
    table = Table("listings", RESTAURANT_SCHEMA)
    for source in (dataset.table_a, dataset.table_b):
        for record in source:
            table.add(Record(f"{source.name}_{record.record_id}",
                             record.values))
    duplicates = {
        canonical_pair(f"fodors_{p.a_id}", f"zagat_{p.b_id}")
        for p in dataset.matches
    }
    return table, duplicates


def main() -> None:
    table, duplicates = build_dirty_table()
    print(f"{len(table)} listings, {len(duplicates)} hidden duplicate "
          f"pairs\n")

    crowd = SimulatedCrowd(duplicates, error_rate=0.08,
                           rng=np.random.default_rng(5))
    dedup = Deduplicator(scaled_config(t_b=10_000), crowd,
                         rng=np.random.default_rng(1))

    ids = table.record_ids
    seeds = dict.fromkeys(sorted(duplicates)[:2], True)
    seeds[canonical_pair(ids[0], ids[7])] = False
    seeds[canonical_pair(ids[1], ids[9])] = False

    result = dedup.run(table, seeds, mode="one_iteration")

    found = result.duplicate_pairs & duplicates
    print(f"found {len(result.duplicate_pairs)} duplicate pairs "
          f"({len(found)} correct of {len(duplicates)} planted)")
    print(f"crowd cost ${result.cost.dollars:.2f}, "
          f"{result.cost.pairs_labeled} pairs labelled\n")

    print("largest clusters:")
    for cluster in result.clusters[:5]:
        names = [str(table[rid].get("name")) for rid in cluster]
        print(f"  {cluster} -> {names}")


if __name__ == "__main__":
    main()
