"""Product-catalog matching: the paper's hardest workload, step by step.

Matches an Amazon-style catalog against a Walmart-style one, where
product *families* (same brand/line, different capacities) create hard
negatives, and the second store mangles model numbers and prices.  The
script surfaces what each Corleone module did: the blocking rules it
invented, the matcher's confidence trajectory, the accuracy estimate and
the per-iteration telemetry — the view a practitioner would want before
trusting the output.

Run:  python examples/products_catalog.py
"""

import numpy as np

from repro import Corleone, SimulatedCrowd, load_dataset, scaled_config
from repro.evaluation import score_iteration


def main() -> None:
    dataset = load_dataset("products", seed=3)
    stats = dataset.stats()
    print(f"products: |A|={stats.size_a} |B|={stats.size_b} "
          f"gold matches={stats.n_matches} "
          f"(cartesian {stats.cartesian:,} pairs)\n")

    crowd = SimulatedCrowd(dataset.matches, error_rate=0.10,
                           rng=np.random.default_rng(11))
    config = scaled_config(t_b=20_000).replace(max_pipeline_iterations=2)
    pipeline = Corleone(config, crowd, rng=np.random.default_rng(1))
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels)

    # ------------------------------------------------------------------
    # 1. What the Blocker did.
    # ------------------------------------------------------------------
    blocker = result.blocker
    print("== Blocking ==")
    print(f"cartesian {blocker.cartesian:,} -> umbrella "
          f"{blocker.umbrella_size:,} "
          f"({blocker.reduction_ratio:.2%} kept), "
          f"${blocker.dollars:.2f}, {blocker.pairs_labeled} pairs labelled")
    print(f"{blocker.n_candidate_rules} candidate rules extracted; "
          f"{len(blocker.applied_rules)} applied:")
    for rule in blocker.applied_rules:
        print(f"  {rule}")

    # ------------------------------------------------------------------
    # 2. What each iteration did.
    # ------------------------------------------------------------------
    print("\n== Iterations ==")
    for record in result.iterations:
        conf = record.matcher.confidence_history
        print(f"iteration {record.index}: "
              f"{record.matcher_pairs_labeled} pairs for training, "
              f"stopped by '{record.matcher.stop_reason}' after "
              f"{record.matcher.n_iterations} rounds "
              f"(conf {conf[0]:.2f} -> {conf[-1]:.2f})")
        if record.estimate is not None:
            est = record.estimate
            print(f"  crowd estimate: P={est.precision:.1%} "
                  f"R={est.recall:.1%} F1={est.f1:.1%} "
                  f"using {record.estimation_pairs_labeled} labels, "
                  f"{len(est.applied_rules)} reduction rules")
        truth = score_iteration(record, dataset)
        print(f"  true accuracy : P={truth.precision:.1%} "
              f"R={truth.recall:.1%} F1={truth.f1:.1%}")
        if record.difficult_size:
            print(f"  difficult set for next iteration: "
                  f"{record.difficult_size} pairs")

    # ------------------------------------------------------------------
    # 3. The bottom line.
    # ------------------------------------------------------------------
    print(f"\nstop reason: {result.stop_reason}")
    print(f"total: ${result.cost.dollars:.2f}, "
          f"{result.cost.pairs_labeled} pairs labelled, "
          f"{result.cost.hits} HITs posted")
    truth = dataset.matches
    predicted = result.predicted_matches
    tp = len(predicted & truth)
    print(f"final true F1: "
          f"{2 * tp / (len(predicted) + len(truth)):.1%}")

    # ------------------------------------------------------------------
    # 4. Why did it match these?  (forest-path explanations)
    # ------------------------------------------------------------------
    from repro.evaluation import explain_pair
    forest = result.iterations[0].matcher.forest
    candidates = result.candidates
    example_match = next(
        (pair for pair in sorted(predicted & truth)
         if pair in candidates), None,
    )
    if example_match is not None:
        print("\n== Why this pair matched ==")
        explanation = explain_pair(forest, candidates, example_match)
        print(explanation.to_text())


if __name__ == "__main__":
    main()
