"""The retailer scenario of Example 3.1: many categories, one crowd.

The paper motivates hands-off crowdsourcing with a retailer that must
match products in 500+ categories — 500 separate EM problems that no
developer team could configure by hand.  `MultiTaskRunner` runs a batch
of such tasks against a single crowd platform, splitting an overall
budget across categories by their Cartesian sizes.

This demo uses eight small categories (four dataset families x two
seeds); scale the loop up and the code path is identical.

Run:  python examples/retail_categories.py
"""

import numpy as np

from repro import EMTask, MultiTaskRunner, SimulatedCrowd, scaled_config
from repro.metrics import prf1
from repro.synth import (
    generate_citations,
    generate_products,
    generate_restaurants,
    generate_songs,
)


def build_categories():
    """Eight EM tasks with their gold matches (for crowd + scoring)."""
    generators = {
        "home": lambda seed: generate_restaurants(
            n_a=60, n_b=45, n_matches=14, seed=seed),
        "media": lambda seed: generate_citations(
            n_a=40, n_b=260, n_matches=60, seed=seed),
        "electronics": lambda seed: generate_products(
            n_a=50, n_b=260, n_matches=16, seed=seed),
        "music": lambda seed: generate_songs(
            n_a=50, n_b=240, n_matches=18, seed=seed),
    }
    tasks, gold = [], {}
    for family, generate in generators.items():
        for seed in (1, 2):
            dataset = generate(seed)
            name = f"{family}_{seed}"
            tasks.append(EMTask(
                name=name,
                table_a=dataset.table_a,
                table_b=dataset.table_b,
                seed_labels=dataset.seed_labels,
            ))
            gold[name] = set(dataset.matches)
    return tasks, gold


def main() -> None:
    tasks, gold = build_categories()
    all_matches = set().union(*gold.values())
    crowd = SimulatedCrowd(all_matches, error_rate=0.1,
                           rng=np.random.default_rng(3))

    runner = MultiTaskRunner(
        scaled_config(t_b=8000).replace(max_pipeline_iterations=1),
        crowd, seed=0,
    )
    print(f"running {len(tasks)} categories under a shared $80 budget\n")
    batch = runner.run(tasks, total_budget=80.0, mode="one_iteration")

    print(f"{'category':16s} {'pairs':>8s} {'cost':>8s} "
          f"{'matches':>8s} {'true F1':>8s}")
    for outcome in batch.outcomes:
        _, _, f1 = prf1(outcome.predicted_matches, gold[outcome.task.name])
        print(f"{outcome.task.name:16s} "
              f"{outcome.task.cartesian:8,d} "
              f"${outcome.dollars:7.2f} "
              f"{len(outcome.predicted_matches):8d} "
              f"{f1:8.1%}")

    print(f"\ntotal: ${batch.total_dollars:.2f}, "
          f"{batch.total_pairs_labeled} pairs labelled, "
          f"{batch.total_matches} matches found — "
          "zero developer configuration per category.")


if __name__ == "__main__":
    main()
