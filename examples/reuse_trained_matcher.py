"""Next month's catalog: reuse a trained matcher without the crowd.

Example 3.1 notes that once an EM solution is trained it can match
future products of the same category automatically.  This script trains
once (paying the simulated crowd), persists the certified blocking rules
and the forest to JSON, then matches a *fresh* batch for $0 — and uses
the drift report to decide when the free ride should end.

Run:  python examples/reuse_trained_matcher.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Corleone,
    SimulatedCrowd,
    build_feature_library,
    drift_report,
    reapply_matcher,
    scaled_config,
)
from repro.metrics import prf1
from repro.persistence import load_forest, load_rules, save_forest, save_rules
from repro.synth import generate_restaurants


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="corleone_artifacts_"))

    # ------------------------------------------------------------------
    # 1. Train once, with the crowd.
    # ------------------------------------------------------------------
    march = generate_restaurants(n_a=120, n_b=90, n_matches=30, seed=41)
    crowd = SimulatedCrowd(march.matches, error_rate=0.08,
                           rng=np.random.default_rng(2))
    config = scaled_config(t_b=4000).replace(max_pipeline_iterations=1)
    pipeline = Corleone(config, crowd, rng=np.random.default_rng(3))
    result = pipeline.run(march.table_a, march.table_b,
                          march.seed_labels, mode="one_iteration")
    p, r, f1 = prf1(result.predicted_matches, march.matches)
    print(f"March (trained with crowd): F1={f1:.1%}, "
          f"cost ${result.cost.dollars:.2f}")

    # Persist what the run learned.
    forest = result.iterations[0].matcher.forest
    save_rules(result.blocker.applied_rules, workdir / "blocking.json")
    save_forest(forest, workdir / "forest.json")
    training_confidence = float(
        forest.confidence(result.candidates.features).mean()
    )
    print(f"saved artifacts to {workdir} "
          f"(training mean confidence {training_confidence:.2f})\n")

    # ------------------------------------------------------------------
    # 2. April: same category, new listings — match for free.
    # ------------------------------------------------------------------
    april = generate_restaurants(n_a=120, n_b=90, n_matches=30, seed=42)
    library = build_feature_library(april.table_a, april.table_b)
    reapplied = reapply_matcher(
        april.table_a, april.table_b, library,
        load_rules(workdir / "blocking.json"),
        load_forest(workdir / "forest.json"),
    )
    p, r, f1 = prf1(reapplied.predicted_matches, april.matches)
    print(f"April (reused, $0 crowd): F1={f1:.1%}, "
          f"umbrella {reapplied.umbrella_size:,} of "
          f"{reapplied.cartesian:,} pairs")

    report = drift_report(reapplied,
                          training_mean_confidence=training_confidence)
    print(f"drift: confidence {report.current_mean_confidence:.2f} "
          f"(drop {report.confidence_drop:+.3f}), "
          f"{report.low_confidence_fraction:.0%} low-confidence pairs "
          f"-> refresh {'RECOMMENDED' if report.refresh_recommended else 'not needed'}")


if __name__ == "__main__":
    main()
