"""Budget-capped matching: the journalist's $15 (Section 1, Section 3).

The paper motivates hands-off crowdsourcing with a journalist who can
pay, say, $500 on Mechanical Turk and nothing more.  Corleone supports
this directly: set ``budget`` in the config and the pipeline stops
gracefully when the money runs out, returning whatever it has labelled
so far.  This script compares an uncapped citations run against tight
budgets, and also shows the cheaper run modes (single-iteration /
blocker+matcher only).

Run:  python examples/budget_limited_run.py
"""

import numpy as np

from repro import Corleone, SimulatedCrowd, scaled_config
from repro.metrics import prf1
from repro.synth import generate_citations


def load_dataset_small():
    """A reduced citations task so all five runs finish in minutes."""
    return generate_citations(n_a=150, n_b=1200, n_matches=250, seed=9)


def run(dataset, budget=None, mode="full", seed=5):
    crowd = SimulatedCrowd(dataset.matches, error_rate=0.1,
                           rng=np.random.default_rng(seed))
    config = scaled_config(t_b=12_000).replace(
        budget=budget, max_pipeline_iterations=1
    )
    pipeline = Corleone(config, crowd, rng=np.random.default_rng(seed))
    return pipeline.run(dataset.table_a, dataset.table_b,
                        dataset.seed_labels, mode=mode)


def describe(label, dataset, result):
    p, r, f1 = prf1(result.predicted_matches, dataset.matches)
    print(f"{label:28s} ${result.cost.dollars:7.2f}  "
          f"pairs={result.cost.pairs_labeled:5d}  "
          f"F1={f1:.1%}  stop={result.stop_reason}")


def main() -> None:
    dataset = load_dataset_small()
    print(f"citations: {len(dataset.table_a)} x {len(dataset.table_b)} "
          f"records, {len(dataset.matches)} gold matches\n")
    print(f"{'run':28s} {'cost':>8s}  {'labels':>10s}  quality")

    describe("uncapped, full pipeline", dataset, run(dataset))
    describe("budget $30", dataset, run(dataset, budget=30.0))
    describe("budget $15", dataset, run(dataset, budget=15.0))
    describe("single iteration", dataset,
             run(dataset, mode="one_iteration"))
    describe("blocker+matcher only", dataset,
             run(dataset, mode="blocker_matcher"))

    print("\nA tight budget trades recall for money; the run modes trade "
          "accuracy estimation away entirely.")


if __name__ == "__main__":
    main()
