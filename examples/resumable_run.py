"""Checkpointed runs: kill the pipeline mid-flight, resume, same answer.

A hands-off run spends real crowd money, so losing one to a crash is
losing dollars.  Giving ``Corleone`` a ``run_dir`` makes every stage
boundary and matcher iteration durable: the directory holds the run's
inputs (``run.json``), the blocked candidate set (``candidates.npz``),
the latest resumable state (``checkpoint.json``) and a structured event
trace (``trace.jsonl``).  ``Corleone.resume`` continues a killed run —
label cache, cost ledger and per-stage RNG streams restored — to a
result bit-identical to the uninterrupted one, paying only for the
labels the crashed run had not bought yet.  See docs/architecture.md.

Run:  python examples/resumable_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Corleone, SimulatedCrowd, scaled_config
from repro.engine import EVENT_CHECKPOINT_WRITTEN, ProgressReporter
from repro.engine.events import read_trace
from repro.synth import generate_restaurants


class SimulatedCrash(Exception):
    """Stands in for the process dying mid-run."""


def make_crowd(dataset):
    """A fresh simulated crowd over the dataset's ground truth."""
    return SimulatedCrowd(dataset.matches, error_rate=0.05,
                          rng=np.random.default_rng(11))


def crash_after(n_checkpoints):
    """An event sink that "kills" the run after n checkpoint writes.

    The checkpoint file is written before the event fires, so the crash
    always lands just after a durable point — the worst-case a real
    kill signal could do is strictly milder.
    """
    seen = [0]

    def sink(event):
        if event.name == EVENT_CHECKPOINT_WRITTEN:
            seen[0] += 1
            if seen[0] >= n_checkpoints:
                raise SimulatedCrash()

    return sink


def main():
    """Run, crash, resume — and verify the answer did not change."""
    dataset = generate_restaurants(n_a=100, n_b=80, n_matches=30, seed=7)
    config = scaled_config(t_b=6000, max_pipeline_iterations=1)

    print("=== uninterrupted reference run (no run_dir)")
    reference = Corleone(config, make_crowd(dataset), seed=42).run(
        dataset.table_a, dataset.table_b, dataset.seed_labels)
    print(f"    {len(reference.predicted_matches)} matches, "
          f"${reference.cost.dollars:.2f} spent")

    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "corleone-run"

        print("=== checkpointed run, crashing after 3 checkpoints")
        pipeline = Corleone(config, make_crowd(dataset), seed=42,
                            run_dir=run_dir)
        pipeline.bus.subscribe(ProgressReporter())
        pipeline.bus.subscribe(crash_after(3))
        try:
            pipeline.run(dataset.table_a, dataset.table_b,
                         dataset.seed_labels)
        except SimulatedCrash:
            print("    crashed (as scripted); run directory holds:")
            for artifact in sorted(run_dir.iterdir()):
                print(f"      {artifact.name}")

        print("=== resuming from the run directory")
        resumed = Corleone.resume(run_dir, make_crowd(dataset))
        print(f"    {len(resumed.predicted_matches)} matches, "
              f"${resumed.cost.dollars:.2f} spent, "
              f"stop reason: {resumed.stop_reason}")

        same = (resumed.predicted_matches == reference.predicted_matches
                and resumed.cost.dollars == reference.cost.dollars)
        print(f"    identical to the uninterrupted run: {same}")

        events = read_trace(run_dir / "trace.jsonl")
        labels = sum(1 for e in events if e.name == "labels_purchased")
        print(f"=== trace: {len(events)} events, "
              f"{labels} label purchases recorded")


if __name__ == "__main__":
    main()
