"""Quickstart: hands-off entity matching in ~20 lines.

Generates the restaurants dataset (a Fodors/Zagat stand-in), wires a
simulated crowd to its ground truth, and lets Corleone run the entire EM
workflow — no blocking rules, no training data, no thresholds supplied
by you.  The only user inputs are the two tables and four seed examples,
exactly as in the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Corleone, SimulatedCrowd, load_dataset, scaled_config


def main() -> None:
    dataset = load_dataset("restaurants", seed=7)
    print(f"Matching {dataset.table_a.name} ({len(dataset.table_a)} rows) "
          f"vs {dataset.table_b.name} ({len(dataset.table_b)} rows)")
    print(f"Instruction to the crowd: {dataset.instruction!r}\n")

    # The crowd: simulated workers who answer wrongly 10% of the time.
    crowd = SimulatedCrowd(dataset.matches, error_rate=0.10,
                           rng=np.random.default_rng(42))

    pipeline = Corleone(scaled_config(t_b=20_000), crowd,
                        rng=np.random.default_rng(0))
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels)

    print(f"Predicted matches : {len(result.predicted_matches)}")
    print(f"Crowd cost        : ${result.cost.dollars:.2f} "
          f"({result.cost.pairs_labeled} pairs labelled, "
          f"{result.cost.answers} answers)")
    if result.estimate is not None:
        est = result.estimate
        print(f"Crowd-estimated   : P={est.precision:.1%} "
              f"R={est.recall:.1%} F1={est.f1:.1%} "
              f"(margins ±{est.eps_precision:.3f}/±{est.eps_recall:.3f})")

    # Only the experimenter gets to peek at gold labels:
    truth = dataset.matches
    predicted = result.predicted_matches
    tp = len(predicted & truth)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(truth)
    print(f"True accuracy     : P={precision:.1%} R={recall:.1%}")


if __name__ == "__main__":
    main()
