"""Bring-your-own-data: matching two CSV files with a custom schema.

Everything in the other examples uses the built-in dataset generators;
this one walks the path a real user takes: CSV files on disk, a schema
declaration, four seed examples, and a crowd.  (Here the "crowd" is a
tiny rule of thumb standing in for human workers — plug in your own
``CrowdPlatform`` to integrate a real labelling workforce.)

Run:  python examples/custom_csv_tables.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AttrType,
    Corleone,
    Pair,
    Record,
    Schema,
    Table,
    read_csv_table,
    scaled_config,
    write_csv_table,
)
from repro.crowd.base import CrowdPlatform, WorkerAnswer

SCHEMA = Schema.from_pairs([
    ("name", AttrType.STRING),
    ("city", AttrType.STRING),
    ("employees", AttrType.NUMERIC),
])

COMPANIES_A = [
    ("a1", "acme widgets incorporated", "springfield", 120.0),
    ("a2", "globex corporation", "cypress creek", 4000.0),
    ("a3", "initech software", "austin", 300.0),
    ("a4", "hooli xyz", "palo alto", 9000.0),
    ("a5", "pied piper", "palo alto", 12.0),
    ("a6", "stark industries", "new york", 25000.0),
]

COMPANIES_B = [
    ("b1", "acme widgets inc.", "springfield", 118.0),
    ("b2", "globex corp", "cypress creek", 4100.0),
    ("b3", "initech", "austin", 295.0),
    ("b4", "hooli", "palo alto", 9100.0),
    ("b5", "aviato", "palo alto", 3.0),
    ("b6", "wayne enterprises", "gotham", 30000.0),
]

TRUE_MATCHES = {Pair("a1", "b1"), Pair("a2", "b2"), Pair("a3", "b3"),
                Pair("a4", "b4")}


class RuleOfThumbCrowd(CrowdPlatform):
    """A stand-in 'worker': fuzzy name+city comparison, occasionally lazy."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._asked = 0

    def ask(self, pair: Pair) -> WorkerAnswer:
        from repro.features.similarity import monge_elkan
        self._asked += 1
        # In reality this is a human looking at the two records; we look
        # them up from the module-level data for the demo.
        a = dict((r[0], r) for r in COMPANIES_A)[pair.a_id]
        b = dict((r[0], r) for r in COMPANIES_B)[pair.b_id]
        similar = monge_elkan(a[1], b[1]) > 0.7 and a[2] == b[2]
        if self._rng.random() < 0.03:  # 3% careless answers
            similar = not similar
        return WorkerAnswer(pair, similar, worker_id=self._asked)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="corleone_csv_"))

    # 1. The user's CSVs (we write them first so the example is
    #    self-contained; normally they already exist).
    for name, rows in (("a.csv", COMPANIES_A), ("b.csv", COMPANIES_B)):
        table = Table(name.removesuffix(".csv"), SCHEMA, [
            Record(rid, {"name": n, "city": c, "employees": e})
            for rid, n, c, e in rows
        ])
        write_csv_table(table, workdir / name)
    print(f"wrote demo CSVs to {workdir}")

    # 2. Load them back the way a user would.
    table_a = read_csv_table(workdir / "a.csv", "vendors", SCHEMA)
    table_b = read_csv_table(workdir / "b.csv", "registry", SCHEMA)

    # 3. Seed examples: two matches, two non-matches.
    seeds = {
        Pair("a1", "b1"): True,
        Pair("a2", "b2"): True,
        Pair("a1", "b6"): False,
        Pair("a5", "b4"): False,
    }

    # 4. Hands-off matching.
    pipeline = Corleone(scaled_config(t_b=10_000), RuleOfThumbCrowd(),
                        rng=np.random.default_rng(0))
    result = pipeline.run(table_a, table_b, seeds)

    print(f"\npredicted matches ({len(result.predicted_matches)}):")
    for pair in sorted(result.predicted_matches):
        name_a = table_a[pair.a_id].get("name")
        name_b = table_b[pair.b_id].get("name")
        marker = "✓" if pair in TRUE_MATCHES else "✗"
        print(f"  {marker} {name_a!r}  <->  {name_b!r}")
    print(f"\ncrowd cost: ${result.cost.dollars:.2f} "
          f"({result.cost.pairs_labeled} pairs)")


if __name__ == "__main__":
    main()
