"""Standalone accuracy estimation on skewed data (Section 6).

You already have a matcher's predictions over a candidate set and want
to know how good they are — but matches are only ~1% of pairs, so naive
random sampling would need a five-digit number of crowd labels to pin
recall down.  This script uses Corleone's Accuracy Estimator directly,
first in naive mode (no reduction rules), then with reduction rules
extracted from the matcher's own forest, and compares label bills.

Run:  python examples/accuracy_estimation.py
"""

import numpy as np

from repro import (
    AccuracyEstimator,
    CandidateSet,
    LabelingService,
    Pair,
    PerfectCrowd,
    scaled_config,
    train_forest,
)
from repro.metrics import confusion_from_labels
from repro.rules.statistics import required_sample_size


def build_world(n=6000, density=0.012, seed=0):
    """A skewed candidate universe and an imperfect trained matcher."""
    rng = np.random.default_rng(seed)
    features = rng.random((n, 5))
    score = features[:, 0] * features[:, 1] + 0.1 * features[:, 2]
    labels = score > np.quantile(score, 1 - density)
    pairs = [Pair(f"a{i}", f"b{i}") for i in range(n)]
    candidates = CandidateSet(pairs, features, list("vwxyz"))
    matches = {pairs[i] for i in np.flatnonzero(labels)}

    # Train a forest on a modest biased sample -> realistic, imperfect.
    config = scaled_config()
    rows = np.concatenate([
        rng.choice(n, size=500, replace=False),
        np.flatnonzero(labels)[:40],
    ])
    forest = train_forest(candidates.features[rows], labels[rows],
                          config.forest, rng)
    return candidates, matches, labels, forest


def main() -> None:
    candidates, matches, labels, forest = build_world()
    predictions = forest.predict(candidates.features)
    truth = confusion_from_labels(predictions, labels)
    density = labels.mean()
    print(f"{len(candidates)} candidate pairs, "
          f"{int(labels.sum())} true matches "
          f"(density {density:.2%})")
    print(f"hidden truth: P={truth.precision:.1%} R={truth.recall:.1%} "
          f"F1={truth.f1:.1%}\n")

    naive_need = int(
        required_sample_size(0.8, 0.05, int(labels.sum())) / density
    )
    print(f"naive sampling would need roughly {naive_need:,} labels to "
          f"pin recall within ±0.05\n")

    config = scaled_config()
    for use_rules in (False, True):
        crowd = PerfectCrowd(matches, rng=np.random.default_rng(7))
        service = LabelingService(crowd, config.crowd)
        estimator = AccuracyEstimator(config, service,
                                      np.random.default_rng(7))
        estimate = estimator.estimate(
            candidates, predictions, forest if use_rules else None
        )
        mode = "with reduction rules" if use_rules else "naive sampling  "
        print(f"{mode}: P={estimate.precision:.1%} "
              f"R={estimate.recall:.1%} "
              f"(±{estimate.eps_precision:.3f}/±{estimate.eps_recall:.3f}) "
              f"using {estimate.n_labeled:,} labels, "
              f"{len(estimate.applied_rules)} rules, "
              f"converged={estimate.converged}")


if __name__ == "__main__":
    main()
