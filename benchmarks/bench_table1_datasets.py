"""Table 1 — dataset statistics.

Regenerates the paper's Table 1 (|A|, |B|, # matches) for the synthetic
stand-ins at both bench scale (used by all other benches) and the paper's
original scale, and times dataset generation.
"""

from __future__ import annotations

from _common import DATASETS, save_table
from repro.synth import load_dataset
from repro.synth.registry import PAPER_SCALE


def test_table1_dataset_statistics(runs, benchmark):
    def generate_bench_datasets():
        return [runs.dataset(name) for name in DATASETS]

    datasets = benchmark.pedantic(generate_bench_datasets, rounds=1,
                                  iterations=1)

    rows = []
    for dataset in datasets:
        stats = dataset.stats()
        paper_a, paper_b, paper_m = PAPER_SCALE[dataset.name]
        rows.append([
            dataset.name, stats.size_a, stats.size_b, stats.n_matches,
            f"{stats.positive_density:.5%}",
            f"{paper_a}x{paper_b} ({paper_m})",
        ])
        # Invariants the rest of the suite relies on.
        assert stats.n_matches >= 4
        assert stats.size_a * stats.size_b > 0

    save_table(
        "table1_datasets",
        "Table 1: data sets (bench scale; paper scale in last column)",
        ["dataset", "|A|", "|B|", "#matches", "density", "paper |A|x|B| (#m)"],
        rows,
    )

    # The size *ratios* of the paper are preserved at bench scale.
    bench = {d.name: d.stats() for d in datasets}
    assert bench["citations"].size_b > 5 * bench["citations"].size_a
    assert bench["products"].size_b > 5 * bench["products"].size_a
    assert bench["restaurants"].size_a < 600


def test_table1_paper_scale_generation(benchmark):
    """Generating the full-size citations tables stays tractable."""
    dataset = benchmark.pedantic(
        lambda: load_dataset("citations", scale="paper", seed=0),
        rounds=1, iterations=1,
    )
    stats = dataset.stats()
    assert (stats.size_a, stats.size_b, stats.n_matches) == \
        PAPER_SCALE["citations"]
