"""Figure 2 — extracting negative rules from a random forest.

Recreates the paper's toy example: a forest over book pairs whose trees
test isbn_match / #pages_match / publisher_match-style features, from
which every root-to-"no"-leaf path becomes a candidate blocking rule.
"""

from __future__ import annotations

import numpy as np

from _common import save_table
from repro.config import ForestConfig
from repro.forest.forest import train_forest
from repro.rules.extraction import extract_negative_rules, extract_positive_rules

FEATURES = ["isbn_match", "pages_match", "title_sim", "publisher_match"]


def _toy_books(n: int = 600, seed: int = 0):
    """Book pairs: a match needs matching ISBNs and page counts."""
    rng = np.random.default_rng(seed)
    isbn = (rng.random(n) < 0.3).astype(float)
    pages = (rng.random(n) < 0.5).astype(float)
    title = rng.random(n)
    publisher = (rng.random(n) < 0.6).astype(float)
    x = np.column_stack([isbn, pages, title, publisher])
    y = (isbn > 0.5) & (pages > 0.5)
    return x, y


def test_figure2_negative_rule_extraction(benchmark):
    x, y = _toy_books()
    rng = np.random.default_rng(1)
    forest = train_forest(x, y, ForestConfig(n_trees=2, max_depth=3), rng)

    negative = benchmark.pedantic(
        lambda: extract_negative_rules(forest, FEATURES),
        rounds=5, iterations=1,
    )
    positive = extract_positive_rules(forest, FEATURES)

    rows = [[i + 1, str(rule)] for i, rule in enumerate(negative)]
    save_table(
        "figure2_rules",
        "Figure 2: negative rules extracted from a 2-tree toy forest",
        ["#", "rule"],
        rows,
        notes="Paper's toy forest yields 5 negative rules; counts vary "
              "with the learned tree shapes.",
    )

    # Structural claims from the figure.
    assert negative, "a forest on separable data must yield negative rules"
    assert positive, "and positive rules"
    # Every negative rule must actually identify non-matches on the
    # training data with high precision.
    for rule in negative:
        mask = rule.applies(x)
        assert mask.any()
        assert (~y[mask]).mean() >= 0.9

    # The isbn-mismatch rule from the paper ("isbn_match = N -> no match")
    # must be among the extracted rules: a single-predicate rule on isbn.
    single = [
        rule for rule in negative
        if len(rule.predicates) == 1
        and rule.predicates[0].feature_name == "isbn_match"
        and rule.predicates[0].le
    ]
    assert single, "the classic ISBN blocking rule should be extracted"


def test_figure2_rule_count_scales_with_leaves(benchmark):
    x, y = _toy_books(n=2000, seed=3)
    rng = np.random.default_rng(2)
    forest = train_forest(x, y, ForestConfig(n_trees=10), rng)
    rules = benchmark.pedantic(
        lambda: extract_negative_rules(forest, FEATURES),
        rounds=3, iterations=1,
    )
    no_leaves = sum(
        1 for tree in forest.trees for node in tree.nodes
        if node.is_leaf and not node.label
    )
    assert len(rules) <= no_leaves  # dedup can only shrink
