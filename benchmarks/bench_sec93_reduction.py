"""Section 9.3 — effectiveness of reduction (iterating on difficult pairs).

The paper: iterating improves overall F1 by 0.4-3.3%, and the gain is
far larger when measured *on the difficult-to-match set* (recall +3.3%
to +11.8%, F1 +2.1% to +9.2%), because the second matcher specializes.

This bench compares, on each dataset that iterated, iteration 1's
predictions vs the final ensemble predictions restricted to the
difficult set located after iteration 1.
"""

from __future__ import annotations

import pytest

from _common import DATASETS, save_table
from repro.evaluation.reporting import pct
from repro.metrics import confusion_from_sets

_ROWS: list[list] = []


@pytest.mark.parametrize("name", DATASETS)
def test_sec93_reduction_effect(runs, benchmark, name):
    summary = benchmark.pedantic(
        lambda: runs.corleone(name), rounds=1, iterations=1
    )
    iterations = summary.result.iterations
    first = iterations[0]
    locator = first.locator

    if locator is None or not locator.should_continue:
        _ROWS.append([name, "-", "-", "-", "-",
                      "(no second iteration: "
                      f"{summary.result.stop_reason})"])
        return

    difficult_pairs = set(locator.difficult.pairs)
    gold_difficult = {
        pair for pair in summary.dataset.matches if pair in difficult_pairs
    }
    final = iterations[-1]

    def restricted(predicted):
        return {pair for pair in predicted if pair in difficult_pairs}

    before = confusion_from_sets(restricted(first.predicted_pairs),
                                 gold_difficult)
    after = confusion_from_sets(restricted(final.predicted_pairs),
                                gold_difficult)
    _ROWS.append([
        name, len(difficult_pairs), len(gold_difficult),
        f"{pct(before.recall)} -> {pct(after.recall)}",
        f"{pct(before.f1)} -> {pct(after.f1)}",
        "",
    ])

    # Structural claims: the locator genuinely reduced the working set,
    # and iteration 2 never made the difficult set worse (the pipeline
    # would have kept iteration 1 otherwise).  Note a difficult set can
    # legitimately hold zero gold matches when iteration 1 already
    # matched (or precise rules already covered) every true pair.
    assert len(difficult_pairs) < len(summary.result.candidates)
    assert after.f1 >= before.f1 - 1e-9 or (
        summary.result.stop_reason == "no_improvement"
    )


def test_sec93_reduction_report(runs, benchmark):
    # Report assembly is immediate; the pedantic call keeps this test
    # visible under --benchmark-only (which skips non-benchmark tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table(
        "sec93_reduction",
        "Section 9.3: reduction effectiveness on the difficult set",
        ["dataset", "|difficult|", "gold in difficult", "recall", "F1",
         "note"],
        _ROWS,
        notes="Paper: recall on the difficult set improved 3.3% "
              "(citations) and 11.8% (products); F1 +2.1% / +9.2%.",
    )
    assert len(_ROWS) == len(DATASETS)
