"""Section 9.4 — evaluating and setting system parameters.

The paper's parameter studies: k (rules sent to crowd evaluation) can
drop from 20 to 5 without hurting blocking; P_min can vary in 0.9-0.99
with little effect (rules are either very precise or clearly bad); t_B
scaling costs only linear time.  This bench sweeps those knobs on the
citations blocker and also runs two DESIGN.md ablations: entropy-
weighted batch sampling vs plain top-q, and greedy rule-subset selection
vs a static top-k application.
"""

from __future__ import annotations

import time

import numpy as np
from _common import bench_config, memo_disk, save_table
from repro.config import BlockerConfig, MatcherConfig
from repro.core.blocker import Blocker
from repro.core.matcher import ActiveLearningMatcher
from repro.crowd.service import LabelingService
from repro.crowd.simulated import SimulatedCrowd
from repro.features.library import build_feature_library
from repro.metrics import blocking_recall
from repro.synth import generate_citations


def _dataset():
    return generate_citations(n_a=150, n_b=1200, n_matches=250, seed=6)


def _run_blocker(dataset, blocker_config, seed=5):
    return memo_disk(
        ("sec94_blocker", repr(blocker_config), seed),
        lambda: _run_blocker_live(dataset, blocker_config, seed),
    )


def _run_blocker_live(dataset, blocker_config, seed=5):
    config = bench_config().replace(blocker=blocker_config)
    crowd = SimulatedCrowd(dataset.matches, error_rate=0.1,
                           rng=np.random.default_rng(seed))
    service = LabelingService(crowd, config.crowd)
    library = build_feature_library(dataset.table_a, dataset.table_b)
    blocker = Blocker(config, service, np.random.default_rng(seed))
    started = time.perf_counter()
    result = blocker.run(dataset.table_a, dataset.table_b, library,
                         dataset.seed_labels)
    elapsed = time.perf_counter() - started
    return result, blocking_recall(result.candidate_pairs,
                                   dataset.matches), elapsed


class TestTopKSweep:
    def test_k_can_drop_to_5(self, benchmark):
        dataset = _dataset()

        def sweep():
            return {
                k: _run_blocker(dataset,
                                BlockerConfig(t_b=8000, top_k_rules=k))
                for k in (5, 10, 20)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [k, f"{result.umbrella_size}", pct_str(recall),
             result.pairs_labeled, f"{elapsed:.1f}s"]
            for k, (result, recall, elapsed) in results.items()
        ]
        save_table(
            "sec94_topk_sweep",
            "Section 9.4: blocking quality vs k (rules crowd-evaluated)",
            ["k", "umbrella", "recall%", "#pairs", "time"],
            rows,
            notes="Paper: k can be set as low as 5 without affecting "
                  "accuracy.",
        )
        for k, (result, recall, _) in results.items():
            assert recall >= 0.88, f"k={k} lost too many matches"
            assert result.umbrella_size < result.cartesian


class TestPMinSweep:
    def test_p_min_insensitive(self, benchmark):
        dataset = _dataset()

        def sweep():
            return {
                p_min: _run_blocker(
                    dataset, BlockerConfig(t_b=8000, min_precision=p_min)
                )
                for p_min in (0.90, 0.95, 0.99)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [p_min, result.umbrella_size, pct_str(recall),
             len(result.applied_rules)]
            for p_min, (result, recall, _) in results.items()
        ]
        save_table(
            "sec94_pmin_sweep",
            "Section 9.4: blocking vs P_min",
            ["P_min", "umbrella", "recall%", "#rules applied"],
            rows,
            notes="Paper: varying P_min in 0.9-0.99 has no noticeable "
                  "effect (learned rules are either very accurate or "
                  "clearly bad).",
        )
        recalls = [recall for _, recall, _ in results.values()]
        assert max(recalls) - min(recalls) <= 0.1


class TestTBScaling:
    def test_t_b_time_scales_roughly_linearly(self, benchmark):
        dataset = _dataset()

        def sweep():
            return {
                t_b: _run_blocker(dataset, BlockerConfig(t_b=t_b))
                for t_b in (4000, 8000, 16000)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [t_b, result.sample_size, pct_str(recall), f"{elapsed:.1f}s"]
            for t_b, (result, recall, elapsed) in results.items()
        ]
        save_table(
            "sec94_tb_sweep",
            "Section 9.4: blocking vs t_B (sample size)",
            ["t_B", "sample", "recall%", "time"],
            rows,
            notes="Paper: learning time grows only linearly with t_B.",
        )
        small = results[4000][2]
        large = results[16000][2]
        # 4x the sample should cost far less than quadratic blowup.
        assert large <= small * 12


class TestBatchSelectionAblation:
    """DESIGN.md ablation: entropy-weighted sampling vs plain top-q."""

    def test_weighted_sampling_diversifies(self, benchmark):
        rng = np.random.default_rng(0)
        features = rng.random((600, 4))
        labels = (features[:, 0] > 0.7) & (features[:, 1] > 0.55)
        from repro.data.pairs import CandidateSet, Pair
        pairs = [Pair(f"a{i}", f"b{i}") for i in range(600)]
        matches = {pairs[i] for i in np.flatnonzero(labels)}
        candidates = CandidateSet(pairs, features, list("abcd"))
        seeds = dict.fromkeys(sorted(matches)[:2], True)
        seeds.update(dict.fromkeys(
            [p for p in pairs if p not in matches][:2], False
        ))

        def train(strategy):
            config = bench_config().replace(
                matcher=MatcherConfig(batch_size=10, pool_size=100,
                                      n_converged=8, n_degrade=6,
                                      max_iterations=25,
                                      selection_strategy=strategy),
            )
            crowd = SimulatedCrowd(matches, error_rate=0.1,
                                   rng=np.random.default_rng(2))
            service = LabelingService(crowd, config.crowd)
            matcher = ActiveLearningMatcher(config, service,
                                            np.random.default_rng(3))
            result = matcher.train(candidates, seeds)
            accuracy = (result.predictions == labels).mean()
            return accuracy, result.pairs_labeled

        def run_all():
            return {
                strategy: train(strategy)
                for strategy in ("entropy_weighted", "top_entropy",
                                 "random")
            }

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)
        save_table(
            "sec94_batch_ablation",
            "Ablation (Section 5.2): batch selection strategies",
            ["strategy", "accuracy", "#pairs labeled"],
            [[name, f"{acc:.3f}", labeled]
             for name, (acc, labeled) in results.items()],
        )
        # Diversity should not hurt; usually it helps or ties.
        assert (results["entropy_weighted"][0]
                >= results["top_entropy"][0] - 0.03)


class TestGreedySubsetAblation:
    """DESIGN.md ablation: greedy re-ranked subset vs apply-all rules."""

    def test_greedy_stops_at_target(self, benchmark):
        dataset = _dataset()

        def run():
            result, recall, _ = _run_blocker(
                dataset, BlockerConfig(t_b=8000)
            )
            accepted = [ev.rule for ev in result.evaluations
                        if ev.accepted]
            return result, recall, accepted

        result, recall, accepted = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
        save_table(
            "sec94_greedy_ablation",
            "Ablation (Section 4.3): greedy subset vs all accepted rules",
            ["variant", "#rules", "umbrella", "recall%"],
            [["greedy subset", len(result.applied_rules),
              result.umbrella_size, pct_str(recall)],
             ["all accepted", len(accepted), "(upper bound on removal)",
              "-"]],
            notes="Greedy stops once the sample is reduced to "
                  "|S| * t_B / |AxB|, guarding recall; applying every "
                  "accepted rule would keep shrinking the umbrella set "
                  "and risk dropping true matches.",
        )
        assert len(result.applied_rules) <= len(accepted)


def pct_str(value: float) -> str:
    return f"{100 * value:.1f}"
