"""Collect every benchmark result table into one RESULTS.md.

Run after the bench suite:

    pytest benchmarks/ --benchmark-only
    python benchmarks/collect_results.py

The output (benchmarks/RESULTS.md) is the single document to read next
to EXPERIMENTS.md: every regenerated table and figure, in experiment
order, as fenced text blocks.

A second mode distills a pytest-benchmark JSON dump of the substrate
microbenches into the checked-in ``BENCH_substrates.json`` baseline
(see ``make bench-smoke``):

    pytest benchmarks/bench_micro_substrates.py --benchmark-only \\
        --benchmark-json=benchmarks/results/substrates_benchmark.json
    python benchmarks/collect_results.py \\
        --substrates benchmarks/results/substrates_benchmark.json

A third mode runs corlint (the repo's invariant analyzer, see
docs/static_analysis.md) over ``src/repro`` and records the per-rule
finding counts as ``BENCH_lint.json`` plus a ``lint_findings`` result
table:

    python benchmarks/collect_results.py --lint
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent / "RESULTS.md"
SUBSTRATES_OUTPUT = Path(__file__).parent / "BENCH_substrates.json"
LINT_OUTPUT = Path(__file__).parent / "BENCH_lint.json"

# Display order: paper tables, figures, section studies, extensions.
ORDER = [
    "table1_datasets",
    "table2_overall",
    "table3_blocking",
    "table4_iterations",
    "figure2_rules",
    "figure3_confidence_real",
    "figure3_confidence_plot",
    "figure3_confidence_synthetic",
    "figure3_confidence_panels",
    "sec93_estimator_savings",
    "sec93_reduction",
    "sec93_rule_precision",
    "sec93_sensitivity",
    "sec93_voting_ablation",
    "sec94_topk_sweep",
    "sec94_pmin_sweep",
    "sec94_tb_sweep",
    "sec94_batch_ablation",
    "sec94_greedy_ablation",
    "ext_profiler_recovery",
    "ext_profiler_adaptive",
    "ext_budget_plan",
    "ext_money_time",
    "ext_sampler_ablation",
    "micro_substrates",
    "lint_findings",
]


def distill_substrates(benchmark_json: Path,
                       output: Path | None = None) -> dict:
    """Distill a pytest-benchmark JSON dump into the substrates baseline.

    Keeps the per-bench timing summary plus, when both engine variants
    of the 10k-pair products vectorization are present, their derived
    throughputs and speedup ratio — the batched engine's headline
    number.  Writes ``BENCH_substrates.json`` and returns the payload.
    """
    data = json.loads(Path(benchmark_json).read_text())
    entries: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "mean_seconds": stats["mean"],
            "stddev_seconds": stats["stddev"],
            "rounds": stats["rounds"],
        }
        if bench.get("extra_info"):
            entry["extra_info"] = bench["extra_info"]
        entries[bench["name"]] = entry

    baseline: dict = {"benchmarks": entries}
    scalar = entries.get("test_vectorize_products_10k_scalar")
    batched = entries.get("test_vectorize_products_10k_batched")
    if scalar and batched:
        pairs = scalar.get("extra_info", {}).get("pairs", 10_000)
        baseline["vectorize_products_10k"] = {
            "pairs": pairs,
            "scalar_pairs_per_second": round(
                pairs / scalar["mean_seconds"], 1
            ),
            "batched_pairs_per_second": round(
                pairs / batched["mean_seconds"], 1
            ),
            "speedup": round(
                scalar["mean_seconds"] / batched["mean_seconds"], 2
            ),
        }

    target = output if output is not None else SUBSTRATES_OUTPUT
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} ({len(entries)} benches)")

    derived = baseline.get("vectorize_products_10k")
    if derived is not None:
        RESULTS_DIR.mkdir(exist_ok=True)
        scalar_rate = derived["scalar_pairs_per_second"]
        batched_rate = derived["batched_pairs_per_second"]
        table = (
            "Substrate microbench: scalar vs batched vectorize_pairs "
            f"(products, {derived['pairs']} pairs)\n"
            "\n"
            "engine   pairs/s  speedup\n"
            "-------  -------  -------\n"
            f"scalar   {scalar_rate:>7.0f}  1.0x\n"
            f"batched  {batched_rate:>7.0f}  {derived['speedup']:.1f}x\n"
        )
        (RESULTS_DIR / "micro_substrates.txt").write_text(table)
    return baseline


def collect_lint(output: Path | None = None) -> dict:
    """Run corlint over src/repro and record per-rule finding counts.

    Writes ``BENCH_lint.json`` (per-rule new/baselined counts against
    the checked-in baseline) and a ``lint_findings`` table alongside the
    other result tables, then returns the payload.
    """
    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    from repro.analysis import run_analysis

    baseline_path = ROOT / "corlint-baseline.json"
    report = run_analysis(
        [ROOT / "src" / "repro"],
        baseline_path=baseline_path if baseline_path.is_file() else None,
    )

    rules = sorted(rule.rule_id for rule in report.rules)
    new_by_rule = report.counts_by_rule(baselined=False)
    baselined_by_rule = report.counts_by_rule(baselined=True)
    payload = {
        "files_scanned": report.files_scanned,
        "rules": {
            rule_id: {
                "new": new_by_rule.get(rule_id, 0),
                "baselined": baselined_by_rule.get(rule_id, 0),
            }
            for rule_id in rules
        },
        "totals": {
            "new": len(report.new_findings),
            "baselined": len(report.baselined_findings),
            "stale_baseline_entries": len(report.stale_entries),
        },
    }

    target = output if output is not None else LINT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} ({report.files_scanned} files scanned)")

    lines = [
        "corlint findings over src/repro "
        f"({report.files_scanned} files)",
        "",
        "rule    new  baselined",
        "-----  ----  ---------",
    ]
    for rule_id in rules:
        counts = payload["rules"][rule_id]
        lines.append(
            f"{rule_id}  {counts['new']:>4}  {counts['baselined']:>9}"
        )
    totals = payload["totals"]
    lines.append(
        f"total  {totals['new']:>4}  {totals['baselined']:>9}"
        f"  ({totals['stale_baseline_entries']} stale baseline entries)"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "lint_findings.txt").write_text("\n".join(lines) + "\n")
    return payload


def main() -> None:
    if not RESULTS_DIR.is_dir():
        raise SystemExit(
            "no benchmarks/results directory — run the bench suite first"
        )
    available = {path.stem: path for path in RESULTS_DIR.glob("*.txt")}
    ordered = [name for name in ORDER if name in available]
    ordered += sorted(set(available) - set(ORDER))

    parts = [
        "# Benchmark results\n",
        "Regenerated by `pytest benchmarks/ --benchmark-only`; see "
        "EXPERIMENTS.md for paper-vs-measured commentary.\n",
    ]
    for name in ordered:
        parts.append(f"\n## {name}\n")
        parts.append("```text")
        parts.append(available[name].read_text().rstrip())
        parts.append("```")
    OUTPUT.write_text("\n".join(parts) + "\n")
    print(f"wrote {OUTPUT} ({len(ordered)} result tables)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--substrates", type=Path, metavar="BENCHMARK_JSON",
        help="distill this pytest-benchmark JSON dump into "
             "BENCH_substrates.json instead of collecting RESULTS.md",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run corlint over src/repro and record per-rule finding "
             "counts in BENCH_lint.json instead of collecting RESULTS.md",
    )
    args = parser.parse_args()
    if args.substrates is not None:
        distill_substrates(args.substrates)
    elif args.lint:
        collect_lint()
    else:
        main()
