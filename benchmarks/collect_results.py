"""Collect every benchmark result table into one RESULTS.md.

Run after the bench suite:

    pytest benchmarks/ --benchmark-only
    python benchmarks/collect_results.py

The output (benchmarks/RESULTS.md) is the single document to read next
to EXPERIMENTS.md: every regenerated table and figure, in experiment
order, as fenced text blocks.

A second mode distills a pytest-benchmark JSON dump of the substrate
microbenches into the checked-in ``BENCH_substrates.json`` baseline
(see ``make bench-smoke``):

    pytest benchmarks/bench_micro_substrates.py --benchmark-only \\
        --benchmark-json=benchmarks/results/substrates_benchmark.json
    python benchmarks/collect_results.py \\
        --substrates benchmarks/results/substrates_benchmark.json

A third mode runs corlint (the repo's invariant analyzer, see
docs/static_analysis.md) over ``src/repro`` and records the per-rule
finding counts, the cold (no cache) and warm (second cached run) wall
times, and the per-rule/model-build timing breakdown as
``BENCH_lint.json`` plus a ``lint_findings`` result table:

    python benchmarks/collect_results.py --lint

A fourth mode measures the staged engine's checkpoint/resume costs
(docs/architecture.md): wall-clock overhead of checkpointing a full
hands-off run, per-checkpoint write cost, checkpoint read cost and
event-bus throughput, recorded as ``BENCH_engine.json`` plus an
``engine_overhead`` result table:

    python benchmarks/collect_results.py --engine

A fifth mode exercises the resilient crowd gateway
(docs/robustness.md): wall-clock overhead of the fault-injection +
gateway stack at a 0% fault rate (acceptance bar < 5%) and the recovery
statistics of a full run at a 10% uniform fault rate, recorded as
``BENCH_faults.json`` plus a ``fault_gateway`` result table:

    python benchmarks/collect_results.py --faults

A sixth mode measures the run-telemetry subsystem
(docs/observability.md): wall-clock overhead of full instrumentation
(metrics registry + span tracer + profiler) on a checkpointed run
versus the same run with ``telemetry=False`` (acceptance bar < 5%),
plus the artifact counts of the instrumented run, recorded as
``BENCH_obs.json`` plus an ``obs_overhead`` result table.  The
instrumented run directory is kept at ``benchmarks/results/obs_run``
so ``make trace-report`` has a run to render:

    python benchmarks/collect_results.py --obs

The obs mode has a companion *regression gate*: take a fresh
measurement into a temp directory (committed artifacts untouched) and
exit non-zero when the fresh overhead breaks the 5% bar or regressed
more than ``--regress-threshold-pp`` percentage points past the
committed ``BENCH_obs.json`` (CI runs this as a soft gate):

    python benchmarks/collect_results.py --check-regress

A seventh mode measures the sharded multi-core blocking executor
(docs/architecture.md): the streaming baseline versus
``repro.exec.apply_rules_sharded`` at 1/2/4/8 workers on a
citations-shaped workload, checking that every worker count returns a
candidate list bit-identical to the sequential path, recorded as
``BENCH_shard.json`` plus a ``shard_scaling`` result table:

    python benchmarks/collect_results.py --shard

An eighth mode measures the durable-storage subsystem
(docs/robustness.md, "Storage durability"): wall-clock overhead of the
full fsync discipline (file + directory fsync around every atomic
replace) versus the same checkpointed run with fsync disabled
(acceptance bar < 5%), plus a crash-and-resume fault sweep — a
deterministic storage fault armed against one write site per run,
asserting the resumed result is bit-identical to the clean run —
recorded as ``BENCH_storage.json`` plus a ``storage_durability``
result table:

    python benchmarks/collect_results.py --storage

A ninth mode measures the columnar plan compiler
(docs/architecture.md, "The plan compiler"): full-matrix streaming
blocking versus the fused plan executor on a citations-shaped
workload, and in-RAM versus memmap-spilled candidate vectorization —
each variant in its own fresh subprocess so the recorded peak RSS is
honest, with survivor/matrix checksums proving bit-identity.  Recorded
as ``BENCH_plan.json`` plus a ``plan_compiler`` result table:

    python benchmarks/collect_results.py --plan
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent / "RESULTS.md"
SUBSTRATES_OUTPUT = Path(__file__).parent / "BENCH_substrates.json"
LINT_OUTPUT = Path(__file__).parent / "BENCH_lint.json"
ENGINE_OUTPUT = Path(__file__).parent / "BENCH_engine.json"
FAULTS_OUTPUT = Path(__file__).parent / "BENCH_faults.json"
OBS_OUTPUT = Path(__file__).parent / "BENCH_obs.json"
SHARD_OUTPUT = Path(__file__).parent / "BENCH_shard.json"
PLAN_OUTPUT = Path(__file__).parent / "BENCH_plan.json"
STORAGE_OUTPUT = Path(__file__).parent / "BENCH_storage.json"


def _peak_rss_kb() -> int | None:
    """This process's peak resident set size in KiB (None off-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

# Display order: paper tables, figures, section studies, extensions.
ORDER = [
    "table1_datasets",
    "table2_overall",
    "table3_blocking",
    "table4_iterations",
    "figure2_rules",
    "figure3_confidence_real",
    "figure3_confidence_plot",
    "figure3_confidence_synthetic",
    "figure3_confidence_panels",
    "sec93_estimator_savings",
    "sec93_reduction",
    "sec93_rule_precision",
    "sec93_sensitivity",
    "sec93_voting_ablation",
    "sec94_topk_sweep",
    "sec94_pmin_sweep",
    "sec94_tb_sweep",
    "sec94_batch_ablation",
    "sec94_greedy_ablation",
    "ext_profiler_recovery",
    "ext_profiler_adaptive",
    "ext_budget_plan",
    "ext_money_time",
    "ext_sampler_ablation",
    "micro_substrates",
    "lint_findings",
    "engine_overhead",
    "fault_gateway",
    "obs_overhead",
    "shard_scaling",
    "plan_compiler",
    "storage_durability",
]


def distill_substrates(benchmark_json: Path,
                       output: Path | None = None) -> dict:
    """Distill a pytest-benchmark JSON dump into the substrates baseline.

    Keeps the per-bench timing summary plus, when both engine variants
    of the 10k-pair products vectorization are present, their derived
    throughputs and speedup ratio — the batched engine's headline
    number.  Writes ``BENCH_substrates.json`` and returns the payload.
    """
    data = json.loads(Path(benchmark_json).read_text())
    entries: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "mean_seconds": stats["mean"],
            "stddev_seconds": stats["stddev"],
            "rounds": stats["rounds"],
        }
        if bench.get("extra_info"):
            entry["extra_info"] = bench["extra_info"]
        entries[bench["name"]] = entry

    baseline: dict = {"benchmarks": entries}
    scalar = entries.get("test_vectorize_products_10k_scalar")
    batched = entries.get("test_vectorize_products_10k_batched")
    if scalar and batched:
        pairs = scalar.get("extra_info", {}).get("pairs", 10_000)
        baseline["vectorize_products_10k"] = {
            "pairs": pairs,
            "scalar_pairs_per_second": round(
                pairs / scalar["mean_seconds"], 1
            ),
            "batched_pairs_per_second": round(
                pairs / batched["mean_seconds"], 1
            ),
            "speedup": round(
                scalar["mean_seconds"] / batched["mean_seconds"], 2
            ),
        }

    target = output if output is not None else SUBSTRATES_OUTPUT
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} ({len(entries)} benches)")

    derived = baseline.get("vectorize_products_10k")
    if derived is not None:
        RESULTS_DIR.mkdir(exist_ok=True)
        scalar_rate = derived["scalar_pairs_per_second"]
        batched_rate = derived["batched_pairs_per_second"]
        table = (
            "Substrate microbench: scalar vs batched vectorize_pairs "
            f"(products, {derived['pairs']} pairs)\n"
            "\n"
            "engine   pairs/s  speedup\n"
            "-------  -------  -------\n"
            f"scalar   {scalar_rate:>7.0f}  1.0x\n"
            f"batched  {batched_rate:>7.0f}  {derived['speedup']:.1f}x\n"
        )
        (RESULTS_DIR / "micro_substrates.txt").write_text(table)
    return baseline


def collect_lint(output: Path | None = None) -> dict:
    """Run corlint over src/repro and record counts plus timings.

    Three passes over the tree: one uncached (the cold wall time — full
    AST walks plus semantic-model construction), one cached run to
    populate ``.corlint_cache``, and one more cached run (the warm wall
    time — findings and model facts served from the per-file caches).
    Writes ``BENCH_lint.json`` (per-rule new/baselined counts against
    the checked-in baseline, cold/warm wall seconds, and the cold run's
    per-rule + model-build timing breakdown) and a ``lint_findings``
    table alongside the other result tables, then returns the payload.
    """
    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    from repro.analysis import run_analysis

    baseline_path = ROOT / "corlint-baseline.json"
    baseline = baseline_path if baseline_path.is_file() else None
    targets = [ROOT / "src" / "repro"]

    report = run_analysis(targets, baseline_path=baseline,
                          use_cache=False)
    run_analysis(targets, baseline_path=baseline, use_cache=True)
    warm_report = run_analysis(targets, baseline_path=baseline,
                               use_cache=True)

    rules = sorted(rule.rule_id for rule in report.rules)
    new_by_rule = report.counts_by_rule(baselined=False)
    baselined_by_rule = report.counts_by_rule(baselined=True)
    payload = {
        "files_scanned": report.files_scanned,
        "rules": {
            rule_id: {
                "new": new_by_rule.get(rule_id, 0),
                "baselined": baselined_by_rule.get(rule_id, 0),
            }
            for rule_id in rules
        },
        "totals": {
            "new": len(report.new_findings),
            "baselined": len(report.baselined_findings),
            "stale_baseline_entries": len(report.stale_entries),
        },
        "wall_seconds": {
            "cold": round(report.timings.get("total", 0.0), 4),
            "warm": round(warm_report.timings.get("total", 0.0), 4),
        },
        "rule_seconds": {
            key: round(value, 4)
            for key, value in sorted(report.timings.items())
            if key != "total"
        },
    }

    target = output if output is not None else LINT_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    wall = payload["wall_seconds"]
    print(f"wrote {target} ({report.files_scanned} files scanned, "
          f"cold {wall['cold']:.2f}s, warm {wall['warm']:.2f}s)")

    timings = payload["rule_seconds"]
    lines = [
        "corlint findings over src/repro "
        f"({report.files_scanned} files; "
        f"cold {wall['cold']:.2f}s, warm {wall['warm']:.2f}s)",
        "",
        "rule    new  baselined  seconds",
        "-----  ----  ---------  -------",
    ]
    for rule_id in rules:
        counts = payload["rules"][rule_id]
        lines.append(
            f"{rule_id}  {counts['new']:>4}  {counts['baselined']:>9}"
            f"  {timings.get(rule_id, 0.0):>7.3f}"
        )
    totals = payload["totals"]
    lines.append(
        f"model  {'':>4}  {'':>9}"
        f"  {timings.get('model_build', 0.0):>7.3f}"
    )
    lines.append(
        f"total  {totals['new']:>4}  {totals['baselined']:>9}"
        f"  ({totals['stale_baseline_entries']} stale baseline entries)"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "lint_findings.txt").write_text("\n".join(lines) + "\n")
    return payload


def collect_engine(output: Path | None = None, repeats: int = 3) -> dict:
    """Measure the staged engine's checkpoint and event-bus costs.

    Runs the same seeded hands-off run ``repeats`` times plain and
    ``repeats`` times with a run directory, then derives the checkpoint
    wall-clock overhead (the engine's acceptance bar is < 10%), the
    per-checkpoint write cost, the checkpoint read cost and the event
    throughput.  Writes ``BENCH_engine.json`` and an
    ``engine_overhead`` result table, and returns the payload.
    """
    import tempfile
    import time

    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    import numpy as np

    from repro.config import (
        BlockerConfig,
        CorleoneConfig,
        EstimatorConfig,
        ForestConfig,
        LocatorConfig,
        MatcherConfig,
    )
    from repro.core.pipeline import Corleone
    from repro.crowd.simulated import SimulatedCrowd
    from repro.engine import load_checkpoint
    from repro.synth.restaurants import generate_restaurants

    dataset = generate_restaurants(n_a=120, n_b=90, n_matches=35, seed=7)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=6000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=15),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )

    def run_once(run_dir: Path | None):
        crowd = SimulatedCrowd(dataset.matches, error_rate=0.05,
                               rng=np.random.default_rng(11))
        pipeline = Corleone(config, crowd, seed=123, run_dir=run_dir)
        started = time.perf_counter()
        pipeline.run(dataset.table_a, dataset.table_b,
                     dataset.seed_labels)
        return time.perf_counter() - started, pipeline.bus.events_emitted

    plain_times = [run_once(None)[0] for _ in range(repeats)]

    checkpointed_times: list[float] = []
    read_times: list[float] = []
    events = checkpoints = 0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            run_dir = Path(tmp) / "run"
            elapsed, events = run_once(run_dir)
            checkpointed_times.append(elapsed)
            started = time.perf_counter()
            checkpoint = load_checkpoint(run_dir)
            read_times.append(time.perf_counter() - started)
            checkpoints = checkpoint["index"] + 1

    plain = min(plain_times)
    checkpointed = min(checkpointed_times)
    overhead = max(0.0, checkpointed - plain)
    payload = {
        "run": {
            "dataset": "restaurants 120x90",
            "repeats": repeats,
            "plain_seconds": round(plain, 4),
            "checkpointed_seconds": round(checkpointed, 4),
            "checkpoint_overhead_fraction": round(overhead / plain, 4),
            "checkpoints_written": checkpoints,
            "events_emitted": events,
            "peak_rss_kb": _peak_rss_kb(),
        },
        "checkpoint": {
            "mean_write_overhead_seconds": round(
                overhead / max(checkpoints, 1), 6
            ),
            "read_seconds": round(min(read_times), 6),
        },
        "events_per_second": round(events / checkpointed, 1),
    }

    target = output if output is not None else ENGINE_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} (overhead "
          f"{payload['run']['checkpoint_overhead_fraction']:.1%})")

    run = payload["run"]
    table = (
        "Staged engine: checkpoint/resume overhead "
        f"({run['dataset']}, best of {repeats})\n"
        "\n"
        "metric                      value\n"
        "--------------------------  ---------\n"
        f"plain run                   {run['plain_seconds']:.3f} s\n"
        f"checkpointed run            {run['checkpointed_seconds']:.3f} s\n"
        f"overhead                    "
        f"{run['checkpoint_overhead_fraction']:.1%}\n"
        f"checkpoints written         {run['checkpoints_written']}\n"
        f"mean write overhead         "
        f"{payload['checkpoint']['mean_write_overhead_seconds'] * 1e3:.2f}"
        " ms\n"
        f"checkpoint read             "
        f"{payload['checkpoint']['read_seconds'] * 1e3:.2f} ms\n"
        f"events emitted              {run['events_emitted']}\n"
        f"events per second           {payload['events_per_second']:.0f}\n"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_overhead.txt").write_text(table)
    return payload


def collect_faults(output: Path | None = None, repeats: int = 3) -> dict:
    """Measure the resilient gateway's overhead and recovery behaviour.

    Runs the same seeded hands-off run three ways: directly against the
    crowd, through the ``ResilientCrowd``/``FaultyCrowd`` stack at a 0%
    fault rate (the pure wrapper tax; acceptance bar < 5%), and through
    the stack at a 10% uniform fault rate with spam disabled (the
    lossless-recovery taxonomy: timeouts, expiries, duplicates,
    outages).  Records wall-clock overhead, per-kind injection counts,
    retry/repost/recovery counters, simulated retry latency, the
    delivered-equals-charged accounting check and the F1 delta, as
    ``BENCH_faults.json`` plus a ``fault_gateway`` result table.
    """
    import time

    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    import numpy as np

    from repro.config import (
        BlockerConfig,
        CorleoneConfig,
        EstimatorConfig,
        ForestConfig,
        LocatorConfig,
        MatcherConfig,
    )
    from repro.core.pipeline import Corleone
    from repro.crowd import (
        CircuitBreaker,
        FaultSpec,
        FaultyCrowd,
        ResilientCrowd,
        RetryPolicy,
    )
    from repro.crowd.simulated import SimulatedCrowd
    from repro.synth.restaurants import generate_restaurants

    dataset = generate_restaurants(n_a=120, n_b=90, n_matches=35, seed=7)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=6000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=15),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )

    def f1_score(predicted) -> float:
        if not predicted:
            return 0.0
        hits = len(set(predicted) & set(dataset.matches))
        precision = hits / len(predicted)
        recall = hits / len(dataset.matches)
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def run_once(fault_rate: float | None):
        """One seeded run; ``None`` means no wrapper stack at all."""
        crowd = SimulatedCrowd(dataset.matches, error_rate=0.05,
                               rng=np.random.default_rng(11))
        faulty = None
        platform = crowd
        if fault_rate is not None:
            spec = FaultSpec.uniform(fault_rate, spammer_rate=0.0)
            faulty = FaultyCrowd(crowd, spec, seed=77)
            platform = ResilientCrowd(
                faulty,
                RetryPolicy(max_attempts=7),
                breaker=CircuitBreaker(failure_threshold=20),
            )
        started = time.perf_counter()
        result = Corleone(config, platform, seed=123).run(
            dataset.table_a, dataset.table_b, dataset.seed_labels)
        elapsed = time.perf_counter() - started
        return elapsed, result, platform, faulty

    direct_times = []
    for _ in range(repeats):
        elapsed, direct_result, _, _ = run_once(None)
        direct_times.append(elapsed)
    clean_times = []
    for _ in range(repeats):
        elapsed, clean_result, _, _ = run_once(0.0)
        clean_times.append(elapsed)
    _, faulty_result, gateway, faulty = run_once(0.1)

    direct = min(direct_times)
    clean = min(clean_times)
    direct_f1 = f1_score(direct_result.predicted_matches)
    faulty_f1 = f1_score(faulty_result.predicted_matches)
    payload = {
        "run": {
            "dataset": "restaurants 120x90",
            "repeats": repeats,
            "direct_seconds": round(direct, 4),
            "gateway_clean_seconds": round(clean, 4),
            "gateway_overhead_fraction": round(
                max(0.0, clean - direct) / direct, 4
            ),
            "direct_f1": round(direct_f1, 4),
            "peak_rss_kb": _peak_rss_kb(),
        },
        "recovery_at_10pct": {
            "faults_injected": dict(faulty.counts),
            "retries_scheduled": gateway.retries_scheduled,
            "hits_reposted": gateway.hits_reposted,
            "answers_recovered": gateway.answers_recovered,
            "retry_simulated_seconds": round(gateway.retry_seconds, 1),
            "answers_delivered": faulty.answers_delivered,
            "answers_charged": faulty_result.cost.answers,
            "accounting_exact": (
                faulty.answers_delivered == faulty_result.cost.answers
            ),
            "f1": round(faulty_f1, 4),
            "f1_delta": round(faulty_f1 - direct_f1, 4),
        },
    }

    target = output if output is not None else FAULTS_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} (gateway overhead "
          f"{payload['run']['gateway_overhead_fraction']:.1%})")

    run = payload["run"]
    recovery = payload["recovery_at_10pct"]
    injected = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(recovery["faults_injected"].items())
        if count
    ) or "none"
    table = (
        "Resilient gateway: overhead and fault recovery "
        f"({run['dataset']}, best of {repeats})\n"
        "\n"
        "metric                      value\n"
        "--------------------------  ---------\n"
        f"direct run                  {run['direct_seconds']:.3f} s\n"
        f"gateway run (0% faults)     "
        f"{run['gateway_clean_seconds']:.3f} s\n"
        f"gateway overhead            "
        f"{run['gateway_overhead_fraction']:.1%}\n"
        f"faults injected (10%)       {injected}\n"
        f"retries scheduled           {recovery['retries_scheduled']}\n"
        f"HITs reposted               {recovery['hits_reposted']}\n"
        f"answers recovered           {recovery['answers_recovered']}\n"
        f"simulated retry time        "
        f"{recovery['retry_simulated_seconds']:.0f} s\n"
        f"answers delivered/charged   {recovery['answers_delivered']}"
        f"/{recovery['answers_charged']}"
        f" ({'exact' if recovery['accounting_exact'] else 'MISMATCH'})\n"
        f"F1 (direct -> 10% faults)   {run['direct_f1']:.4f} -> "
        f"{recovery['f1']:.4f} ({recovery['f1_delta']:+.4f})\n"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fault_gateway.txt").write_text(table)
    return payload


def collect_obs(output: Path | None = None, repeats: int = 7,
                keep_run_dir: Path | None = None,
                write_table: bool = True) -> dict:
    """Measure the run-telemetry subsystem's instrumentation overhead.

    Runs the same seeded, checkpointed hands-off run ``repeats`` times
    with ``telemetry=False`` and ``repeats`` times fully instrumented
    (metric registry + span tracer + wall-clock profiler, see
    docs/observability.md), then derives the instrumentation overhead
    (acceptance bar < 5%) and the instrumented run's artifact counts.

    Methodology, because the signal is a few percent of a sub-second
    run on a shared box: the two arms are *interleaved* (off, on, off,
    on, ...) after one untimed warm-up, and the overhead is the
    **median of the per-pair ratios** ``on_i / off_i - 1``.  Arm-level
    minima are biased by whichever arm catches the luckiest fsync
    window, and sequential blocks let machine-state drift (page cache,
    CPU frequency, a background build) land entirely on one side;
    adjacent pairs see near-identical machine state, and the median
    shrugs off the occasional scheduler stall that a mean or a min
    cannot.  The per-arm minima are still recorded for reference.
    The last instrumented run directory is preserved at
    ``benchmarks/results/obs_run`` for ``make trace-report`` (override
    with ``keep_run_dir`` — :func:`check_regress` points both ``output``
    and ``keep_run_dir`` at a temp directory so a gate run never
    clobbers the committed artifacts).  Writes ``BENCH_obs.json`` and,
    unless ``write_table`` is off, an ``obs_overhead`` result table,
    and returns the payload.
    """
    import shutil
    import statistics
    import tempfile
    import time

    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    import numpy as np

    from repro.config import (
        BlockerConfig,
        CorleoneConfig,
        EstimatorConfig,
        ForestConfig,
        LocatorConfig,
        MatcherConfig,
    )
    from repro.core.pipeline import Corleone
    from repro.crowd.simulated import SimulatedCrowd
    from repro.synth.restaurants import generate_restaurants

    dataset = generate_restaurants(n_a=120, n_b=90, n_matches=35, seed=7)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=6000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=15),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )

    def run_once(run_dir: Path, telemetry: bool):
        crowd = SimulatedCrowd(dataset.matches, error_rate=0.05,
                               rng=np.random.default_rng(11))
        pipeline = Corleone(config, crowd, seed=123, run_dir=run_dir,
                            telemetry=telemetry)
        started = time.perf_counter()
        pipeline.run(dataset.table_a, dataset.table_b,
                     dataset.seed_labels)
        return time.perf_counter() - started, pipeline.bus.events_emitted

    RESULTS_DIR.mkdir(exist_ok=True)
    kept_run_dir = (keep_run_dir if keep_run_dir is not None
                    else RESULTS_DIR / "obs_run")

    with tempfile.TemporaryDirectory() as tmp:  # untimed warm-up
        run_once(Path(tmp) / "run", False)

    off_times: list[float] = []
    on_times: list[float] = []
    events = 0
    for index in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            off_times.append(run_once(Path(tmp) / "run", False)[0])
        with tempfile.TemporaryDirectory() as tmp:
            run_dir = Path(tmp) / "run"
            elapsed, events = run_once(run_dir, True)
            on_times.append(elapsed)
            if index == repeats - 1:
                if kept_run_dir.is_dir():
                    shutil.rmtree(kept_run_dir)
                shutil.copytree(run_dir, kept_run_dir)

    metrics_doc = json.loads((kept_run_dir / "metrics.json").read_text())
    spans = (kept_run_dir / "spans.jsonl").read_text().splitlines()
    profile = json.loads((kept_run_dir / "profile.json").read_text())
    checkpoint = json.loads((kept_run_dir / "checkpoint.json").read_text())

    off = min(off_times)
    on = min(on_times)
    pair_ratios = sorted(on_t / off_t - 1.0
                         for on_t, off_t in zip(on_times, off_times))
    overhead = round(max(0.0, statistics.median(pair_ratios)), 4)
    payload = {
        "run": {
            "dataset": "restaurants 120x90",
            "repeats": repeats,
            "estimator": "median of interleaved on/off pair ratios",
            "telemetry_off_seconds": round(off, 4),
            "telemetry_on_seconds": round(on, 4),
            "instrumentation_overhead_fraction": overhead,
            "acceptance_bar_fraction": 0.05,
            "within_bar": overhead < 0.05,
            "peak_rss_kb": _peak_rss_kb(),
        },
        "artifacts": {
            "run_dir": (str(kept_run_dir.relative_to(ROOT))
                        if kept_run_dir.is_relative_to(ROOT)
                        else str(kept_run_dir)),
            "events_emitted": events,
            "metric_families": len(metrics_doc["metrics"]),
            "spans_completed": len(spans),
            "profile_sections": len(profile.get("sections", {})),
            "checkpoints_written": checkpoint["index"] + 1,
        },
    }

    target = output if output is not None else OBS_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} (instrumentation overhead "
          f"{overhead:.1%}, kept {payload['artifacts']['run_dir']})")
    if not write_table:
        return payload

    run = payload["run"]
    artifacts = payload["artifacts"]
    table = (
        "Run telemetry: instrumentation overhead "
        f"({run['dataset']}, median of {repeats} interleaved pairs)\n"
        "\n"
        "metric                      value\n"
        "--------------------------  ---------\n"
        f"telemetry off               {run['telemetry_off_seconds']:.3f} s\n"
        f"telemetry on                {run['telemetry_on_seconds']:.3f} s\n"
        f"overhead                    "
        f"{run['instrumentation_overhead_fraction']:.1%}"
        f" (bar {run['acceptance_bar_fraction']:.0%}:"
        f" {'ok' if run['within_bar'] else 'EXCEEDED'})\n"
        f"events emitted              {artifacts['events_emitted']}\n"
        f"metric families             {artifacts['metric_families']}\n"
        f"spans completed             {artifacts['spans_completed']}\n"
        f"profile sections            {artifacts['profile_sections']}\n"
        f"checkpoints written         {artifacts['checkpoints_written']}\n"
        f"run dir kept                {artifacts['run_dir']}\n"
    )
    (RESULTS_DIR / "obs_overhead.txt").write_text(table)
    return payload


def check_regress(threshold_pp: float = 3.0) -> int:
    """Regression gate over the instrumentation-overhead benchmark.

    Takes a *fresh* measurement with :func:`collect_obs`, pointing both
    the payload and the kept run directory at a temp directory so the
    committed ``BENCH_obs.json`` / ``benchmarks/results/obs_run`` are
    never touched, then compares the fresh overhead against the
    committed record.  Returns a process exit code: 1 when the fresh
    overhead breaks the 5% acceptance bar or regressed more than
    ``threshold_pp`` percentage points past the committed number, 2
    when there is no committed record to compare against, else 0.

    Wall-clock ratios on shared CI runners are noisy, which is why the
    comparison works in percentage points with a generous threshold and
    why CI wires this in as a *soft* gate (it flags, the humans judge).
    ``python -m repro.obs diff`` is the forensic companion: once this
    gate flags a run, diff the fresh run directory it prints against
    the committed ``benchmarks/results/obs_run`` to see *what* changed.
    """
    import tempfile

    if not OBS_OUTPUT.is_file():
        print(f"check-regress: no committed {OBS_OUTPUT.name} — "
              "run --obs once and commit the record first")
        return 2
    committed = json.loads(OBS_OUTPUT.read_text())["run"]
    committed_overhead = committed["instrumentation_overhead_fraction"]
    bar = committed.get("acceptance_bar_fraction", 0.05)

    with tempfile.TemporaryDirectory() as tmp:
        fresh = collect_obs(output=Path(tmp) / "BENCH_obs.json",
                            keep_run_dir=Path(tmp) / "obs_run",
                            write_table=False)
    fresh_overhead = fresh["run"]["instrumentation_overhead_fraction"]

    delta_pp = (fresh_overhead - committed_overhead) * 100.0
    print("check-regress: instrumentation overhead "
          f"committed {committed_overhead:.1%} -> fresh "
          f"{fresh_overhead:.1%} ({delta_pp:+.1f}pp; bar {bar:.0%}, "
          f"threshold {threshold_pp:.1f}pp)")
    failed = False
    if fresh_overhead >= bar:
        print(f"check-regress: FAIL — fresh overhead {fresh_overhead:.1%} "
              f"breaks the {bar:.0%} acceptance bar")
        failed = True
    if delta_pp > threshold_pp:
        print(f"check-regress: FAIL — overhead regressed {delta_pp:.1f}pp "
              "past the committed record")
        failed = True
    if not failed:
        print("check-regress: ok")
    return 1 if failed else 0


def collect_storage(output: Path | None = None, repeats: int = 3) -> dict:
    """Measure the durable-storage subsystem's cost and crash recovery.

    Two halves.  The fsync tax: the same seeded, checkpointed hands-off
    run ``repeats`` times with the fsync discipline disabled
    (``repro.storage.set_fsync(False)`` — tmp + atomic replace only)
    and ``repeats`` times with the full discipline (file fsync before
    the replace, directory fsync after; acceptance bar < 5% over the
    fsync-free run).  The crash sweep: one run per write-site × fault
    combo with a deterministic storage fault armed against that site,
    asserting the crash fired, ``Corleone.resume`` completes, the
    resumed result is bit-identical to the clean run and every
    delivered answer was charged.  A bit-rot pass (flip one bit of
    ``checkpoint.json`` at rest, resume through the quarantine +
    generation-fallback path) rides along.  Writes
    ``BENCH_storage.json`` and a ``storage_durability`` result table,
    and returns the payload.
    """
    import tempfile
    import time

    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    import numpy as np

    from repro import persistence
    from repro.config import (
        BlockerConfig,
        CorleoneConfig,
        EstimatorConfig,
        ForestConfig,
        LocatorConfig,
        MatcherConfig,
    )
    from repro.core.pipeline import Corleone
    from repro.crowd.simulated import SimulatedCrowd
    from repro.engine.checkpoint import CANDIDATES_FILE, CHECKPOINT_FILE
    from repro.storage import (
        SimulatedCrashError,
        StorageFaultInjector,
        set_fsync,
    )
    from repro.synth.restaurants import generate_restaurants

    # Larger than the other modes' 120x90 on purpose: fsync cost is a
    # fixed few milliseconds per checkpoint, so the overhead *fraction*
    # is a statement about checkpoint density.  This workload spaces
    # checkpoints the way a real run does; the per-checkpoint cost in
    # the payload is the density-independent number.
    dataset = generate_restaurants(n_a=240, n_b=180, n_matches=70, seed=7)
    config = CorleoneConfig(
        forest=ForestConfig(n_trees=5),
        blocker=BlockerConfig(t_b=20000, top_k_rules=10,
                              max_labels_per_rule=60),
        matcher=MatcherConfig(batch_size=10, pool_size=40,
                              n_converged=8, n_degrade=6,
                              max_iterations=15),
        estimator=EstimatorConfig(probe_size=25, max_probes=30),
        locator=LocatorConfig(min_difficult_pairs=30),
        max_pipeline_iterations=2,
        seed=0,
    )

    def run_once(run_dir: Path):
        crowd = SimulatedCrowd(dataset.matches, error_rate=0.05,
                               rng=np.random.default_rng(11))
        pipeline = Corleone(config, crowd, seed=123, run_dir=run_dir)
        started = time.perf_counter()
        result = pipeline.run(dataset.table_a, dataset.table_b,
                              dataset.seed_labels)
        return time.perf_counter() - started, result

    def timed_run(fsync: bool) -> float:
        set_fsync(fsync)
        try:
            with tempfile.TemporaryDirectory() as tmp:
                return run_once(Path(tmp) / "run")[0]
        finally:
            set_fsync(True)

    # One warmup run, then the variants interleaved: machine drift over
    # the measurement window (the real fsync cost is tens of
    # milliseconds on a run this size) lands on both sides equally
    # instead of biasing whichever batch ran later.
    with tempfile.TemporaryDirectory() as tmp:
        _, golden = run_once(Path(tmp) / "run")
        checkpoint_doc = json.loads(
            (Path(tmp) / "run" / CHECKPOINT_FILE).read_text())
        checkpoints = checkpoint_doc["index"] + 1
    golden_report = persistence.result_report(golden)
    nosync_times, fsync_times = [], []
    for _ in range(repeats):
        nosync_times.append(timed_run(False))
        fsync_times.append(timed_run(True))

    def crash_and_resume(site: str, kind: str, skip: int,
                         bitflip: str | None = None) -> dict:
        """One armed run + resume; the recovery stats for the table."""
        with tempfile.TemporaryDirectory() as tmp:
            run_dir = Path(tmp) / "run"
            crowd = SimulatedCrowd(dataset.matches, error_rate=0.05,
                                   rng=np.random.default_rng(11))
            injector = StorageFaultInjector(seed=29)
            injector.arm(kind, site, skip=skip)
            crashed = False
            try:
                with injector:
                    Corleone(config, crowd, seed=123,
                             run_dir=run_dir).run(
                        dataset.table_a, dataset.table_b,
                        dataset.seed_labels)
            except SimulatedCrashError:
                crashed = True
            if bitflip is not None:
                injector.flip_bit(run_dir / bitflip)
            resume_crowd = SimulatedCrowd(
                dataset.matches, error_rate=0.05,
                rng=np.random.default_rng(11))
            resumed = Corleone.resume(run_dir, resume_crowd)
            return {
                "site": site,
                "kind": kind if bitflip is None else "bitflip",
                "crash_fired": crashed,
                "resumed": True,
                "bit_identical": (
                    persistence.result_report(resumed) == golden_report
                ),
            }

    sweep = [
        crash_and_resume(CHECKPOINT_FILE, "torn_write", skip=1),
        crash_and_resume(CHECKPOINT_FILE, "crash_before", skip=1),
        crash_and_resume(CHECKPOINT_FILE, "crash_after", skip=1),
        crash_and_resume(CANDIDATES_FILE, "torn_write", skip=0),
        crash_and_resume("MANIFEST.json", "crash_after", skip=2),
        crash_and_resume(CHECKPOINT_FILE, "crash_after", skip=2,
                         bitflip=CHECKPOINT_FILE),
    ]

    nosync = min(nosync_times)
    fsynced = min(fsync_times)
    overhead = round(max(0.0, fsynced - nosync) / nosync, 4)
    payload = {
        "run": {
            "dataset": "restaurants 240x180",
            "repeats": repeats,
            "fsync_off_seconds": round(nosync, 4),
            "fsync_on_seconds": round(fsynced, 4),
            "fsync_overhead_fraction": overhead,
            "acceptance_bar_fraction": 0.05,
            "within_bar": overhead < 0.05,
            "checkpoints_written": checkpoints,
            "fsync_ms_per_checkpoint": round(
                max(0.0, fsynced - nosync) / checkpoints * 1e3, 3),
            "peak_rss_kb": _peak_rss_kb(),
        },
        "fault_sweep": sweep,
        "all_recovered": all(
            entry["crash_fired"] and entry["bit_identical"]
            for entry in sweep
        ),
    }

    target = output if output is not None else STORAGE_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} (fsync overhead {overhead:.1%}, recovery "
          f"{'ok' if payload['all_recovered'] else 'BROKEN'})")

    run = payload["run"]
    lines = [
        "Durable storage: fsync overhead and crash recovery "
        f"({run['dataset']}, best of {repeats})",
        "",
        "metric                      value",
        "--------------------------  ---------",
        f"fsync off                   {run['fsync_off_seconds']:.3f} s",
        f"fsync on                    {run['fsync_on_seconds']:.3f} s",
        f"overhead                    {run['fsync_overhead_fraction']:.1%}"
        f" (bar {run['acceptance_bar_fraction']:.0%}:"
        f" {'ok' if run['within_bar'] else 'EXCEEDED'})",
        f"checkpoints written         {run['checkpoints_written']}",
        f"fsync cost per checkpoint   "
        f"{run['fsync_ms_per_checkpoint']:.2f} ms",
        "",
        "crash site       fault         fired  resumed  bit-identical",
        "---------------  ------------  -----  -------  -------------",
    ]
    for entry in sweep:
        lines.append(
            f"{entry['site']:<15}  {entry['kind']:<12}  "
            f"{'yes' if entry['crash_fired'] else 'NO':<5}  "
            f"{'yes' if entry['resumed'] else 'NO':<7}  "
            f"{'yes' if entry['bit_identical'] else 'NO'}"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "storage_durability.txt").write_text(
        "\n".join(lines) + "\n")
    return payload


def collect_shard(output: Path | None = None, repeats: int = 2,
                  n_a: int = 300, n_b: int = 1600,
                  worker_counts: tuple[int, ...] = (1, 2, 4, 8),
                  full: bool = False) -> dict:
    """Measure the sharded blocking executor's worker scaling curve.

    Applies two blocking rules over a citations-shaped A x B workload
    once through :func:`repro.core.blocker.apply_rules_streaming` (the
    sequential baseline) and once per worker count through
    :func:`repro.exec.apply_rules_sharded`, recording wall-clock best-of
    ``repeats``, the speedup over streaming and — the contract that
    makes the speedup meaningful — whether each worker count's survivor
    list is bit-identical to the sequential one.  ``os.cpu_count()``
    rides in the payload: speedups are bounded by physical cores, so a
    flat curve on a 1-core container is expected, not a regression.
    Writes ``BENCH_shard.json`` and a ``shard_scaling`` result table,
    and returns the payload.

    ``full=True`` (the ``--shard-full`` flag) additionally runs one
    sharded pass over the *paper-size* Citations product (2616 x 64263
    ~ 168M pairs — the workload the paper shipped to Hadoop) and
    records its completion under a ``citations_full`` key.  Expect this
    to take on the order of ten minutes on a laptop core.
    """
    import os
    import time

    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    from repro.core.blocker import apply_rules_streaming
    from repro.exec import apply_rules_sharded
    from repro.features.library import build_feature_library
    from repro.rules.predicates import Predicate
    from repro.rules.rule import Rule
    from repro.synth.citations import generate_citations

    dataset = generate_citations(n_a=n_a, n_b=n_b,
                                 n_matches=max(4, n_a // 10), seed=7)
    library = build_feature_library(dataset.table_a, dataset.table_b)
    # One corpus-independent rule plus one TF/IDF rule: the latter is
    # exactly the class the legacy parallel path had to run sequentially
    # and the sharded executor parallelizes via the fork-shared caches.
    rules = []
    for name, threshold in (("title_jaccard_word", 0.3),
                            ("title_cosine_tfidf", 0.3)):
        if name in library.names:
            rules.append(Rule(
                [Predicate(library.names.index(name), name, True,
                           threshold)],
                predicts_match=False,
            ))
    assert rules, "citations library lost its title features"
    pairs = len(dataset.table_a) * len(dataset.table_b)

    def best_of(fn) -> tuple[float, list]:
        times, result = [], None
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
        return min(times), result

    streaming_seconds, golden = best_of(lambda: apply_rules_streaming(
        dataset.table_a, dataset.table_b, rules, library))

    workers: dict[str, dict] = {}
    for n_workers in worker_counts:
        seconds, survivors = best_of(lambda n=n_workers: apply_rules_sharded(
            dataset.table_a, dataset.table_b, rules, library, n_workers=n))
        workers[str(n_workers)] = {
            "seconds": round(seconds, 4),
            "speedup_vs_streaming": round(streaming_seconds / seconds, 3),
            "bit_identical": survivors == golden,
        }

    payload = {
        "run": {
            "dataset": f"citations {n_a}x{n_b}",
            "pairs": pairs,
            "rules": len(rules),
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "survivors": len(golden),
            "peak_rss_kb": _peak_rss_kb(),
        },
        "streaming_seconds": round(streaming_seconds, 4),
        "workers": workers,
        "merge_determinism_ok": all(
            entry["bit_identical"] for entry in workers.values()
        ),
    }

    if full:
        full_a, full_b = 2616, 64263  # the paper's Citations sizes
        print(f"running full-scale citations blocking "
              f"({full_a}x{full_b} = {full_a * full_b} pairs)...")
        full_dataset = generate_citations(n_a=full_a, n_b=full_b, seed=7)
        full_library = build_feature_library(full_dataset.table_a,
                                             full_dataset.table_b)
        full_rules = [
            Rule([Predicate(full_library.names.index(name), name, True,
                            threshold)], predicts_match=False)
            for name, threshold in (("title_jaccard_word", 0.3),
                                    ("title_cosine_tfidf", 0.3))
        ]
        n_workers = min(4, os.cpu_count() or 1)
        started = time.perf_counter()
        full_survivors = apply_rules_sharded(
            full_dataset.table_a, full_dataset.table_b, full_rules,
            full_library, n_workers=n_workers)
        elapsed = time.perf_counter() - started
        full_pairs = full_a * full_b
        payload["citations_full"] = {
            "dataset": f"citations {full_a}x{full_b}",
            "pairs": full_pairs,
            "n_workers": n_workers,
            "seconds": round(elapsed, 1),
            "pairs_per_second": round(full_pairs / elapsed, 1),
            "survivors": len(full_survivors),
            "reduction_ratio": round(len(full_survivors) / full_pairs, 6),
        }

    target = output if output is not None else SHARD_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} ({pairs} pairs, "
          f"{payload['run']['cpu_count']} cores, determinism "
          f"{'ok' if payload['merge_determinism_ok'] else 'BROKEN'})")

    run = payload["run"]
    lines = [
        "Sharded blocking executor: worker scaling "
        f"({run['dataset']}, {run['pairs']} pairs, "
        f"{run['cpu_count']} cores, best of {repeats})",
        "",
        "workers  seconds  speedup  bit-identical",
        "-------  -------  -------  -------------",
        f"stream   {payload['streaming_seconds']:>7.3f}     1.00"
        "  (baseline)",
    ]
    for n_workers in worker_counts:
        entry = workers[str(n_workers)]
        lines.append(
            f"{n_workers:>7}  {entry['seconds']:>7.3f}  "
            f"{entry['speedup_vs_streaming']:>7.2f}  "
            f"{'yes' if entry['bit_identical'] else 'NO'}"
        )
    full_entry = payload.get("citations_full")
    if full_entry is not None:
        lines += [
            "",
            f"full-scale {full_entry['dataset']}: "
            f"{full_entry['pairs']} pairs in {full_entry['seconds']:.0f} s"
            f" ({full_entry['pairs_per_second']:.0f} pairs/s,"
            f" {full_entry['n_workers']} workers,"
            f" {full_entry['survivors']} survivors,"
            f" reduction {full_entry['reduction_ratio']:.2%})",
        ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "shard_scaling.txt").write_text("\n".join(lines) + "\n")
    return payload


# Runs in a fresh interpreter per variant (see collect_plan): peak RSS
# is a process-lifetime high-water mark, so sharing one process across
# variants would let the largest working set mask all the others.
_PLAN_CHILD = """
import hashlib, json, sys, tempfile, time
from pathlib import Path

from repro.core.blocker import apply_rules_streaming
from repro.features.library import build_feature_library
from repro.features.vectorize import vectorize_pairs
from repro.plan import PlanStats, SpillManager, apply_rules_plan
from repro.rules.predicates import Predicate
from repro.rules.rule import Rule
from repro.synth.citations import generate_citations


def peak_rss_kb():
    import resource
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


variant, n_a, n_b = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
dataset = generate_citations(n_a=n_a, n_b=n_b,
                             n_matches=max(4, n_a // 10), seed=7)
library = build_feature_library(dataset.table_a, dataset.table_b)
rules = [
    Rule([Predicate(library.names.index(name), name, True, threshold)],
         predicts_match=False)
    for name, threshold in (("title_jaccard_word", 0.3),
                            ("title_cosine_tfidf", 0.3),
                            ("title_monge_elkan", 0.4))
]
out = {"variant": variant}

if variant in ("blocking_streaming", "blocking_plan"):
    stats = PlanStats()
    started = time.perf_counter()
    if variant == "blocking_streaming":
        survivors = apply_rules_streaming(
            dataset.table_a, dataset.table_b, rules, library)
    else:
        survivors = apply_rules_plan(
            dataset.table_a, dataset.table_b, rules, library,
            stats=stats)
        out["plan_stats"] = stats.as_dict()
    out["seconds"] = time.perf_counter() - started
    out["survivors"] = len(survivors)
    out["survivors_sha256"] = hashlib.sha256(
        "\\n".join(f"{p.a_id}|{p.b_id}" for p in survivors)
        .encode()).hexdigest()
else:  # vectorize_ram / vectorize_spill
    pairs = apply_rules_streaming(
        dataset.table_a, dataset.table_b, rules, library)
    spill_dir = tempfile.mkdtemp()
    started = time.perf_counter()
    if variant == "vectorize_spill":
        # An 8 KiB RAM cap the matrix must exceed: the whole matrix
        # lives in the memmap, never in an anonymous heap block.
        spill = SpillManager(Path(spill_dir), 1 << 13)
        buffer = spill.allocate("candidates",
                                (len(pairs), len(library)))
        candidates = vectorize_pairs(
            dataset.table_a, dataset.table_b, pairs, library,
            engine="plan", out=buffer)
        out["spill_threshold_bytes"] = 1 << 13
        out["bytes_spilled"] = spill.bytes_spilled
        spill.close()
    else:
        candidates = vectorize_pairs(
            dataset.table_a, dataset.table_b, pairs, library)
    out["seconds"] = time.perf_counter() - started
    out["pairs"] = len(pairs)
    out["matrix_bytes"] = candidates.features.nbytes
    out["matrix_sha256"] = hashlib.sha256(
        candidates.features.tobytes()).hexdigest()

out["peak_rss_kb"] = peak_rss_kb()
print(json.dumps(out))
"""


def collect_plan(output: Path | None = None,
                 n_a: int = 150, n_b: int = 400) -> dict:
    """Measure the plan compiler's pruning speedup and spill behaviour.

    Four fresh subprocesses over the same citations-shaped workload
    (each variant gets its own interpreter so ``ru_maxrss`` measures
    that variant alone): full-matrix streaming blocking versus the
    fused plan executor under a three-rule cheap-to-expensive rule set
    (the shape the compiler's predicate pushdown exploits), then
    in-RAM versus memmap-spilled candidate vectorization where the
    spill variant's matrix exceeds an 8 KiB configured RAM cap.
    SHA-256 checksums of the survivor list and the feature matrix
    assert bit-identity across engines.  Writes ``BENCH_plan.json``
    and a ``plan_compiler`` result table, and returns the payload.
    """
    import os
    import subprocess
    import sys as _sys

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    # TF/IDF cosine sums iterate token *sets*, so summation order — and
    # therefore the float bytes — depends on string hash order.  Pin
    # the hash seed so all four interpreters agree and the cross-process
    # checksums compare bytes, not hash-randomization noise.
    env["PYTHONHASHSEED"] = "0"

    def run_variant(variant: str) -> dict:
        proc = subprocess.run(
            [_sys.executable, "-c", _PLAN_CHILD, variant,
             str(n_a), str(n_b)],
            capture_output=True, text=True, env=env, check=True)
        return json.loads(proc.stdout.splitlines()[-1])

    streaming = run_variant("blocking_streaming")
    plan = run_variant("blocking_plan")
    ram = run_variant("vectorize_ram")
    spill = run_variant("vectorize_spill")

    assert plan["survivors_sha256"] == streaming["survivors_sha256"], (
        "plan executor diverged from streaming blocking")
    assert spill["matrix_sha256"] == ram["matrix_sha256"], (
        "spilled vectorization diverged from the in-RAM matrix")
    assert spill["bytes_spilled"] > spill["spill_threshold_bytes"], (
        "spill variant never exceeded its configured RAM cap")

    stats = plan["plan_stats"]
    payload = {
        "run": {
            "dataset": f"citations {n_a}x{n_b}",
            "pairs": n_a * n_b,
            "rules": 3,
            "survivors": streaming["survivors"],
        },
        "blocking": {
            "streaming_seconds": round(streaming["seconds"], 4),
            "plan_seconds": round(plan["seconds"], 4),
            "speedup": round(streaming["seconds"] / plan["seconds"], 2),
            "bit_identical": True,
            "cells_computed": stats["cells_computed"],
            "cells_pruned": stats["cells_pruned"],
            "pruned_fraction": round(
                stats["cells_pruned"]
                / max(1, stats["cells_pruned"] + stats["cells_computed"]),
                4),
            "streaming_peak_rss_kb": streaming["peak_rss_kb"],
            "plan_peak_rss_kb": plan["peak_rss_kb"],
        },
        "vectorize": {
            "pairs": ram["pairs"],
            "matrix_bytes": ram["matrix_bytes"],
            "spill_threshold_bytes": spill["spill_threshold_bytes"],
            "exceeds_ram_cap": (
                spill["matrix_bytes"] > spill["spill_threshold_bytes"]
            ),
            "bytes_spilled": spill["bytes_spilled"],
            "ram_seconds": round(ram["seconds"], 4),
            "spill_seconds": round(spill["seconds"], 4),
            "bit_identical": True,
            "ram_peak_rss_kb": ram["peak_rss_kb"],
            "spill_peak_rss_kb": spill["peak_rss_kb"],
        },
    }

    target = output if output is not None else PLAN_OUTPUT
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target} (blocking speedup "
          f"{payload['blocking']['speedup']:.2f}x, "
          f"{payload['blocking']['pruned_fraction']:.0%} cells pruned)")

    run = payload["run"]
    blocking = payload["blocking"]
    vec = payload["vectorize"]
    table = (
        "Plan compiler: fused blocking + memmap spill "
        f"({run['dataset']}, {run['pairs']} pairs, fresh process per "
        "variant)\n"
        "\n"
        "variant             seconds  peak RSS  notes\n"
        "------------------  -------  --------  -----\n"
        f"blocking streaming  {blocking['streaming_seconds']:>7.3f}  "
        f"{blocking['streaming_peak_rss_kb']:>6} K  full matrix\n"
        f"blocking plan       {blocking['plan_seconds']:>7.3f}  "
        f"{blocking['plan_peak_rss_kb']:>6} K  "
        f"{blocking['speedup']:.2f}x, "
        f"{blocking['pruned_fraction']:.0%} cells pruned, "
        "bit-identical\n"
        f"vectorize in-RAM    {vec['ram_seconds']:>7.3f}  "
        f"{vec['ram_peak_rss_kb']:>6} K  "
        f"{vec['matrix_bytes']} B matrix\n"
        f"vectorize spill     {vec['spill_seconds']:>7.3f}  "
        f"{vec['spill_peak_rss_kb']:>6} K  "
        f"{vec['bytes_spilled']} B memmapped (cap "
        f"{vec['spill_threshold_bytes']} B"
        f"{', exceeded' if vec['exceeds_ram_cap'] else ''}), "
        "bit-identical\n"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "plan_compiler.txt").write_text(table)
    return payload


def main() -> None:
    if not RESULTS_DIR.is_dir():
        raise SystemExit(
            "no benchmarks/results directory — run the bench suite first"
        )
    available = {path.stem: path for path in RESULTS_DIR.glob("*.txt")}
    ordered = [name for name in ORDER if name in available]
    ordered += sorted(set(available) - set(ORDER))

    parts = [
        "# Benchmark results\n",
        "Regenerated by `pytest benchmarks/ --benchmark-only`; see "
        "EXPERIMENTS.md for paper-vs-measured commentary.\n",
    ]
    for name in ordered:
        parts.append(f"\n## {name}\n")
        parts.append("```text")
        parts.append(available[name].read_text().rstrip())
        parts.append("```")
    OUTPUT.write_text("\n".join(parts) + "\n")
    print(f"wrote {OUTPUT} ({len(ordered)} result tables)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--substrates", type=Path, metavar="BENCHMARK_JSON",
        help="distill this pytest-benchmark JSON dump into "
             "BENCH_substrates.json instead of collecting RESULTS.md",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run corlint over src/repro and record per-rule finding "
             "counts, cold/warm wall times and per-rule timings in "
             "BENCH_lint.json instead of collecting RESULTS.md",
    )
    parser.add_argument(
        "--engine", action="store_true",
        help="measure staged-engine checkpoint overhead and event "
             "throughput, recording BENCH_engine.json instead of "
             "collecting RESULTS.md",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="measure the resilient gateway's overhead at 0%% faults "
             "and its recovery statistics at 10%%, recording "
             "BENCH_faults.json instead of collecting RESULTS.md",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="measure run-telemetry instrumentation overhead (telemetry "
             "on vs off), recording BENCH_obs.json and keeping an "
             "instrumented run at benchmarks/results/obs_run instead of "
             "collecting RESULTS.md",
    )
    parser.add_argument(
        "--check-regress", action="store_true",
        help="take a fresh instrumentation-overhead measurement (into a "
             "temp dir, leaving committed artifacts untouched) and exit "
             "non-zero when it breaks the 5%% bar or regresses past "
             "--regress-threshold-pp vs the committed BENCH_obs.json",
    )
    parser.add_argument(
        "--regress-threshold-pp", type=float, default=3.0,
        metavar="PP",
        help="allowed overhead regression in percentage points before "
             "--check-regress fails (default 3.0)",
    )
    parser.add_argument(
        "--shard", action="store_true",
        help="measure the sharded blocking executor's 1/2/4/8-worker "
             "scaling curve and merge determinism, recording "
             "BENCH_shard.json instead of collecting RESULTS.md",
    )
    parser.add_argument(
        "--plan", action="store_true",
        help="measure the plan compiler's fused-blocking speedup and "
             "memmap spill behaviour in fresh subprocesses (honest peak "
             "RSS), recording BENCH_plan.json instead of collecting "
             "RESULTS.md",
    )
    parser.add_argument(
        "--storage", action="store_true",
        help="measure the durable-storage fsync overhead (on vs off) "
             "and run the crash-and-resume fault sweep, recording "
             "BENCH_storage.json instead of collecting RESULTS.md",
    )
    parser.add_argument(
        "--shard-full", action="store_true",
        help="like --shard, but additionally run one sharded blocking "
             "pass over the paper-size Citations product (~168M pairs; "
             "takes minutes) and record it under citations_full",
    )
    args = parser.parse_args()
    if args.substrates is not None:
        distill_substrates(args.substrates)
    elif args.lint:
        collect_lint()
    elif args.engine:
        collect_engine()
    elif args.faults:
        collect_faults()
    elif args.check_regress:
        raise SystemExit(check_regress(args.regress_threshold_pp))
    elif args.obs:
        collect_obs()
    elif args.plan:
        collect_plan()
    elif args.storage:
        collect_storage()
    elif args.shard_full:
        collect_shard(full=True)
    elif args.shard:
        collect_shard()
    else:
        main()
