"""Table 2 — overall performance: Corleone vs Baseline 1 / Baseline 2.

For each dataset: Corleone's true P/R/F1, crowd cost and pairs labelled,
against two traditional baselines that use developer blocking and
perfectly labelled random training data (Baseline 1 uses as many training
pairs as Corleone labelled; Baseline 2 uses 20% of the candidate set).

Shape checks (the paper's qualitative claims):
* Corleone beats Baseline 1 everywhere (active learning matters);
* Corleone is comparable-or-better vs Baseline 2 on the easy datasets
  and clearly better on Products, despite Baseline 2's 10x training data.
"""

from __future__ import annotations

import pytest

from _common import DATASETS, bench_config, save_table
from repro.core.baselines import build_baseline_candidates, run_baseline
from repro.evaluation.reporting import pct

_BASELINES: dict[str, tuple] = {}


def _baselines(runs, name):
    """Baseline 1 and 2 for a dataset, sharing one vectorization.

    Results are disk-cached next to the pipeline runs (baseline-2
    training on 20% of the candidate set takes minutes).
    """
    if name in _BASELINES:
        return _BASELINES[name]

    import pickle

    from _common import _DISK_CACHE_DIR, _CACHE_VERSION

    summary = runs.corleone(name)
    cache_path = (_DISK_CACHE_DIR /
                  f"baselines_{_CACHE_VERSION}_{name}_"
                  f"{summary.pairs_labeled}.pkl")
    if cache_path.is_file():
        try:
            with cache_path.open("rb") as handle:
                _BASELINES[name] = pickle.load(handle)
            return _BASELINES[name]
        except Exception:
            cache_path.unlink(missing_ok=True)

    dataset = runs.dataset(name)
    candidates = build_baseline_candidates(dataset)
    config = bench_config()
    baseline1 = run_baseline(
        dataset, n_train=summary.pairs_labeled, config=config,
        candidates=candidates, seed=2, name="baseline1",
    )
    baseline2 = run_baseline(
        dataset, n_train=max(1, len(candidates) // 5), config=config,
        candidates=candidates, seed=2, name="baseline2",
    )
    _BASELINES[name] = (baseline1, baseline2)
    cache_path.parent.mkdir(exist_ok=True)
    with cache_path.open("wb") as handle:
        pickle.dump(_BASELINES[name], handle)
    return _BASELINES[name]


@pytest.mark.parametrize("name", DATASETS)
def test_table2_corleone_run(runs, benchmark, name):
    summary = benchmark.pedantic(
        lambda: runs.corleone(name), rounds=1, iterations=1
    )
    floor = {"restaurants": 0.85, "citations": 0.8, "products": 0.6}
    assert summary.f1 >= floor[name]
    assert summary.pairs_labeled > 0
    assert summary.dollars > 0


@pytest.mark.parametrize("name", DATASETS)
def test_table2_baselines(runs, benchmark, name):
    baseline1, baseline2 = benchmark.pedantic(
        lambda: _baselines(runs, name), rounds=1, iterations=1
    )
    assert 0.0 <= baseline1.f1 <= 1.0
    assert 0.0 <= baseline2.f1 <= 1.0


def test_table2_report(runs, benchmark):
    # Report assembly is immediate; the pedantic call keeps this test
    # visible under --benchmark-only (which skips non-benchmark tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        summary = runs.corleone(name)
        baseline1, baseline2 = _baselines(runs, name)
        rows.append([
            name,
            pct(summary.precision), pct(summary.recall), pct(summary.f1),
            f"${summary.dollars:.1f}", summary.pairs_labeled,
            pct(baseline1.precision), pct(baseline1.recall),
            pct(baseline1.f1),
            pct(baseline2.precision), pct(baseline2.recall),
            pct(baseline2.f1),
        ])
    save_table(
        "table2_overall",
        "Table 2: Corleone vs traditional solutions "
        "(simulated crowd, 10% error rate)",
        ["dataset", "P", "R", "F1", "cost", "#pairs",
         "B1 P", "B1 R", "B1 F1", "B2 P", "B2 R", "B2 F1"],
        rows,
        notes=(
            "Paper (real AMT crowd): restaurants 97.0/96.1/96.5 $9.2 274; "
            "citations 89.9/94.3/92.1 $69.5 2082; "
            "products 91.5/87.4/89.3 $256.8 3205.\n"
            "Paper baselines F1: B1 7.6/87.1/40.5, B2 96.4/92.0/69.5."
        ),
    )

    # Shape assertions.
    for name in DATASETS:
        summary = runs.corleone(name)
        baseline1, baseline2 = _BASELINES[name]
        assert summary.f1 > baseline1.f1, (
            f"{name}: Corleone must beat Baseline 1"
        )
    products = runs.corleone("products")
    _, products_b2 = _BASELINES["products"]
    assert products.f1 > products_b2.f1, (
        "products: Corleone must beat even the strong Baseline 2"
    )
