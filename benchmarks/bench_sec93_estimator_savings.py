"""Section 9.3 — estimator label savings vs the naive method.

The paper: estimating P and R within a 0.05 margin on Restaurants would
need 100,000+ labels with the Section 6.1 baseline, while Corleone's
reduction-based estimator used ~170; Citations and Products saved 50%
and 92% respectively.

The naive requirement is computed analytically from the sampling
formulas (labelling 100K pairs to demonstrate it would be absurd, which
is the paper's very point); the Corleone cost is the measured label
count from the cached pipeline runs' first estimation.
"""

from __future__ import annotations

import pytest

from _common import DATASETS, save_table
from repro.rules.statistics import required_sample_size


def naive_label_requirement(n_candidates: int, n_positives: int,
                            recall_guess: float = 0.8,
                            epsilon: float = 0.05) -> int:
    """Labels the Section 6.1 method needs to pin recall within epsilon.

    Recall estimation needs ``required_sample_size`` *actual positives*
    in the sample; at density d a uniform sample must be ~needed/d big.
    """
    density = n_positives / n_candidates if n_candidates else 0.0
    if density == 0.0:
        return n_candidates
    needed_positives = required_sample_size(
        recall_guess, epsilon, max(n_positives, 1)
    )
    return min(n_candidates, int(round(needed_positives / density)))


@pytest.mark.parametrize("name", DATASETS)
def test_sec93_estimator_savings(runs, benchmark, name):
    summary = benchmark.pedantic(
        lambda: runs.corleone(name), rounds=1, iterations=1
    )
    first = summary.result.iterations[0]
    estimate = first.estimate
    assert estimate is not None

    candidates = summary.result.candidates
    survivors = set(candidates.pairs)
    surviving_matches = sum(
        1 for pair in summary.dataset.matches if pair in survivors
    )
    naive = naive_label_requirement(len(candidates), surviving_matches)
    measured = first.estimation_pairs_labeled

    # The reduction-based estimator must be dramatically cheaper when the
    # data is skewed (all three datasets are, post-blocking).
    assert measured < naive, f"{name}: estimator must save labels"
    savings = 1.0 - measured / naive
    assert savings >= 0.3, f"{name}: expected >=30% savings, got {savings:.0%}"

    _ROWS.append([
        name, len(candidates), surviving_matches, naive, measured,
        f"{savings:.0%}",
    ])


_ROWS: list[list] = []


def test_sec93_estimator_savings_report(runs, benchmark):
    # Report assembly is immediate; the pedantic call keeps this test
    # visible under --benchmark-only (which skips non-benchmark tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table(
        "sec93_estimator_savings",
        "Section 9.3: estimation labels, naive sampling vs Corleone",
        ["dataset", "|C|", "matches in C", "naive labels",
         "corleone labels", "savings"],
        _ROWS,
        notes="Paper: restaurants 100,000+ vs ~170; citations 50% fewer; "
              "products 92% fewer.",
    )
    assert len(_ROWS) == len(DATASETS)
