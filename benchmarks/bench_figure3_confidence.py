"""Figure 3 — confidence trajectories and the three stopping patterns.

The paper's Figure 3 illustrates conf(V) over active-learning iterations
for the converged / near-absolute / degrading patterns.  This bench
(a) replays the real trajectory recorded by the benchmark pipeline runs
and reports which pattern fired, and (b) drives the ConfidenceMonitor
with three canonical synthetic trajectories to regenerate the figure's
panels deterministically.
"""

from __future__ import annotations

import numpy as np

from _common import DATASETS, RESULTS_DIR, save_table
from repro.config import MatcherConfig
from repro.core.stopping import ConfidenceMonitor, smooth
from repro.evaluation.plotting import line_plot, multi_series_table


def test_figure3_real_trajectories(runs, benchmark):
    summaries = benchmark.pedantic(
        lambda: [runs.corleone(name) for name in DATASETS],
        rounds=1, iterations=1,
    )
    rows = []
    for summary in summaries:
        first = summary.result.iterations[0].matcher
        series = first.confidence_history
        smoothed = smooth(series, 5)
        rows.append([
            summary.dataset.name,
            first.stop_reason,
            len(series),
            f"{series[0]:.3f}",
            f"{max(smoothed):.3f}",
            f"{smoothed[-1]:.3f}",
        ])
        # Confidence is a proper mean of per-example confidences.
        assert all(0.0 <= c <= 1.0 + 1e-9 for c in series)
    save_table(
        "figure3_confidence_real",
        "Figure 3 (measured): conf(V) trajectories of iteration-1 matchers",
        ["dataset", "stop", "iters", "first", "peak", "last"],
        rows,
    )
    # Render the actual figure: one sparkline per dataset, shared scale.
    series = {
        summary.dataset.name:
            smooth(summary.result.iterations[0].matcher.confidence_history,
                   5)
        for summary in summaries
    }
    figure = multi_series_table(series, low=0.0, high=1.0)
    (RESULTS_DIR / "figure3_confidence_plot.txt").write_text(
        "Figure 3 (measured): smoothed conf(V), 0..1 scale\n\n"
        + figure + "\n"
    )
    print(figure)
    # Matchers must stop via a recognized pattern, not the hard cap.
    for row in rows:
        assert row[1] in ("near_absolute", "converged", "degrading",
                          "pool_exhausted")


def _drive(series, config) -> tuple[str | None, int | None]:
    monitor = ConfidenceMonitor(config)
    for value in series:
        decision = monitor.add(value)
        if decision is not None:
            return decision.reason, decision.rollback_index
    return None, None


def test_figure3_synthetic_patterns(benchmark):
    config = MatcherConfig(smoothing_window=5, epsilon=0.01,
                           n_converged=20, n_high=3, n_degrade=15)
    rng = np.random.default_rng(0)

    # Panel (a): rise then plateau -> converged.
    plateau = list(np.linspace(0.4, 0.9, 15)) + [
        0.9 + rng.normal(0, 0.002) for _ in range(30)
    ]
    # Panel (b): rise to ~1.0 -> near-absolute.
    absolute = list(np.linspace(0.5, 0.999, 10)) + [0.999] * 5
    # Panel (b, right): peak then decline -> degrading.
    degrade = (list(np.linspace(0.4, 0.95, 15))
               + list(np.linspace(0.95, 0.55, 35)))

    def run_all():
        return (
            _drive(plateau, config),
            _drive(absolute, config),
            _drive(degrade, config),
        )

    (conv, near, deg) = benchmark.pedantic(run_all, rounds=3, iterations=1)

    assert conv[0] == "converged"
    assert near[0] == "near_absolute"
    assert deg[0] == "degrading"
    # The degrading rollback lands near the peak, not at the end.
    assert deg[1] is not None and deg[1] <= 20

    rows = [
        ["converged (panel a)", conv[0], conv[1]],
        ["near-absolute (panel b)", near[0], near[1]],
        ["degrading (panel b)", deg[0], deg[1]],
    ]
    save_table(
        "figure3_confidence_synthetic",
        "Figure 3 (synthetic): the three stopping patterns",
        ["trajectory", "detected pattern", "rollback index"],
        rows,
    )
    panels = "\n\n".join(
        line_plot(list(values), width=50, height=8, title=title,
                  y_low=0.3, y_high=1.0)
        for title, values in (
            ("panel a: converged", plateau),
            ("panel b: near-absolute", absolute),
            ("panel b: degrading", degrade),
        )
    )
    (RESULTS_DIR / "figure3_confidence_panels.txt").write_text(
        panels + "\n"
    )
