"""Shared infrastructure for the benchmark suite.

Every bench regenerates one of the paper's tables or figures.  Full
pipeline runs are expensive (minutes), so they are computed once per
pytest session in :class:`RunCache` and shared across bench modules.
Formatted output tables are written to ``benchmarks/results/`` and
printed, so ``pytest benchmarks/ --benchmark-only -s`` shows the paper-
style rows alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.config import CorleoneConfig, scaled_config
from repro.evaluation.experiment import CorleoneRunSummary, run_corleone
from repro.evaluation.reporting import format_table
from repro.synth import load_dataset
from repro.synth.base import SyntheticDataset

RESULTS_DIR = Path(__file__).parent / "results"

DATASETS = ("restaurants", "citations", "products")

CROWD_ERROR_RATE = 0.1
"""Default worker error rate: moderate noise, the paper's AMT regime."""


def bench_config(**changes: object) -> CorleoneConfig:
    """The benchmark configuration: paper parameters with a scaled t_B.

    t_B is scaled to the bench datasets (see DESIGN.md) and the pipeline
    is capped at two iterations, matching the 1-2 iterations the paper's
    runs needed (Table 4).
    """
    cfg = scaled_config(t_b=20_000).replace(max_pipeline_iterations=2)
    if changes:
        cfg = cfg.replace(**changes)
    return cfg


_CACHE_VERSION = 2
_DISK_CACHE_DIR = Path(__file__).parent / ".cache"


class RunCache:
    """Session-wide memo of datasets and pipeline runs.

    Full pipeline runs are deterministic per (dataset, config, seeds), so
    they are additionally persisted to ``benchmarks/.cache`` — re-running
    the bench suite reuses previous runs instead of re-simulating minutes
    of crowdsourcing.  Delete the directory (or set
    ``CORLEONE_BENCH_NO_CACHE=1``) to force fresh runs after a code
    change that alters pipeline behaviour.
    """

    def __init__(self) -> None:
        self._datasets: dict[tuple, SyntheticDataset] = {}
        self._runs: dict[tuple, CorleoneRunSummary] = {}
        self._disk_enabled = not os.environ.get("CORLEONE_BENCH_NO_CACHE")

    def dataset(self, name: str, scale: str = "bench",
                seed: int = 0) -> SyntheticDataset:
        key = (name, scale, seed)
        if key not in self._datasets:
            self._datasets[key] = load_dataset(name, scale=scale, seed=seed)
        return self._datasets[key]

    def corleone(self, name: str, error_rate: float = CROWD_ERROR_RATE,
                 seed: int = 1, mode: str = "full",
                 config: CorleoneConfig | None = None,
                 scale: str = "bench") -> CorleoneRunSummary:
        """A full (or partial) Corleone run, memoized (RAM + disk)."""
        resolved = config if config is not None else bench_config()
        key = (name, error_rate, seed, mode, scale, repr(resolved))
        if key in self._runs:
            return self._runs[key]

        disk_path = self._disk_path(key)
        if self._disk_enabled and disk_path.is_file():
            try:
                with disk_path.open("rb") as handle:
                    summary = pickle.load(handle)
                self._runs[key] = summary
                return summary
            except Exception:
                disk_path.unlink(missing_ok=True)  # corrupt: recompute

        summary = run_corleone(
            self.dataset(name, scale=scale),
            resolved,
            error_rate=error_rate,
            seed=seed,
            mode=mode,
        )
        self._runs[key] = summary
        if self._disk_enabled:
            disk_path.parent.mkdir(exist_ok=True)
            with disk_path.open("wb") as handle:
                pickle.dump(summary, handle)
        return summary

    @staticmethod
    def _disk_path(key: tuple) -> Path:
        digest = hashlib.sha256(
            repr((_CACHE_VERSION, key)).encode()
        ).hexdigest()[:24]
        return _DISK_CACHE_DIR / f"run_{digest}.pkl"


def memo_disk(key: object, compute):
    """Disk-memoize any deterministic bench computation.

    ``key`` must be a repr-stable value capturing everything the result
    depends on (include a version token when the computation changes).
    Results must be picklable.  Honors ``CORLEONE_BENCH_NO_CACHE``.
    """
    if os.environ.get("CORLEONE_BENCH_NO_CACHE"):
        return compute()
    digest = hashlib.sha256(
        repr((_CACHE_VERSION, key)).encode()
    ).hexdigest()[:24]
    path = _DISK_CACHE_DIR / f"memo_{digest}.pkl"
    if path.is_file():
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
    value = compute()
    path.parent.mkdir(exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump(value, handle)
    return value


def save_table(name: str, title: str, headers, rows,
               notes: str = "") -> str:
    """Format, persist and return a results table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = format_table(headers, rows)
    text = f"{title}\n\n{body}\n"
    if notes:
        text += f"\n{notes}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
    return text
