"""Microbenchmarks of the hot substrate paths.

Unlike the table/figure benches (single-shot pipeline runs), these are
honest multi-round pytest-benchmark measurements of the operations that
dominate wall-clock: similarity features, pair vectorization, forest
training/prediction, and rule application.  Useful for catching
performance regressions when the substrates change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ForestConfig
from repro.features.similarity import (
    jaro_winkler,
    levenshtein_similarity,
    monge_elkan,
)
from repro.forest.forest import train_forest


class TestSimilarityMicro:
    S = "kingston hyperx 4gb kit 2 x 2gb ddr3 memory"
    T = "kingston 4gb hyperx ddr3 kit 1800mhz"

    def test_levenshtein(self, benchmark):
        value = benchmark(levenshtein_similarity, self.S, self.T)
        assert 0.0 <= value <= 1.0

    def test_jaro_winkler(self, benchmark):
        value = benchmark(jaro_winkler, self.S, self.T)
        assert 0.0 <= value <= 1.0

    def test_monge_elkan_cached(self, benchmark):
        """After the word-level cache warms, Monge-Elkan is cheap."""
        monge_elkan(self.S, self.T)  # warm the jaro-winkler cache
        value = benchmark(monge_elkan, self.S, self.T)
        assert value > 0.5


class TestVectorizationMicro:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.features.library import build_feature_library
        from repro.synth.restaurants import generate_restaurants
        dataset = generate_restaurants(n_a=80, n_b=60, n_matches=20,
                                       seed=9)
        library = build_feature_library(dataset.table_a, dataset.table_b)
        pairs = [
            (a.record_id, b.record_id)
            for a in dataset.table_a for b in dataset.table_b
        ][:1000]
        return dataset, library, pairs

    def test_vectorize_1k_pairs(self, benchmark, world):
        from repro.data.pairs import Pair
        from repro.features.vectorize import vectorize_pairs
        dataset, library, pairs = world
        result = benchmark.pedantic(
            lambda: vectorize_pairs(
                dataset.table_a, dataset.table_b,
                [Pair(*p) for p in pairs], library,
            ),
            rounds=3, iterations=1,
        )
        assert len(result) == 1000


class TestEngineThroughput:
    """Scalar vs batched vectorization on products at 10k pairs.

    The pair of timings (same pairs, same library, engine switched)
    is the headline number for the batched feature-evaluation engine;
    ``collect_results.py --substrates`` distills their ratio into the
    ``BENCH_substrates.json`` baseline.
    """

    N_PAIRS = 10_000

    @pytest.fixture(scope="class")
    def products_world(self):
        from repro.data.pairs import Pair
        from repro.features.library import build_feature_library
        from repro.synth.products import generate_products
        dataset = generate_products(n_a=250, n_b=2200, n_matches=115,
                                    seed=9)
        library = build_feature_library(dataset.table_a, dataset.table_b)
        a_ids = [r.record_id for r in dataset.table_a]
        b_ids = [r.record_id for r in dataset.table_b]
        rng = np.random.default_rng(2)
        flat = rng.choice(len(a_ids) * len(b_ids), size=self.N_PAIRS,
                          replace=False)
        pairs = [
            Pair(a_ids[index // len(b_ids)], b_ids[index % len(b_ids)])
            for index in flat
        ]
        return dataset, library, pairs

    def _run(self, benchmark, products_world, engine, rounds):
        from repro.features.vectorize import vectorize_pairs
        dataset, library, pairs = products_world
        result = benchmark.pedantic(
            lambda: vectorize_pairs(
                dataset.table_a, dataset.table_b, pairs, library,
                engine=engine,
            ),
            rounds=rounds, iterations=1, warmup_rounds=1,
        )
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["pairs"] = self.N_PAIRS
        assert len(result) == self.N_PAIRS

    def test_vectorize_products_10k_scalar(self, benchmark,
                                           products_world):
        self._run(benchmark, products_world, "scalar", rounds=2)

    def test_vectorize_products_10k_batched(self, benchmark,
                                            products_world):
        self._run(benchmark, products_world, "batched", rounds=5)


class TestForestMicro:
    @pytest.fixture(scope="class")
    def training_data(self):
        rng = np.random.default_rng(3)
        x = rng.random((400, 16))
        y = (x[:, 0] + x[:, 1]) > 1.0
        probe = rng.random((20_000, 16))
        return x, y, probe

    def test_train_400x16(self, benchmark, training_data):
        x, y, _ = training_data
        forest = benchmark.pedantic(
            lambda: train_forest(x, y, ForestConfig(),
                                 np.random.default_rng(1)),
            rounds=3, iterations=1,
        )
        assert len(forest) == 10

    def test_predict_20k(self, benchmark, training_data):
        x, y, probe = training_data
        forest = train_forest(x, y, ForestConfig(),
                              np.random.default_rng(1))
        predictions = benchmark.pedantic(
            lambda: forest.predict(probe), rounds=3, iterations=1
        )
        assert predictions.shape == (20_000,)

    def test_entropy_20k(self, benchmark, training_data):
        x, y, probe = training_data
        forest = train_forest(x, y, ForestConfig(),
                              np.random.default_rng(1))
        entropy = benchmark.pedantic(
            lambda: forest.entropy(probe), rounds=3, iterations=1
        )
        assert entropy.shape == (20_000,)


class TestRuleMicro:
    def test_rule_application_100k_rows(self, benchmark):
        from repro.rules.predicates import Predicate
        from repro.rules.rule import Rule
        rng = np.random.default_rng(5)
        matrix = rng.random((100_000, 8))
        matrix[::17, 3] = np.nan
        rule = Rule(
            [
                Predicate(0, "f0", True, 0.4),
                Predicate(3, "f3", False, 0.2, nan_satisfies=True),
            ],
            predicts_match=False,
        )
        mask = benchmark(rule.applies, matrix)
        assert mask.shape == (100_000,)
