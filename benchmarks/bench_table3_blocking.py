"""Table 3 — blocking results.

For each dataset: Cartesian product size, umbrella-set size, blocking
recall (share of gold matches retained), crowd cost of blocking and
pairs labelled during blocking.  Restaurants must not trigger blocking
(its product is below t_B), mirroring the paper.
"""

from __future__ import annotations

import pytest

from _common import DATASETS, save_table
from repro.evaluation.reporting import pct


@pytest.mark.parametrize("name", DATASETS)
def test_table3_blocking_run(runs, benchmark, name):
    summary = benchmark.pedantic(
        lambda: runs.corleone(name), rounds=1, iterations=1
    )
    blocker = summary.result.blocker
    if name == "restaurants":
        assert not blocker.triggered
        assert blocker.pairs_labeled == 0
    else:
        assert blocker.triggered
        # Dramatic reduction of the Cartesian product...
        assert blocker.umbrella_size <= 0.15 * blocker.cartesian
        # ...while keeping nearly all true matches.
        assert summary.blocking_recall >= 0.9
        assert blocker.applied_rules


def test_table3_report(runs, benchmark):
    # Report assembly is immediate; the pedantic call keeps this test
    # visible under --benchmark-only (which skips non-benchmark tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        summary = runs.corleone(name)
        blocker = summary.result.blocker
        rows.append([
            name,
            f"{blocker.cartesian / 1000:.1f}K",
            f"{blocker.umbrella_size / 1000:.1f}K",
            pct(summary.blocking_recall, 0),
            f"${blocker.dollars:.1f}",
            blocker.pairs_labeled,
            len(blocker.applied_rules),
        ])
    save_table(
        "table3_blocking",
        "Table 3: blocking results",
        ["dataset", "cartesian", "umbrella", "recall%", "cost", "#pairs",
         "#rules"],
        rows,
        notes=(
            "Paper: restaurants 176.4K -> 176.4K (no blocking, $0); "
            "citations 168.1M -> 38.2K, recall 99%, $7.2, 214 pairs; "
            "products 56.4M -> 173.4K, recall 92%, $22, 333 pairs. "
            "Paper applied 1-3 rules per run."
        ),
    )
