"""Extensions bench — the §10 future-work features, quantified.

Not a paper table; quantifies the two implemented extensions so DESIGN.md
claims stay honest:

* crowd profiling: error-rate recovery accuracy and the answer-cost delta
  from adaptive voting on careful vs sloppy crowds;
* budget plans: per-phase spend under an overall cap, and the accuracy
  retained at shrinking budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import bench_config, save_table
from repro.config import CrowdConfig
from repro.core.budgeting import BudgetPlan
from repro.core.pipeline import Corleone
from repro.crowd.profiler import AdaptivePolicy, ProfilingLabelingService
from repro.crowd.simulated import SimulatedCrowd
from repro.data.pairs import Pair
from repro.metrics import prf1
from repro.synth import generate_citations


class TestProfilerBench:
    def test_error_rate_recovery(self, benchmark):
        matches = {Pair(f"a{i}", f"b{i}") for i in range(600)}
        questions = [
            Pair(f"a{i}", f"b{i + (i % 3 == 0)}") for i in range(500)
        ]

        def profile_crowds():
            rows = []
            for true_rate in (0.0, 0.05, 0.1, 0.2, 0.3):
                crowd = SimulatedCrowd(matches, error_rate=true_rate,
                                       rng=np.random.default_rng(7))
                service = ProfilingLabelingService(
                    crowd, CrowdConfig(), min_questions=50
                )
                service.label_all(questions)
                rows.append((true_rate, service.estimator.error_rate,
                             service.tracker.answers))
            return rows

        rows = benchmark.pedantic(profile_crowds, rounds=1, iterations=1)
        for true_rate, estimated, _ in rows:
            assert estimated == pytest.approx(true_rate, abs=0.05)
        save_table(
            "ext_profiler_recovery",
            "Extension: error-rate recovery from answer disagreement",
            ["true error", "estimated", "answers paid"],
            [[f"{t:.0%}", f"{e:.1%}", a] for t, e, a in rows],
        )

    def test_adaptive_voting_cost(self, benchmark):
        matches = {Pair(f"a{i}", f"b{i}") for i in range(600)}
        questions = [Pair(f"a{i}", f"b{i}") for i in range(400)]

        def run(true_rate, policy, seed=3):
            crowd = SimulatedCrowd(matches, error_rate=true_rate,
                                   rng=np.random.default_rng(seed))
            service = ProfilingLabelingService(
                crowd, CrowdConfig(), policy=policy, min_questions=30
            )
            labels = service.label_all(questions)
            accuracy = sum(labels.values()) / len(labels)
            return service.tracker.answers, accuracy

        def sweep():
            return {
                (rate, bool(policy)): run(rate, policy)
                for rate in (0.02, 0.25)
                for policy in (None, AdaptivePolicy())
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [f"{rate:.0%}", "adaptive" if adaptive else "fixed",
             answers, f"{accuracy:.3f}"]
            for (rate, adaptive), (answers, accuracy) in results.items()
        ]
        save_table(
            "ext_profiler_adaptive",
            "Extension: adaptive vs fixed voting (all-positive questions)",
            ["crowd error", "policy", "answers", "label accuracy"],
            rows,
        )
        # A careful crowd must get cheaper under adaptation...
        assert results[(0.02, True)][0] < results[(0.02, False)][0]
        # ...without sacrificing accuracy materially.
        assert results[(0.02, True)][1] >= results[(0.02, False)][1] - 0.02


class TestMoneyTimeBench:
    """The §10 money-time trade-off, quantified."""

    def test_pareto_frontier(self, benchmark):
        from repro.crowd.latency import (
            LatencyModel, cheapest_within_deadline, pareto_sweep,
        )
        # A citations-sized workload: ~5000 answers.
        rates = [0.01, 0.02, 0.05, 0.10, 0.25]

        def sweep():
            points = pareto_sweep(5000, rates, LatencyModel(),
                                  parallelism=10)
            pick = cheapest_within_deadline(5000, 4.0, rates,
                                            LatencyModel(),
                                            parallelism=10)
            return points, pick

        points, pick = benchmark.pedantic(sweep, rounds=3, iterations=1)
        rows = [
            [f"{p.pay_per_question:.2f}", f"${p.total_dollars:.0f}",
             f"{p.total_hours:.1f}h",
             "<-- cheapest under 4h" if pick and
             p.pay_per_question == pick.pay_per_question else ""]
            for p in points
        ]
        save_table(
            "ext_money_time",
            "Extension: money-time frontier for a 5000-answer workload",
            ["pay/question", "total cost", "total time", ""],
            rows,
        )
        hours = [p.total_hours for p in points]
        dollars = [p.total_dollars for p in points]
        assert hours == sorted(hours, reverse=True)
        assert dollars == sorted(dollars)
        assert pick is not None


class TestSamplerAblationBench:
    """The §10 'better sampling strategies' extension, ablated."""

    def test_weighted_sampler_boosts_density(self, benchmark):
        """The weighted sampler pays off exactly when an attribute holds
        identifying rare tokens (model numbers); on common-vocabulary
        attributes (paper titles drawn from a small CS lexicon) it is
        neutral-to-harmful — which is why it is an opt-in extension and
        the paper's uniform sampler stays the default."""
        from repro.data.sampling import (
            blocker_sample, weighted_blocker_sample,
        )
        from repro.synth import generate_citations, generate_products
        products = generate_products(n_a=150, n_b=2000, n_matches=120,
                                     seed=11)
        citations = generate_citations(n_a=150, n_b=2400, n_matches=200,
                                       seed=11)

        def density(dataset, sampler, **kw):
            rates = []
            for seed in range(3):
                rng = np.random.default_rng(seed)
                sample = sampler(dataset.table_a, dataset.table_b,
                                 9000, rng, **kw)
                hits = sum(1 for p in sample if dataset.is_match(p))
                rates.append(hits / len(sample))
            return float(np.mean(rates))

        def sweep():
            return {
                "products/uniform": density(products, blocker_sample),
                "products/weighted(model_no)": density(
                    products, weighted_blocker_sample,
                    attribute="model_no",
                ),
                "citations/uniform": density(citations, blocker_sample),
                "citations/weighted(title)": density(
                    citations, weighted_blocker_sample,
                    attribute="title",
                ),
            }

        result = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_table(
            "ext_sampler_ablation",
            "Extension: blocking-sample positive density by sampler",
            ["workload/sampler", "positive density"],
            [[name, f"{rate:.4%}"] for name, rate in result.items()],
            notes="Weighted sampling needs an attribute with identifying "
                  "rare tokens; with one it multiplies sample density, "
                  "without one it adds nothing.",
        )
        assert (result["products/weighted(model_no)"]
                >= 1.5 * result["products/uniform"])


class TestBudgetPlanBench:
    def test_accuracy_vs_budget(self, benchmark):
        dataset = generate_citations(n_a=150, n_b=1200, n_matches=250,
                                     seed=8)
        config = bench_config(max_pipeline_iterations=1)

        def run(total):
            crowd = SimulatedCrowd(dataset.matches, error_rate=0.1,
                                   rng=np.random.default_rng(4))
            pipeline = Corleone(config, crowd,
                                rng=np.random.default_rng(4))
            plan = BudgetPlan.from_total(total)
            result = pipeline.run(dataset.table_a, dataset.table_b,
                                  dataset.seed_labels, budget_plan=plan)
            _, _, f1 = prf1(result.predicted_matches, dataset.matches)
            return result.cost.dollars, f1

        def sweep():
            return {total: run(total) for total in (5.0, 15.0, 60.0)}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [f"${total:.0f}", f"${spent:.2f}", f"{f1:.3f}"]
            for total, (spent, f1) in results.items()
        ]
        save_table(
            "ext_budget_plan",
            "Extension: accuracy vs phase-budget total (citations)",
            ["budget", "spent", "true F1"],
            rows,
        )
        for total, (spent, _) in results.items():
            assert spent <= total + 0.25, "plan total must be respected"
        # More money never hurts much.
        assert results[60.0][1] >= results[5.0][1] - 0.05
