"""Benchmark fixtures: one shared run cache per session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _common import RunCache  # noqa: E402


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache()
