"""Section 9.3 — sensitivity to crowd error rate, plus voting ablation.

The paper varies the simulated crowd's error rate: with a perfect crowd
Corleone performs extremely well; at 10% error F1 drops only 2-4% while
cost rises up to $20; at 20% error F1 drops further (1-28%) and cost
shoots up by $250-500.  This bench sweeps 0% / 10% / 20% on each dataset
(smaller instances keep the 9-run sweep fast) and also ablates the §8
voting schemes directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import bench_config, memo_disk, save_table
from repro.config import CrowdConfig
from repro.crowd.aggregation import VoteScheme
from repro.crowd.cost import CostTracker
from repro.crowd.service import LabelingService
from repro.crowd.simulated import SimulatedCrowd
from repro.data.pairs import Pair
from repro.evaluation.experiment import run_corleone
from repro.evaluation.reporting import pct
from repro.synth import (
    generate_citations,
    generate_products,
    generate_restaurants,
)

ERROR_RATES = (0.0, 0.1, 0.2)

_SWEEP: dict[tuple[str, float], object] = {}
_ROWS: list[list] = []


def _small_dataset(name):
    if name == "restaurants":
        return generate_restaurants(n_a=120, n_b=80, n_matches=28, seed=3)
    if name == "citations":
        return generate_citations(n_a=150, n_b=1200, n_matches=250, seed=3)
    return generate_products(n_a=150, n_b=1100, n_matches=60, seed=3)


@pytest.mark.parametrize("name", ("restaurants", "citations", "products"))
def test_sec93_error_rate_sweep(benchmark, name):
    config = bench_config(max_pipeline_iterations=1)

    def sweep():
        for rate in ERROR_RATES:
            if (name, rate) not in _SWEEP:
                _SWEEP[(name, rate)] = memo_disk(
                    ("sensitivity", name, rate, repr(config)),
                    lambda rate=rate: run_corleone(
                        _small_dataset(name), config,
                        error_rate=rate, seed=4,
                    ),
                )
        return [_SWEEP[(name, rate)] for rate in ERROR_RATES]

    perfect, moderate, noisy = benchmark.pedantic(sweep, rounds=1,
                                                  iterations=1)
    for rate, summary in zip(ERROR_RATES, (perfect, moderate, noisy)):
        _ROWS.append([
            name, f"{rate:.0%}", pct(summary.f1),
            f"${summary.dollars:.1f}", summary.pairs_labeled,
        ])

    # Shape: a perfect crowd does well; more noise never helps much.
    assert perfect.f1 >= 0.75
    assert perfect.f1 >= noisy.f1 - 0.05
    # Noise inflates answer volume (strong-majority escalation).
    assert noisy.result.cost.answers >= perfect.result.cost.answers


def test_sec93_sensitivity_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table(
        "sec93_sensitivity",
        "Section 9.3: sensitivity to crowd error rate "
        "(single-iteration runs on reduced datasets)",
        ["dataset", "error rate", "F1", "cost", "#pairs"],
        _ROWS,
        notes="Paper: 10% error costs 2-4% F1 and up to +$20; 20% error "
              "costs up to 28% F1 (restaurants) and +$250-500.",
    )
    assert len(_ROWS) == 9


class TestVotingSchemeAblation:
    """DESIGN.md ablation: 2+1 vs strong vs asymmetric voting."""

    def _label_accuracy_and_cost(self, scheme, error_rate=0.2,
                                 n_questions=400, positive_share=0.3,
                                 seed=0):
        pairs = [Pair(f"a{i}", f"b{i}") for i in range(n_questions)]
        cut = int(positive_share * n_questions)
        matches = set(pairs[:cut])
        crowd = SimulatedCrowd(matches, error_rate=error_rate,
                               rng=np.random.default_rng(seed))
        service = LabelingService(crowd, CrowdConfig(),
                                  CostTracker(price_per_question=0.01))
        labels = service.label_all(pairs, scheme=scheme)
        correct = sum(
            1 for pair, label in labels.items()
            if label == (pair in matches)
        )
        false_positives = sum(
            1 for pair, label in labels.items()
            if label and pair not in matches
        )
        return (correct / n_questions, false_positives,
                service.tracker.answers)

    def test_ablation_voting_schemes(self, benchmark):
        results = benchmark.pedantic(
            lambda: {
                scheme: self._label_accuracy_and_cost(scheme)
                for scheme in VoteScheme
            },
            rounds=1, iterations=1,
        )
        rows = [
            [scheme.value, f"{acc:.3f}", fp, answers]
            for scheme, (acc, fp, answers) in results.items()
        ]
        save_table(
            "sec93_voting_ablation",
            "Ablation (Section 8): voting schemes at 20% worker error",
            ["scheme", "label accuracy", "false positives", "answers"],
            rows,
        )

        plain = results[VoteScheme.MAJORITY_2PLUS1]
        strong = results[VoteScheme.STRONG_MAJORITY]
        asym = results[VoteScheme.ASYMMETRIC]
        # Strong majority is the most accurate and most expensive.
        assert strong[0] >= plain[0]
        assert strong[2] >= asym[2] >= plain[2]
        # The asymmetric scheme kills false positives almost as well as
        # full strong majority at a fraction of the extra cost.
        assert asym[1] <= plain[1]
