"""Table 4 — per-iteration performance.

For each dataset and iteration: pairs labelled by the matcher, the true
P/R/F1 of the combined predictions, pairs labelled during estimation,
the estimated P/R/F1, pairs labelled during reduction and the size of
the difficult set.  The key claims checked:

* the crowd-estimated F1 tracks the true F1 closely (the paper saw
  0.5-5.4% absolute error);
* iteration happens only while the estimate improves.
"""

from __future__ import annotations

import pytest

from _common import DATASETS, save_table
from repro.evaluation.experiment import score_iteration
from repro.evaluation.reporting import pct


@pytest.mark.parametrize("name", DATASETS)
def test_table4_iterations_run(runs, benchmark, name):
    summary = benchmark.pedantic(
        lambda: runs.corleone(name), rounds=1, iterations=1
    )
    iterations = summary.result.iterations
    assert 1 <= len(iterations) <= 2
    assert iterations[0].estimate is not None


def test_table4_report(runs, benchmark):
    # Report assembly is immediate; the pedantic call keeps this test
    # visible under --benchmark-only (which skips non-benchmark tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    estimate_errors = []
    for name in DATASETS:
        summary = runs.corleone(name)
        for record in summary.result.iterations:
            truth = score_iteration(record, summary.dataset)
            estimate = record.estimate
            est_cols = ["-", "-", "-", "-"]
            if estimate is not None:
                est_cols = [
                    record.estimation_pairs_labeled,
                    pct(estimate.precision), pct(estimate.recall),
                    pct(estimate.f1),
                ]
                estimate_errors.append((name, record.index,
                                        abs(estimate.f1 - truth.f1)))
            rows.append([
                name, record.index,
                record.matcher_pairs_labeled,
                pct(truth.precision), pct(truth.recall), pct(truth.f1),
                *est_cols,
                record.reduction_pairs_labeled,
                record.difficult_size if record.difficult_size else "-",
            ])
    save_table(
        "table4_iterations",
        "Table 4: per-iteration performance "
        "(truth columns use gold labels; est columns are crowd-only)",
        ["dataset", "iter", "#pairs", "true P", "true R", "true F1",
         "est #pairs", "est P", "est R", "est F1", "red #pairs",
         "difficult"],
        rows,
        notes=(
            "Paper (restaurants): iter1 140 pairs, F1 96.5, est F1 96.0; "
            "reduction left 157 difficult pairs -> stop. Citations and "
            "products each ran 2 iterations with estimates within 0.5-5.4% "
            "of true F1."
        ),
    )

    # The kept iteration's estimate must track truth reasonably.
    kept = [(n, i, e) for (n, i, e) in estimate_errors if i == 1]
    for name, index, error in kept:
        assert error <= 0.20, (
            f"{name} iter {index}: estimated F1 off by {error:.2f}"
        )
