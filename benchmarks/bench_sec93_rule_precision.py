"""Section 9.3 — effectiveness of rule evaluation.

The paper: blocking rules selected by the crowd are 99.9-99.99% precise;
rules in later steps (estimation/reduction) 97.5-99.99%; it also reports
how many rules each step used.  This bench measures the *true* precision
of every applied rule against gold labels.

True precision of a negative rule = fraction of covered pairs that are
genuine non-matches.  Covered gold matches are counted exactly (matches
are vectorized in the candidate set); total coverage is measured on the
candidate set, which is where the estimator/locator rules fire.
"""

from __future__ import annotations

import pytest

from _common import DATASETS, save_table

_ROWS: list[list] = []


def _blocking_precisions(summary) -> list[float]:
    """True precision of each applied blocking rule over A x B.

    Total coverage is extrapolated from a 10K uniform pair sample; the
    covered-match count is exact (all gold matches are vectorized).
    """
    import numpy as np

    from repro.data.sampling import cartesian_size, random_pairs
    from repro.features.library import build_feature_library
    from repro.features.vectorize import vectorize_pairs

    dataset = summary.dataset
    blocker = summary.result.blocker
    library = build_feature_library(dataset.table_a, dataset.table_b)
    rng = np.random.default_rng(123)
    sample_pairs = random_pairs(dataset.table_a, dataset.table_b,
                                10_000, rng)
    sample = vectorize_pairs(dataset.table_a, dataset.table_b,
                             sample_pairs, library)
    gold = vectorize_pairs(dataset.table_a, dataset.table_b,
                           sorted(dataset.matches), library)
    total = cartesian_size(dataset.table_a, dataset.table_b)

    precisions = []
    for rule in blocker.applied_rules:
        rate = rule.applies(sample.features).mean()
        covered_estimate = rate * total
        covered_matches = int(rule.applies(gold.features).sum())
        if covered_estimate <= 0:
            continue
        precisions.append(
            max(0.0, 1.0 - covered_matches / covered_estimate)
        )
    return precisions


def _true_precision(rule, candidates, matches) -> tuple[float, int]:
    mask = rule.applies(candidates.features)
    covered = int(mask.sum())
    if covered == 0:
        return 1.0, 0
    covered_pairs = [candidates.pairs[i] for i in mask.nonzero()[0]]
    contrary = sum(
        1 for pair in covered_pairs
        if (pair in matches) != rule.predicts_match
    )
    return 1.0 - contrary / covered, covered


@pytest.mark.parametrize("name", DATASETS)
def test_sec93_rule_precision(runs, benchmark, name):
    summary = benchmark.pedantic(
        lambda: runs.corleone(name), rounds=1, iterations=1
    )
    matches = summary.dataset.matches
    candidates = summary.result.candidates

    # Each rule is scored on its *certification domain*: estimation rules
    # were certified against (subsets of) the full candidate set, while
    # iteration i's locator rules were certified against that iteration's
    # working set (the previous difficult set).
    steps: list[tuple[str, list, object]] = []
    working = candidates
    for record in summary.result.iterations:
        if record.estimate is not None and record.estimate.applied_rules:
            steps.append((f"estimation{record.index}",
                          record.estimate.applied_rules, candidates))
        if record.locator is not None and record.locator.accepted_rules:
            steps.append((f"reduction{record.index}",
                          record.locator.accepted_rules, working))
        if record.locator is not None and record.locator.difficult:
            working = record.locator.difficult

    # Blocking rules were certified over the blocker's A x B sample; we
    # measure them against a fresh uniform sample of A x B plus the exact
    # set of gold matches (coverage of matches is counted exactly, total
    # coverage extrapolated from the sample).
    blocker = summary.result.blocker
    if blocker.applied_rules:
        blocking_precisions = _blocking_precisions(summary)
        if blocking_precisions:
            _ROWS.append([
                name, "blocking", len(blocker.applied_rules),
                f"{min(blocking_precisions):.4f}",
                f"{sum(blocking_precisions) / len(blocking_precisions):.4f}",
            ])
            assert (sum(blocking_precisions) / len(blocking_precisions)
                    >= 0.98), f"{name}: blocking rules are not precise"

    for step, rules, domain in steps:
        precisions = []
        for rule in rules:
            precision, covered = _true_precision(rule, domain, matches)
            if covered:
                precisions.append(precision)
        if not precisions:
            continue
        _ROWS.append([
            name, step, len(rules),
            f"{min(precisions):.4f}", f"{sum(precisions)/len(precisions):.4f}",
        ])
        # Crowd-certified rules must be genuinely precise.
        assert sum(precisions) / len(precisions) >= 0.93, (
            f"{name}/{step}: certified rules are not precise"
        )


def test_sec93_rule_precision_report(runs, benchmark):
    # Report assembly is immediate; the pedantic call keeps this test
    # visible under --benchmark-only (which skips non-benchmark tests).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table(
        "sec93_rule_precision",
        "Section 9.3: true precision of crowd-certified rules, per step",
        ["dataset", "step", "#rules", "min precision", "mean precision"],
        _ROWS,
        notes="Paper: blocking rules 99.9-99.99% precise; later steps "
              "97.5-99.99%. Citations used ~11 negative + ~16 positive "
              "reduction rules on average; products ~17 + ~9.",
    )
    assert _ROWS, "at least one step must have applied rules"
