"""From-scratch CART decision trees and random forests.

Corleone extracts machine-readable blocking/reduction rules from root-to-
leaf paths of its forest's trees (Figure 2), so this implementation exposes
those paths directly.  Hyper-parameter defaults mirror the Weka random
forest the paper uses (k=10 trees, 60% bagging, m = log2(n)+1 features per
split).
"""

from .tree import DecisionTree, Node, TreeCondition, TreePath
from .forest import RandomForest, train_forest

__all__ = [
    "DecisionTree",
    "Node",
    "TreeCondition",
    "TreePath",
    "RandomForest",
    "train_forest",
]
