"""A CART decision tree with Gini impurity and explicit NaN routing.

The tree is binary: internal nodes test ``feature <= threshold`` and route
left on success.  Missing feature values (NaN) are routed to whichever
child received more training examples, and the direction is recorded on
the node so that rules extracted from tree paths reproduce the tree's
behaviour exactly (important for blocking-rule application, Section 4.3).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..exceptions import DataError


@dataclass
class Node:
    """One tree node, stored flat in :attr:`DecisionTree.nodes`.

    Leaves have ``feature == -1``; their prediction is ``label`` and
    ``n_positive / n_total`` gives the training-class distribution.
    """

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    nan_left: bool = True
    label: bool = False
    n_total: int = 0
    n_positive: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class TreeCondition(NamedTuple):
    """One edge of a root-to-leaf path: a test on a single feature.

    ``le`` is True for ``feature <= threshold`` (the left branch) and
    False for ``feature > threshold``.  ``nan_satisfies`` tells whether a
    missing value follows this edge, mirroring the node's NaN routing.
    """

    feature: int
    threshold: float
    le: bool
    nan_satisfies: bool


class TreePath(NamedTuple):
    """A root-to-leaf path: the conjunction of its conditions implies
    ``label`` for any example that satisfies all of them."""

    conditions: tuple[TreeCondition, ...]
    label: bool
    n_total: int
    n_positive: int


class DecisionTree:
    """Binary CART classifier over float feature matrices.

    Parameters mirror :class:`repro.config.ForestConfig`.  ``max_features``
    is the number of randomly chosen candidate features per split (the
    random-forest ingredient); pass ``None`` to consider all features.
    """

    def __init__(self, max_depth: int = 32, min_samples_split: int = 2,
                 min_samples_leaf: int = 1,
                 max_features: int | None = None) -> None:
        if max_depth < 1:
            raise DataError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.nodes: list[Node] = []
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray,
            rng: np.random.Generator | None = None) -> "DecisionTree":
        """Grow the tree on feature matrix ``x`` and boolean labels ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=bool)
        if x.ndim != 2:
            raise DataError("x must be 2-dimensional")
        if x.shape[0] != y.shape[0]:
            raise DataError("x and y row counts differ")
        if x.shape[0] == 0:
            raise DataError("cannot fit a tree on zero examples")
        if rng is None:
            # Deterministic default (CL001): an unseeded fallback would
            # make refits irreproducible; callers wanting variation
            # thread their own Generator (RandomForest always does).
            rng = np.random.default_rng(0)
        self.n_features_ = x.shape[1]
        self.nodes = []
        self._grow(x, y, np.arange(x.shape[0]), depth=0, rng=rng)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, rows: np.ndarray,
              depth: int, rng: np.random.Generator) -> int:
        """Recursively grow a subtree; returns the new node's index."""
        node_id = len(self.nodes)
        labels = y[rows]
        n_total = int(rows.size)
        n_positive = int(labels.sum())
        node = Node(n_total=n_total, n_positive=n_positive,
                    label=n_positive * 2 >= n_total)
        self.nodes.append(node)

        pure = n_positive in (0, n_total)
        if (pure or depth >= self.max_depth
                or n_total < self.min_samples_split):
            return node_id

        split = self._best_split(x, y, rows, rng)
        if split is None:
            return node_id
        feature, threshold = split

        values = x[rows, feature]
        nan_mask = np.isnan(values)
        left_mask = values <= threshold  # NaN compares False
        # Route NaNs with the majority of non-NaN examples.
        nan_left = bool(left_mask.sum() >= (~left_mask & ~nan_mask).sum())
        if nan_left:
            left_mask = left_mask | nan_mask

        left_rows = rows[left_mask]
        right_rows = rows[~left_mask]
        if (left_rows.size < self.min_samples_leaf
                or right_rows.size < self.min_samples_leaf):
            return node_id

        node.feature = feature
        node.threshold = threshold
        node.nan_left = nan_left
        node.left = self._grow(x, y, left_rows, depth + 1, rng)
        node.right = self._grow(x, y, right_rows, depth + 1, rng)
        return node_id

    def _best_split(self, x: np.ndarray, y: np.ndarray, rows: np.ndarray,
                    rng: np.random.Generator) -> tuple[int, float] | None:
        """Best (feature, threshold) by Gini gain over a random feature
        subset, or None if no split improves impurity."""
        n_features = x.shape[1]
        if self.max_features is None or self.max_features >= n_features:
            candidates = np.arange(n_features)
        else:
            candidates = rng.choice(
                n_features, size=self.max_features, replace=False
            )

        labels = y[rows].astype(np.float64)
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        parent_impurity = _gini(labels.sum(), labels.size)

        for feature in candidates:
            values = x[rows, feature]
            valid = ~np.isnan(values)
            if valid.sum() < 2:
                continue
            v = values[valid]
            lv = labels[valid]
            order = np.argsort(v, kind="stable")
            v_sorted = v[order]
            l_sorted = lv[order]
            # Candidate thresholds: midpoints between distinct consecutive
            # values.
            distinct = np.nonzero(np.diff(v_sorted) > 0)[0]
            if distinct.size == 0:
                continue
            pos_prefix = np.cumsum(l_sorted)
            total_pos = pos_prefix[-1]
            n = v_sorted.size
            left_counts = distinct + 1
            left_pos = pos_prefix[distinct]
            right_counts = n - left_counts
            right_pos = total_pos - left_pos
            left_imp = _gini_vec(left_pos, left_counts)
            right_imp = _gini_vec(right_pos, right_counts)
            weighted = (left_counts * left_imp + right_counts * right_imp) / n
            gains = parent_impurity - weighted
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                threshold = float(
                    (v_sorted[distinct[best_local]]
                     + v_sorted[distinct[best_local] + 1]) / 2.0
                )
                best = (int(feature), threshold)
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Boolean predictions for every row of ``x`` (vectorized)."""
        x = np.asarray(x, dtype=np.float64)
        if not self.nodes:
            raise DataError("tree has not been fitted")
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise DataError("x has wrong shape for this tree")
        out = np.empty(x.shape[0], dtype=bool)
        self._predict_into(0, np.arange(x.shape[0]), x, out)
        return out

    def _predict_into(self, node_id: int, rows: np.ndarray, x: np.ndarray,
                      out: np.ndarray) -> None:
        if rows.size == 0:
            return
        node = self.nodes[node_id]
        if node.is_leaf:
            out[rows] = node.label
            return
        values = x[rows, node.feature]
        left = values <= node.threshold
        if node.nan_left:
            left = left | np.isnan(values)
        self._predict_into(node.left, rows[left], x, out)
        self._predict_into(node.right, rows[~left], x, out)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_leaves(self) -> int:
        return sum(1 for node in self.nodes if node.is_leaf)

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth (0 for a single-leaf tree)."""
        def node_depth(node_id: int) -> int:
            node = self.nodes[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))
        return node_depth(0) if self.nodes else 0

    def paths(self) -> Iterator[TreePath]:
        """Yield every root-to-leaf path (Figure 2's rule source)."""
        if not self.nodes:
            return
        stack: list[tuple[int, tuple[TreeCondition, ...]]] = [(0, ())]
        while stack:
            node_id, conditions = stack.pop()
            node = self.nodes[node_id]
            if node.is_leaf:
                yield TreePath(conditions, node.label,
                               node.n_total, node.n_positive)
                continue
            left_condition = TreeCondition(
                node.feature, node.threshold, le=True,
                nan_satisfies=node.nan_left,
            )
            right_condition = TreeCondition(
                node.feature, node.threshold, le=False,
                nan_satisfies=not node.nan_left,
            )
            stack.append((node.right, conditions + (right_condition,)))
            stack.append((node.left, conditions + (left_condition,)))


def _gini(n_positive: float, n_total: float) -> float:
    """Gini impurity of a binary class distribution."""
    if n_total == 0:
        return 0.0
    p = n_positive / n_total
    return 2.0 * p * (1.0 - p)


def _gini_vec(n_positive: np.ndarray, n_total: np.ndarray) -> np.ndarray:
    """Vectorized Gini impurity; zero where ``n_total`` is zero."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(n_total > 0, n_positive / n_total, 0.0)
    return 2.0 * p * (1.0 - p)


def condition_satisfied(condition: TreeCondition,
                        values: np.ndarray) -> np.ndarray:
    """Vectorized truth of one tree condition over a feature column.

    Follows the tree's NaN routing: missing values satisfy the condition
    iff ``nan_satisfies``.
    """
    values = np.asarray(values, dtype=np.float64)
    nan = np.isnan(values)
    if condition.le:
        satisfied = values <= condition.threshold
    else:
        satisfied = values > condition.threshold
    if condition.nan_satisfies:
        return satisfied | nan
    return satisfied & ~nan
