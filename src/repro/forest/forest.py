"""Random forest over the CART trees, with entropy/confidence (Eq. 1).

The forest trains k trees independently, each on a random 60% portion of
the training data sampled without replacement, with a random feature
subset of size m = log2(n)+1 examined at every split — the Weka defaults
named in Section 5.1.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

import numpy as np

from ..config import ForestConfig
from ..exceptions import DataError
from ..obs import hooks
from ..obs.profiling import profile_section
from .tree import DecisionTree, TreePath


class RandomForest:
    """An ensemble of decision trees with majority-vote prediction."""

    def __init__(self, trees: Sequence[DecisionTree]) -> None:
        if not trees:
            raise DataError("forest must contain at least one tree")
        self.trees = tuple(trees)
        self.n_features_ = trees[0].n_features_

    def __len__(self) -> int:
        return len(self.trees)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def vote_fractions(self, x: np.ndarray) -> np.ndarray:
        """P+(e): fraction of trees voting positive, per row of ``x``."""
        x = np.asarray(x, dtype=np.float64)
        votes = np.zeros(x.shape[0], dtype=np.float64)
        for tree in self.trees:
            votes += tree.predict(x)
        return votes / len(self.trees)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-vote boolean predictions."""
        return self.vote_fractions(x) >= 0.5

    def entropy(self, x: np.ndarray) -> np.ndarray:
        """Disagreement entropy of Eq. 1, in nats, per row of ``x``.

        entropy(e) = -[P+ ln P+ + P- ln P-], with 0 ln 0 taken as 0.
        Ranges from 0 (unanimous) to ln 2 (an even split).
        """
        p_pos = self.vote_fractions(x)
        p_neg = 1.0 - p_pos
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(p_pos > 0, p_pos * np.log(p_pos), 0.0)
            terms += np.where(p_neg > 0, p_neg * np.log(p_neg), 0.0)
        return -terms

    def confidence(self, x: np.ndarray) -> np.ndarray:
        """conf(e) = 1 - entropy(e) (Section 5.3)."""
        return 1.0 - self.entropy(x)

    def mean_confidence(self, x: np.ndarray) -> float:
        """conf(V): average confidence over a monitoring set."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] == 0:
            return 1.0
        return float(self.confidence(x).mean())

    # ------------------------------------------------------------------
    # Rule source
    # ------------------------------------------------------------------

    def paths(self) -> Iterator[TreePath]:
        """All root-to-leaf paths of all trees (candidate rules)."""
        for tree in self.trees:
            yield from tree.paths()

    @property
    def n_leaves(self) -> int:
        return sum(tree.n_leaves for tree in self.trees)

    def feature_importances(self) -> np.ndarray:
        """Mean decrease in Gini impurity per feature, normalized.

        For every split, the impurity decrease weighted by the fraction
        of training examples reaching the node is credited to the split
        feature; totals are averaged over trees and normalized to sum to
        1 (all zeros if no tree ever split).  The usual "which features
        drive this matcher?" introspection.
        """
        if self.n_features_ is None:
            raise DataError("forest has no feature count")
        totals = np.zeros(self.n_features_)
        for tree in self.trees:
            if not tree.nodes:
                continue
            root_total = tree.nodes[0].n_total
            for node in tree.nodes:
                if node.is_leaf:
                    continue
                left = tree.nodes[node.left]
                right = tree.nodes[node.right]
                parent_imp = _node_gini(node)
                child_imp = (
                    left.n_total * _node_gini(left)
                    + right.n_total * _node_gini(right)
                ) / node.n_total
                decrease = parent_imp - child_imp
                totals[node.feature] += decrease * node.n_total / root_total
        total = totals.sum()
        if total <= 0:
            return np.zeros(self.n_features_)
        return totals / total


def _node_gini(node) -> float:
    if node.n_total == 0:
        return 0.0
    p = node.n_positive / node.n_total
    return 2.0 * p * (1.0 - p)


def train_forest(x: np.ndarray, y: np.ndarray, config: ForestConfig,
                 rng: np.random.Generator) -> RandomForest:
    """Train a random forest with the paper's scheme.

    Each of ``config.n_trees`` trees sees a random ``bagging_fraction``
    portion of the data drawn without replacement (at least one example,
    and at least one of each class when both are present, so every tree
    can learn a split).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=bool)
    if x.shape[0] != y.shape[0]:
        raise DataError("x and y row counts differ")
    if x.shape[0] == 0:
        raise DataError("cannot train a forest on zero examples")

    n = x.shape[0]
    portion = max(1, int(math.ceil(config.bagging_fraction * n)))
    max_features = config.features_per_split(x.shape[1])
    positives = np.flatnonzero(y)
    negatives = np.flatnonzero(~y)

    trees = []
    with profile_section("forest.train_forest"):
        for _ in range(config.n_trees):
            rows = rng.choice(n, size=portion, replace=False)
            # Guarantee class coverage: a single-class portion would
            # yield a stump that never splits, wasting the tree.  The
            # negative injection must not reuse the slot a positive was
            # just placed in, or it would undo that injection (the
            # portion==1 case).
            injected: int | None = None
            if positives.size and not y[rows].any():
                injected = int(rng.integers(rows.size))
                rows[injected] = rng.choice(positives)
            if negatives.size and y[rows].all():
                slots = [i for i in range(rows.size) if i != injected]
                if slots:
                    rows[slots[rng.integers(len(slots))]] = (
                        rng.choice(negatives))
            tree = DecisionTree(
                max_depth=config.max_depth,
                min_samples_split=config.min_samples_split,
                min_samples_leaf=config.min_samples_leaf,
                max_features=max_features,
            )
            tree.fit(x[rows], y[rows], rng=rng)
            trees.append(tree)
    hooks.record_trees_trained(len(trees))
    return RandomForest(trees)
