"""CSV persistence for tables.

Corleone's user-facing contract is "upload two tables"; this module provides
the loading path.  Numeric attributes are parsed as floats, empty cells
become None, and a missing id column raises a clear error.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..exceptions import DataError
from .table import AttrType, Record, Schema, Table

ID_COLUMN = "id"
"""Reserved column holding each record's identifier."""


def read_csv_table(path: str | Path, name: str, schema: Schema) -> Table:
    """Load a table from CSV.

    The file must have a header row containing :data:`ID_COLUMN` plus every
    schema attribute.  Extra columns are ignored.  Numeric cells that fail
    to parse raise :class:`DataError` with the offending row.
    """
    path = Path(path)
    table = Table(name, schema)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"{path}: empty CSV file")
        if ID_COLUMN not in reader.fieldnames:
            raise DataError(f"{path}: missing {ID_COLUMN!r} column")
        missing = [n for n in schema.names if n not in reader.fieldnames]
        if missing:
            raise DataError(f"{path}: missing columns {missing}")
        for row_number, row in enumerate(reader, start=2):
            record_id = (row.get(ID_COLUMN) or "").strip()
            if not record_id:
                raise DataError(f"{path}:{row_number}: empty record id")
            values = {}
            for attr in schema:
                raw = row.get(attr.name)
                values[attr.name] = _parse_cell(
                    raw, attr.attr_type, path, row_number, attr.name
                )
            table.add(Record(record_id, values))
    return table


def _parse_cell(raw: str | None, attr_type: AttrType, path: Path,
                row_number: int, column: str) -> str | float | None:
    if raw is None or raw.strip() == "":
        return None
    if attr_type is AttrType.NUMERIC:
        try:
            return float(raw)
        except ValueError:
            raise DataError(
                f"{path}:{row_number}: column {column!r} expected a "
                f"number, got {raw!r}"
            ) from None
    return raw


def write_csv_table(table: Table, path: str | Path) -> None:
    """Write a table to CSV with an id column plus schema attributes."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([ID_COLUMN, *table.schema.names])
        for record in table:
            row: list[str] = [record.record_id]
            for attr in table.schema:
                value = record.get(attr.name)
                row.append("" if value is None else str(value))
            writer.writerow(row)
