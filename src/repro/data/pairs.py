"""Tuple pairs and featurized candidate sets.

After blocking, Corleone operates on a *candidate set* C of tuple pairs,
each converted into a feature vector (Section 5.1).  :class:`CandidateSet`
bundles the pairs with their feature matrix so that every downstream module
(matcher, estimator, locator) shares one representation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import NamedTuple

import numpy as np

from ..exceptions import DataError


class Pair(NamedTuple):
    """An (a_id, b_id) tuple pair across the two input tables."""

    a_id: str
    b_id: str


class CandidateSet:
    """An immutable set of pairs with an aligned feature matrix.

    Rows of ``features`` correspond one-to-one with ``pairs``.  Feature
    values are floats; missing feature values are encoded as ``numpy.nan``
    and handled by the decision-tree learner.
    """

    def __init__(self, pairs: Sequence[Pair], features: np.ndarray,
                 feature_names: Sequence[str]) -> None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise DataError("feature matrix must be 2-dimensional")
        if features.shape[0] != len(pairs):
            raise DataError(
                f"{len(pairs)} pairs but {features.shape[0]} feature rows"
            )
        if features.shape[1] != len(feature_names):
            raise DataError(
                f"{len(feature_names)} feature names but "
                f"{features.shape[1]} feature columns"
            )
        self._pairs: tuple[Pair, ...] = tuple(Pair(*p) for p in pairs)
        self._features = features
        self._features.setflags(write=False)
        self._feature_names: tuple[str, ...] = tuple(feature_names)
        self._index: dict[Pair, int] = {
            pair: i for i, pair in enumerate(self._pairs)
        }
        if len(self._index) != len(self._pairs):
            raise DataError("candidate set contains duplicate pairs")

    @classmethod
    def empty(cls, feature_names: Sequence[str]) -> "CandidateSet":
        """An empty candidate set with the given feature space."""
        return cls((), np.empty((0, len(feature_names))), feature_names)

    @property
    def pairs(self) -> tuple[Pair, ...]:
        return self._pairs

    @property
    def features(self) -> np.ndarray:
        """The (read-only) n_pairs x n_features matrix."""
        return self._features

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._feature_names

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._index

    def index_of(self, pair: Pair) -> int:
        """Row index of ``pair``; raises :class:`DataError` if absent."""
        try:
            return self._index[pair]
        except KeyError:
            raise DataError(f"pair {pair} not in candidate set") from None

    def feature_index(self, name: str) -> int:
        """Column index of feature ``name``."""
        try:
            return self._feature_names.index(name)
        except ValueError:
            raise DataError(f"unknown feature {name!r}") from None

    def vector(self, pair: Pair) -> np.ndarray:
        """The feature vector of one pair."""
        return self._features[self.index_of(pair)]

    def subset(self, indices: Sequence[int]) -> "CandidateSet":
        """A new candidate set with the rows at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return CandidateSet(
            [self._pairs[i] for i in idx],
            self._features[idx],
            self._feature_names,
        )

    def subset_pairs(self, pairs: Iterable[Pair]) -> "CandidateSet":
        """A new candidate set restricted to the given pairs (in order)."""
        return self.subset([self.index_of(Pair(*p)) for p in pairs])

    def without(self, pairs: Iterable[Pair]) -> "CandidateSet":
        """A new candidate set with the given pairs removed."""
        drop = {Pair(*p) for p in pairs}
        keep = [i for i, pair in enumerate(self._pairs) if pair not in drop]
        return self.subset(keep)

    def split(self, first_indices: Sequence[int]) -> tuple["CandidateSet", "CandidateSet"]:
        """Partition into (rows at ``first_indices``, remaining rows)."""
        chosen = set(int(i) for i in first_indices)
        if not all(0 <= i < len(self) for i in chosen):
            raise DataError("split index out of range")
        rest = [i for i in range(len(self)) if i not in chosen]
        return self.subset(sorted(chosen)), self.subset(rest)

    def concat(self, other: "CandidateSet") -> "CandidateSet":
        """Concatenate two candidate sets over the same feature space."""
        if self._feature_names != other._feature_names:
            raise DataError("cannot concat candidate sets with different features")
        return CandidateSet(
            self._pairs + other._pairs,
            np.vstack([self._features, other._features]),
            self._feature_names,
        )

    def __repr__(self) -> str:
        return (
            f"CandidateSet({len(self)} pairs, "
            f"{len(self._feature_names)} features)"
        )
