"""Sampling strategies over the Cartesian product A x B.

Implements the Blocker's density-aware sampling of Section 4.1 (step 2):
rather than sampling random pairs (which would contain almost no matches),
Corleone samples ``t_B / |A|`` tuples from the larger table B and crosses
them with *all* of the smaller table A.  If matches are spread roughly
uniformly through B, the sample inherits the full product's positive
density while fitting in memory.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from ..exceptions import DataError
from .pairs import Pair
from .table import Table

__all__ = [
    "blocker_sample",
    "cartesian_size",
    "iter_cartesian",
    "random_pairs",
    "weighted_blocker_sample",
]


def cartesian_size(table_a: Table, table_b: Table) -> int:
    """|A x B|: the number of pairs before any blocking."""
    return len(table_a) * len(table_b)


def iter_cartesian(table_a: Table, table_b: Table) -> Iterator[Pair]:
    """Stream every pair of A x B without materializing the product."""
    b_ids = table_b.record_ids
    for a_id in table_a.record_ids:
        for b_id in b_ids:
            yield Pair(a_id, b_id)


def blocker_sample(table_a: Table, table_b: Table, t_b: int,
                   rng: np.random.Generator,
                   seed_pairs: Iterable[Pair] = ()) -> list[Pair]:
    """Draw the Blocker's learning sample S from A x B (Section 4.1).

    Let A be the smaller table (the roles are swapped internally if
    needed).  We sample ``ceil(t_b / |A|)`` tuples from B uniformly without
    replacement and return their Cartesian product with all of A, giving
    roughly ``t_b`` pairs.  The user-supplied ``seed_pairs`` (two positive
    and two negative examples in the paper) are appended if not already
    present; they are expressed as (a_id, b_id) in the *original* table
    orientation regardless of any internal swap.

    Raises :class:`DataError` if either table is empty.
    """
    if len(table_a) == 0 or len(table_b) == 0:
        raise DataError("cannot sample from an empty table")
    if t_b < 1:
        raise DataError("t_b must be >= 1")

    small, large = table_a, table_b
    swapped = False
    if len(large) < len(small):
        small, large = large, small
        swapped = True

    n_large = min(len(large), max(1, -(-t_b // len(small))))  # ceil division
    chosen = rng.choice(len(large), size=n_large, replace=False)
    large_ids = [large.at(int(i)).record_id for i in chosen]

    sample: list[Pair] = []
    for small_id in small.record_ids:
        for large_id in large_ids:
            if swapped:
                sample.append(Pair(large_id, small_id))
            else:
                sample.append(Pair(small_id, large_id))

    present = set(sample)
    for pair in seed_pairs:
        pair = Pair(*pair)
        if pair not in present:
            sample.append(pair)
            present.add(pair)
    return sample


def weighted_blocker_sample(table_a: Table, table_b: Table, t_b: int,
                            rng: np.random.Generator,
                            attribute: str | None = None,
                            seed_pairs: Iterable[Pair] = ()) -> list[Pair]:
    """A density-boosting variant of :func:`blocker_sample` (§10).

    The paper's sampler assumes matched rows are spread uniformly
    through B; when they are not, the sample can go match-starved.  This
    variant biases the choice of B rows toward rows that share a *rare*
    token with some row of A on a textual attribute — rows much more
    likely to have a match — while keeping half of the draw uniform so
    negatives stay representative.

    ``attribute`` defaults to the first textual attribute of the schema.
    Exposed as the "better sampling strategies" extension and ablated in
    the Section 9.4 benchmark.
    """
    from ..features.tokenize import word_tokens  # local: avoid cycle

    if len(table_a) == 0 or len(table_b) == 0:
        raise DataError("cannot sample from an empty table")
    if t_b < 1:
        raise DataError("t_b must be >= 1")

    small, large = table_a, table_b
    swapped = False
    if len(large) < len(small):
        small, large = large, small
        swapped = True

    if attribute is None:
        attribute = _first_textual_attribute(small)

    # Token -> document frequency over the small table.
    small_df: dict[str, int] = {}
    for record in small:
        value = record.get(attribute)
        if value is None:
            continue
        for token in set(word_tokens(str(value))):
            small_df[token] = small_df.get(token, 0) + 1

    # Score each large-table row by the total rarity of its shared
    # tokens: a true match shares *many* (mostly rare) tokens with its
    # counterpart, while a hard negative shares only a few and a random
    # row only common ones.  Summing is robust where max-of-rarity is
    # not (one rare collision should not dominate).
    scores = np.zeros(len(large))
    for index in range(len(large)):
        value = large.at(index).get(attribute)
        if value is None:
            continue
        total = 0.0
        for token in set(word_tokens(str(value))):
            df = small_df.get(token)
            if df:
                total += 1.0 / df
        scores[index] = total

    n_rows = min(len(large), max(1, -(-t_b // len(small))))
    n_biased = n_rows // 2  # the other half stays uniform

    chosen: list[int] = []
    if n_biased and scores.sum() > 0:
        weights = scores / scores.sum()
        n_biased = min(n_biased, int((scores > 0).sum()))
        chosen.extend(int(i) for i in rng.choice(
            len(large), size=n_biased, replace=False, p=weights
        ))
    # Fill the rest of the row budget uniformly from the unchosen rows.
    pool = np.setdiff1d(np.arange(len(large)), np.array(chosen, dtype=int))
    take = min(n_rows - len(chosen), pool.size)
    chosen.extend(int(i) for i in rng.choice(pool, size=take,
                                             replace=False))

    large_ids = [large.at(i).record_id for i in chosen]
    sample: list[Pair] = []
    for small_id in small.record_ids:
        for large_id in large_ids:
            if swapped:
                sample.append(Pair(large_id, small_id))
            else:
                sample.append(Pair(small_id, large_id))

    present = set(sample)
    for pair in seed_pairs:
        pair = Pair(*pair)
        if pair not in present:
            sample.append(pair)
            present.add(pair)
    return sample


def _first_textual_attribute(table: Table) -> str:
    from .table import AttrType
    for attr in table.schema:
        if attr.attr_type is not AttrType.NUMERIC:
            return attr.name
    raise DataError("no textual attribute available for weighted sampling")


def random_pairs(table_a: Table, table_b: Table, n: int,
                 rng: np.random.Generator) -> list[Pair]:
    """Uniform random pairs from A x B, without replacement.

    Used by baselines and tests; contrast with :func:`blocker_sample`.
    """
    total = cartesian_size(table_a, table_b)
    if total == 0:
        raise DataError("cannot sample from an empty product")
    n = min(n, total)
    flat = rng.choice(total, size=n, replace=False)
    n_b = len(table_b)
    return [
        Pair(table_a.at(int(i) // n_b).record_id,
             table_b.at(int(i) % n_b).record_id)
        for i in flat
    ]
