"""Relational substrate: tables, records, pair sets, sampling and CSV I/O."""

from .table import Attribute, AttrType, Record, Schema, Table
from .pairs import Pair, CandidateSet
from .sampling import (
    blocker_sample,
    cartesian_size,
    iter_cartesian,
    weighted_blocker_sample,
)
from .io import read_csv_table, write_csv_table

__all__ = [
    "Attribute",
    "AttrType",
    "Record",
    "Schema",
    "Table",
    "Pair",
    "CandidateSet",
    "blocker_sample",
    "weighted_blocker_sample",
    "cartesian_size",
    "iter_cartesian",
    "read_csv_table",
    "write_csv_table",
]
