"""Tables, schemas and records.

Corleone matches two relational tables A and B with aligned schemas.  A
:class:`Table` is an ordered collection of :class:`Record` objects sharing a
:class:`Schema`; records are immutable and addressed by a string id unique
within their table.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from ..exceptions import DataError, SchemaError

Value = str | float | int | None
"""An attribute value: text, number, or missing (None)."""


class AttrType(enum.Enum):
    """Attribute type, used to decide which features apply (Section 5.1).

    The paper notes, for instance, that TF/IDF features are not generated
    for numeric attributes.
    """

    STRING = "string"
    """Short string: names, codes, phone numbers."""

    TEXT = "text"
    """Long free text: descriptions, feature lists, author lists."""

    NUMERIC = "numeric"
    """Numbers: prices, page counts, years."""


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a table."""

    name: str
    attr_type: AttrType = AttrType.STRING

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


class Schema:
    """An ordered set of attributes with name-based lookup."""

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        self._by_name: dict[str, Attribute] = {}
        for attr in self._attributes:
            if attr.name in self._by_name:
                raise SchemaError(f"duplicate attribute name: {attr.name!r}")
            self._by_name[attr.name] = attr
        if not self._attributes:
            raise SchemaError("schema must contain at least one attribute")

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, AttrType]]) -> "Schema":
        """Build a schema from (name, type) pairs."""
        return cls(Attribute(name, attr_type) for name, attr_type in pairs)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown attribute: {name!r}") from None

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name}:{a.attr_type.value}" for a in self._attributes
        )
        return f"Schema({cols})"


@dataclass(frozen=True)
class Record:
    """One row of a table; values are keyed by attribute name."""

    record_id: str
    values: Mapping[str, Value] = field(default_factory=dict)

    def get(self, name: str) -> Value:
        """Return the value of attribute ``name`` (None if missing)."""
        return self.values.get(name)

    def __getitem__(self, name: str) -> Value:
        return self.values.get(name)


class Table:
    """An ordered, id-indexed collection of records with a shared schema.

    Records are validated on insertion: every value key must be a schema
    attribute, and numeric attributes must hold numbers (or None).
    """

    def __init__(self, name: str, schema: Schema,
                 records: Iterable[Record] = ()) -> None:
        if not name:
            raise DataError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._records: list[Record] = []
        self._by_id: dict[str, int] = {}
        for record in records:
            self.add(record)

    def add(self, record: Record) -> None:
        """Append a record, validating it against the schema."""
        if record.record_id in self._by_id:
            raise DataError(
                f"duplicate record id {record.record_id!r} "
                f"in table {self.name!r}"
            )
        self._validate(record)
        self._by_id[record.record_id] = len(self._records)
        self._records.append(record)

    def _validate(self, record: Record) -> None:
        for key, value in record.values.items():
            if key not in self.schema:
                raise SchemaError(
                    f"record {record.record_id!r} has value for unknown "
                    f"attribute {key!r}"
                )
            if value is None:
                continue
            attr = self.schema[key]
            if attr.attr_type is AttrType.NUMERIC:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SchemaError(
                        f"attribute {key!r} is numeric but record "
                        f"{record.record_id!r} holds {value!r}"
                    )
            else:
                if not isinstance(value, str):
                    raise SchemaError(
                        f"attribute {key!r} is textual but record "
                        f"{record.record_id!r} holds {value!r}"
                    )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._by_id

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._records[self._by_id[record_id]]
        except KeyError:
            raise DataError(
                f"no record {record_id!r} in table {self.name!r}"
            ) from None

    def at(self, index: int) -> Record:
        """Return the record at positional ``index``."""
        return self._records[index]

    @property
    def record_ids(self) -> list[str]:
        return [record.record_id for record in self._records]

    def subset(self, record_ids: Sequence[str], name: str | None = None) -> "Table":
        """Return a new table holding only the given records, in order."""
        return Table(
            name or f"{self.name}_subset",
            self.schema,
            (self[rid] for rid in record_ids),
        )

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} records)"
