"""The run context: named RNG streams plus the run's shared services.

One :class:`RunContext` is built per hands-off run.  It owns everything
the stages share:

* **named RNG streams** — each orchestration component (blocker,
  matcher, estimator, locator) draws from its *own*
  ``np.random.Generator``, spawned from the run seed via
  ``np.random.SeedSequence``.  Streams are independent by construction,
  so an extra draw in one stage can no longer silently perturb every
  later stage (the coupling the old shared ``self.rng`` had);
* the :class:`~repro.crowd.service.LabelingService` and its
  :class:`~repro.crowd.cost.CostTracker`, wired to emit
  ``labels_purchased`` / ``budget_spent`` events on the bus;
* the optional :class:`~repro.core.budgeting.PhaseBudgetManager`;
* the :class:`~repro.engine.events.EventBus` and, when checkpointing is
  enabled, the engine's checkpoint callback;
* the run's :class:`~repro.obs.telemetry.RunTelemetry` (metrics
  registry, span tracer, wall-clock profiler), subscribed to the bus
  and sharing the platform stack's simulated clock — pass
  ``telemetry=False`` to run without instrumentation (the overhead
  benchmark's baseline).
"""

from __future__ import annotations

import zlib
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..config import CorleoneConfig
from ..crowd.base import CrowdPlatform
from ..crowd.cost import CostTracker
from ..crowd.faults import FaultyCrowd
from ..crowd.gateway import ResilientCrowd, find_clock
from ..crowd.service import LabelingService
from ..core.budgeting import BudgetPlan, PhaseBudgetManager
from .events import (
    EVENT_BUDGET_SPENT,
    EVENT_CIRCUIT_OPENED,
    EVENT_FAULT_INJECTED,
    EVENT_HIT_REPOSTED,
    EVENT_LABELS_PURCHASED,
    EVENT_RETRY_SCHEDULED,
    EventBus,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .state import RunState

RNG_STREAMS = ("blocker", "matcher", "estimator", "locator", "engine")
"""The named streams every run pre-spawns, in fixed spawn-key order.

The order is part of the on-disk checkpoint contract: stream *i* is
spawned as child *i* of the run's root ``SeedSequence``, so the mapping
from name to stream is independent of first-access order.  Names
outside this tuple hash to high spawn keys (see
:meth:`RunContext.rng`), so ad-hoc streams are deterministic too.
"""

_HASH_KEY_BASE = 1 << 20
"""Spawn keys for unregistered stream names start here, far above the
registered range, so adding a registered stream never collides."""


class RunContext:
    """Everything one hands-off run shares across its stages."""

    def __init__(self, config: CorleoneConfig, platform: CrowdPlatform,
                 seed: int | np.random.SeedSequence | None = None,
                 rng: np.random.Generator | None = None,
                 budget_plan: BudgetPlan | None = None,
                 bus: EventBus | None = None,
                 telemetry: bool = True) -> None:
        self.config = config
        self.platform = platform
        self.bus = bus if bus is not None else EventBus()
        if rng is not None:
            # Back-compat: callers that hand in a Generator get streams
            # derived from that generator's own seed sequence.
            self._root_seed = rng.bit_generator.seed_seq
        elif isinstance(seed, np.random.SeedSequence):
            # Resume path: the exact root sequence from the run directory.
            self._root_seed = seed
        else:
            entropy = seed if seed is not None else config.seed
            self._root_seed = np.random.SeedSequence(entropy)
        self._streams: dict[str, np.random.Generator] = {}

        self.tracker = CostTracker(
            price_per_question=config.crowd.price_per_question,
            budget=config.budget,
        )
        self.service = LabelingService(platform, config.crowd, self.tracker)
        self.manager = (PhaseBudgetManager(budget_plan, self.tracker)
                        if budget_plan is not None else None)
        self.checkpoint: Callable[["RunState"], None] | None = None
        """Set by the engine when a run directory is configured; stages
        call it to persist the run state mid-stage (e.g. after every
        matcher iteration)."""

        self.run_dir: Any = None
        """Set by the engine alongside :attr:`checkpoint`: the run's
        directory (a :class:`~pathlib.Path`), which the sharded blocking
        executor uses for its per-shard resume files (``shards/``).
        None when the run is not persisted."""

        self.telemetry = None
        if telemetry:
            # Imported lazily: obs.telemetry pulls in engine.events, so
            # a module-level import would be circular during package
            # initialization.
            from ..obs.telemetry import RunTelemetry
            self.telemetry = RunTelemetry(clock=find_clock(platform))
            self.bus.subscribe(self.telemetry.on_event)
            self.telemetry.record_budget(config.budget)
            self.tracker.on_hits = self.telemetry.record_hits

        self.service.on_label = self._emit_label
        self.tracker.on_spend = self._emit_spend
        self._wire_platform(platform)

    # ------------------------------------------------------------------
    # RNG streams
    # ------------------------------------------------------------------

    @property
    def root_seed(self) -> np.random.SeedSequence:
        """The run's root seed sequence (persisted in ``run.json``)."""
        return self._root_seed

    def rng(self, name: str) -> np.random.Generator:
        """The named stream's generator (one instance per run).

        Registered names map to fixed spawn keys; unregistered names get
        a CRC32-derived key, so every stream is a deterministic function
        of the run seed and its own name only.
        """
        if name not in self._streams:
            if name in RNG_STREAMS:
                key = RNG_STREAMS.index(name)
            else:
                key = _HASH_KEY_BASE + zlib.crc32(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._root_seed.entropy,
                spawn_key=(*self._root_seed.spawn_key, key),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def rng_states(self) -> dict[str, dict[str, Any]]:
        """Bit-generator state of every stream touched so far."""
        return {
            name: generator.bit_generator.state
            for name, generator in sorted(self._streams.items())
        }

    def restore_rng_states(self, states: dict[str, dict[str, Any]]) -> None:
        """Restore stream states captured by :meth:`rng_states`."""
        for name, state in states.items():
            self.rng(name).bit_generator.state = state

    # ------------------------------------------------------------------
    # Budget phases
    # ------------------------------------------------------------------

    def phase(self, name: str | None):
        """Context manager scoping spend to a budget phase (or a no-op)."""
        if self.manager is None or name is None:
            return nullcontext()
        return self.manager.phase(name)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager opening a telemetry span (or a no-op)."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    # Event wiring
    # ------------------------------------------------------------------

    def _emit_label(self, pair, label: bool, strong: bool) -> None:
        """Forward one label purchase from the service to the bus."""
        self.bus.emit(
            EVENT_LABELS_PURCHASED,
            pair=[pair.a_id, pair.b_id],
            label=bool(label),
            strong=bool(strong),
            pairs_labeled=self.tracker.pairs_labeled,
        )

    def _emit_spend(self, answers: int, dollars: float) -> None:
        """Forward one spend increment from the tracker to the bus."""
        self.bus.emit(
            EVENT_BUDGET_SPENT,
            answers=int(answers),
            dollars=round(float(dollars), 10),
            total_dollars=round(self.tracker.dollars, 10),
        )

    def _wire_platform(self, platform: CrowdPlatform) -> None:
        """Hook the robustness wrappers in the stack up to this run.

        Walks the decorator stack: a
        :class:`~repro.crowd.gateway.ResilientCrowd` is bound to the
        run's cost tracker (reposted HITs are metered) and its
        retry/repost/circuit hooks emit ``retry_scheduled`` /
        ``hit_reposted`` / ``circuit_opened`` events; a
        :class:`~repro.crowd.faults.FaultyCrowd` emits
        ``fault_injected``.  Plain platforms pass through untouched.
        """
        node: Any = platform
        while node is not None:
            if isinstance(node, ResilientCrowd):
                node.bind_tracker(self.tracker)
                node.on_retry = self._emit_retry
                node.on_repost = self._emit_repost
                node.on_circuit_open = self._emit_circuit_open
            if isinstance(node, FaultyCrowd):
                node.on_fault = self._emit_fault
            node = getattr(node, "_inner", None)

    def _emit_fault(self, kind: str, pair) -> None:
        """Forward one injected fault from a FaultyCrowd to the bus."""
        self.bus.emit(EVENT_FAULT_INJECTED, kind=kind,
                      pair=[pair.a_id, pair.b_id])

    def _emit_retry(self, kind: str, attempt: int, delay: float) -> None:
        """Forward one scheduled retry from the gateway to the bus."""
        self.bus.emit(EVENT_RETRY_SCHEDULED, kind=kind,
                      attempt=int(attempt),
                      delay_seconds=round(float(delay), 6))

    def _emit_repost(self, pair, attempt: int) -> None:
        """Forward one HIT repost from the gateway to the bus."""
        self.bus.emit(EVENT_HIT_REPOSTED, pair=[pair.a_id, pair.b_id],
                      attempt=int(attempt))

    def _emit_circuit_open(self, failures: int) -> None:
        """Forward a circuit-breaker trip from the gateway to the bus."""
        self.bus.emit(EVENT_CIRCUIT_OPENED, failures=int(failures))
