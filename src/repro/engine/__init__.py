"""The staged execution engine under the hands-off loop.

Corleone's orchestration used to be a monolith: one ``_run`` method
hard-wired Blocker -> Matcher -> Estimator -> Locator and threaded a
single shared RNG through every component.  This package factors that
into explicit parts:

* :class:`~repro.engine.context.RunContext` — owns the run's named,
  independently seeded RNG streams, the labelling service, the cost
  tracker, the optional phase-budget manager and the event bus;
* :class:`~repro.engine.stage.Stage` — the protocol each pipeline phase
  implements (block, train-matcher, estimate, locate-difficult,
  reduce), operating on a serializable
  :class:`~repro.engine.state.RunState`;
* :class:`~repro.engine.runner.StagedEngine` — the thin deterministic
  driver that executes the stage sequence, emits structured events and
  checkpoints the run state at every boundary;
* :class:`~repro.engine.checkpoint.Checkpointer` — durable run
  directories: a killed run resumes to a bit-identical result.

``Corleone``, ``Deduplicator`` and ``MultiTaskRunner`` all execute
through this layer; see ``docs/architecture.md`` for the full picture.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_FILE,
    Checkpointer,
    load_checkpoint,
    load_run_inputs,
)
from .context import RNG_STREAMS, RunContext
from .events import (
    EVENT_ARTIFACT_CORRUPT,
    EVENT_ARTIFACT_QUARANTINED,
    EVENT_ARTIFACT_WRITTEN,
    EVENT_BUDGET_SPENT,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_CIRCUIT_OPENED,
    EVENT_FAULT_INJECTED,
    EVENT_HIT_REPOSTED,
    EVENT_LABELS_PURCHASED,
    EVENT_RETRY_SCHEDULED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_STARTED,
    EVENT_TRACE_TORN,
    Event,
    EventBus,
    JsonlTraceSink,
    ProgressReporter,
)
from .runner import StagedEngine
from .stage import Stage
from .stages import (
    STAGE_BLOCK,
    STAGE_ESTIMATE,
    STAGE_LOCATE,
    STAGE_REDUCE,
    STAGE_TRAIN_MATCHER,
    build_stages,
)
from .state import RunState

__all__ = [
    "CHECKPOINT_FILE",
    "Checkpointer",
    "EVENT_ARTIFACT_CORRUPT",
    "EVENT_ARTIFACT_QUARANTINED",
    "EVENT_ARTIFACT_WRITTEN",
    "EVENT_BUDGET_SPENT",
    "EVENT_CHECKPOINT_FALLBACK",
    "EVENT_CHECKPOINT_WRITTEN",
    "EVENT_CIRCUIT_OPENED",
    "EVENT_FAULT_INJECTED",
    "EVENT_HIT_REPOSTED",
    "EVENT_LABELS_PURCHASED",
    "EVENT_RETRY_SCHEDULED",
    "EVENT_STAGE_FINISHED",
    "EVENT_STAGE_STARTED",
    "EVENT_TRACE_TORN",
    "Event",
    "EventBus",
    "JsonlTraceSink",
    "ProgressReporter",
    "RNG_STREAMS",
    "RunContext",
    "RunState",
    "STAGE_BLOCK",
    "STAGE_ESTIMATE",
    "STAGE_LOCATE",
    "STAGE_REDUCE",
    "STAGE_TRAIN_MATCHER",
    "Stage",
    "StagedEngine",
    "build_stages",
    "load_checkpoint",
    "load_run_inputs",
]
