"""The five paper phases as engine stages.

The hands-off loop (Figure 1) becomes an explicit state machine::

    block -> train_matcher -> estimate -> locate_difficult -> reduce
                  ^                                             |
                  +---------------------------------------------+

Each stage draws randomness only from its own named stream
(``ctx.rng(<stage>)``), so an extra draw in one stage no longer
perturbs any other — the decoupling the old shared-generator
orchestrator could not offer.
"""

from __future__ import annotations

import numpy as np

from ..core.blocker import Blocker
from ..core.estimator import AccuracyEstimator
from ..core.locator import DifficultPairsLocator
from ..core.matcher import ActiveLearningMatcher, MatcherTrainState
from ..core.results import IterationRecord
from ..features.vectorize import vectorize_pairs
from .context import RunContext
from .stage import Stage
from .state import RunState

STAGE_BLOCK = "block"
STAGE_TRAIN_MATCHER = "train_matcher"
STAGE_ESTIMATE = "estimate"
STAGE_LOCATE = "locate_difficult"
STAGE_REDUCE = "reduce"


class BlockStage:
    """Run the Blocker over A x B and vectorize the umbrella set."""

    name = STAGE_BLOCK
    phase = "blocking"

    def run(self, state: RunState, ctx: RunContext) -> str | None:
        """Block, vectorize, and set up the first working set."""
        # The sharded executor checkpoints per-shard progress under the
        # run directory; unpersisted runs pass shard_dir=None and simply
        # recompute on resume (there is nothing to resume from anyway).
        shard_dir = (ctx.run_dir / "shards"
                     if ctx.run_dir is not None else None)
        blocker = Blocker(ctx.config, ctx.service, ctx.rng("blocker"),
                          bus=ctx.bus, shard_dir=shard_dir)
        with ctx.span("section", section="blocker.run"):
            result = blocker.run(state.table_a, state.table_b,
                                 state.library, state.seed_labels)
        state.blocker = result
        if ctx.telemetry is not None:
            ctx.telemetry.record_blocker_result(result)
            if result.plan_stats is not None:
                ctx.telemetry.record_plan_stats(result.plan_stats)
        plan_cfg = ctx.config.plan
        engine = "plan" if plan_cfg.enabled else "batched"
        out = None
        spill = None
        if (ctx.run_dir is not None
                and plan_cfg.spill_threshold_bytes > 0):
            # Oversized feature matrices go straight into a
            # memory-mapped .npy under the run directory; the
            # checkpointer then references the spill file instead of
            # re-serializing the matrix.
            from ..plan import SPILL_DIR_NAME, SpillManager

            spill = SpillManager(ctx.run_dir / SPILL_DIR_NAME,
                                 plan_cfg.spill_threshold_bytes)
            out = spill.allocate(
                "candidates",
                (len(result.candidate_pairs), len(state.library)),
            )
        with ctx.span("section", section="vectorize_candidates"):
            candidates = vectorize_pairs(
                state.table_a, state.table_b, result.candidate_pairs,
                state.library, engine=engine, out=out,
            )
        if spill is not None:
            # Flush before anything references the file; the manager's
            # handle is released here and the matrix lives on through
            # the CandidateSet's read-only view (CL015 ownership
            # contract).
            if ctx.telemetry is not None:
                ctx.telemetry.record_spill(spill.bytes_spilled)
            spill.close()
        state.candidates = candidates
        if len(candidates) == 0:
            state.stop_reason = "empty_candidate_set"
            return None
        state.working_rows = list(range(len(candidates)))
        state.max_rounds = (
            1 if state.mode in ("one_iteration", "blocker_matcher")
            else ctx.config.max_pipeline_iterations
        )
        return STAGE_TRAIN_MATCHER


class TrainMatcherStage:
    """Crowd-train a forest on the current working set (Section 5)."""

    name = STAGE_TRAIN_MATCHER
    phase = "matching"

    def run(self, state: RunState, ctx: RunContext) -> str | None:
        """Train (or resume training) the iteration's matcher.

        The engine drives the matcher's stepwise API directly (rather
        than :meth:`~repro.core.matcher.ActiveLearningMatcher.train`) so
        each active-learning iteration runs inside its own telemetry
        span and checkpoints at the same boundary the span closes on.
        """
        working = state.working_set()
        matcher = ActiveLearningMatcher(ctx.config, ctx.service,
                                        ctx.rng("matcher"))
        if state.matcher_state is None:
            # Fresh iteration (a resumed mid-training one keeps its index).
            state.iteration += 1
        initial = {
            pair: label
            for pair, label in ctx.service.labeled_pairs().items()
            if pair in working
        }
        if ctx.telemetry is not None:
            ctx.telemetry.record_working_set(len(working))
        # Seed pairs may sit outside the umbrella set; vectorize them
        # separately so every matcher still trains on them.
        seed_items = sorted(state.seed_labels.items())
        seed_vectors = vectorize_pairs(
            state.table_a, state.table_b,
            [pair for pair, _ in seed_items], state.library,
        ).features
        seed_flags = np.array([label for _, label in seed_items], dtype=bool)

        train_state: MatcherTrainState | None = state.matcher_state
        if train_state is None:
            train_state = matcher.start(working, initial)
        while not matcher.train_finished(train_state):
            with ctx.span("matcher_iteration",
                          iteration=state.iteration,
                          al_step=len(train_state.forests) + 1):
                matcher.step(train_state, working,
                             seed_vectors, seed_flags)
            if ctx.telemetry is not None:
                ctx.telemetry.record_matcher_iteration()
            state.matcher_state = train_state
            if ctx.checkpoint is not None:
                ctx.checkpoint(state)
        matcher_result = matcher.finish(train_state, working)
        state.matcher_state = None

        for row, pair in enumerate(working.pairs):
            state.predictions_by_pair[pair] = bool(
                matcher_result.predictions[row]
            )
        candidates = state.candidates
        combined = frozenset(
            pair for pair in candidates.pairs
            if state.predictions_by_pair.get(pair, False)
        )
        record = IterationRecord(
            index=state.iteration,
            matcher=matcher_result,
            matcher_pairs_labeled=matcher_result.pairs_labeled,
            predicted_pairs=combined,
        )
        state.iterations.append(record)

        if state.mode == "blocker_matcher":
            state.best_predictions = record.predicted_pairs
            state.stop_reason = "blocker_matcher_mode"
            return None
        return STAGE_ESTIMATE


class EstimateStage:
    """Estimate precision/recall of the ensemble output (Section 6)."""

    name = STAGE_ESTIMATE
    phase = "estimation"

    def run(self, state: RunState, ctx: RunContext) -> str | None:
        """Estimate accuracy; decide whether the loop should continue."""
        candidates = state.candidates
        record = state.iterations[-1]
        combined = np.array([
            state.predictions_by_pair.get(pair, False)
            for pair in candidates.pairs
        ], dtype=bool)

        est_before = ctx.tracker.snapshot()
        estimator = AccuracyEstimator(ctx.config, ctx.service,
                                      ctx.rng("estimator"))
        estimate = estimator.estimate(
            candidates, combined, record.matcher.forest,
            certified=state.certified,
        )
        state.certified.extend(
            ev for ev in estimate.rule_evaluations if ev.accepted
        )
        record.estimate = estimate
        record.estimation_pairs_labeled = (
            ctx.tracker.snapshot().minus(est_before).pairs_labeled
        )

        if estimate.f1 <= state.best_f1:
            state.stop_reason = "no_improvement"
            return None
        state.best_f1 = estimate.f1
        state.best_predictions = record.predicted_pairs
        state.best_estimate = estimate
        if ctx.telemetry is not None:
            ctx.telemetry.record_best_f1(estimate.f1)

        if state.mode == "one_iteration":
            state.stop_reason = "one_iteration_mode"
            return None
        if state.iteration == state.max_rounds:
            state.stop_reason = "max_iterations"
            return None
        return STAGE_LOCATE


class LocateDifficultStage:
    """Carve the difficult pairs C' out of the working set (Section 7)."""

    name = STAGE_LOCATE
    phase = "reduction"

    def run(self, state: RunState, ctx: RunContext) -> str | None:
        """Locate difficult pairs; stop the loop if reduction failed."""
        record = state.iterations[-1]
        working = state.working_set()
        locator = DifficultPairsLocator(ctx.config, ctx.service,
                                        ctx.rng("locator"))
        loc_before = ctx.tracker.snapshot()
        locator_result = locator.locate(working, record.matcher.forest)
        record.locator = locator_result
        record.reduction_pairs_labeled = (
            ctx.tracker.snapshot().minus(loc_before).pairs_labeled
        )
        if not locator_result.should_continue:
            state.stop_reason = f"locator_{locator_result.stop_reason}"
            return None
        state.pending_difficult_rows = [
            state.candidates.index_of(pair)
            for pair in locator_result.difficult.pairs
        ]
        return STAGE_REDUCE


class ReduceStage:
    """Shrink the working set to the difficult pairs for the next round."""

    name = STAGE_REDUCE
    phase = None

    def run(self, state: RunState, ctx: RunContext) -> str | None:
        """Adopt the pending difficult rows as the new working set."""
        state.working_rows = list(state.pending_difficult_rows)
        state.pending_difficult_rows = []
        state.iterations[-1].difficult_size = len(state.working_rows)
        return STAGE_TRAIN_MATCHER


def build_stages() -> list[Stage]:
    """The standard five-stage pipeline, in declaration order."""
    return [
        BlockStage(),
        TrainMatcherStage(),
        EstimateStage(),
        LocateDifficultStage(),
        ReduceStage(),
    ]
