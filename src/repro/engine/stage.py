"""The stage protocol: one pipeline phase as a named, resumable unit.

A stage reads and mutates the :class:`~repro.engine.state.RunState`,
draws randomness only from its own named stream on the
:class:`~repro.engine.context.RunContext`, and returns the name of the
stage to run next (or None to finish the run).  Because every stage
transition passes through the serializable state, the engine can
checkpoint at any boundary and resume bit-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import RunContext
    from .state import RunState


@runtime_checkable
class Stage(Protocol):
    """One phase of the hands-off loop.

    Implementations are stateless: all run state lives in the
    :class:`~repro.engine.state.RunState` they receive, so a single
    stage instance can serve any number of runs.
    """

    name: str
    """Unique stage name; stored in ``RunState.next_stage``."""

    phase: str | None
    """Budget phase this stage spends under (None: no crowd spend)."""

    def run(self, state: "RunState", ctx: "RunContext") -> str | None:
        """Execute the stage; return the next stage's name (None: done)."""
        ...
