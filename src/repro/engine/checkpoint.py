"""Durable run directories: checkpoint, kill, resume, recover.

A run directory has a fixed layout:

* ``run.json`` — the run's immutable inputs, written once: config,
  tables, seed labels, mode, budget plan and the root seed sequence;
* ``candidates.npz`` — the vectorized umbrella set, written once as
  soon as blocking produces it (the expensive artifact, so it is never
  re-serialized per checkpoint);
* ``checkpoint.json`` — the latest engine state, replaced durably
  (:mod:`repro.storage.writer`) at every stage boundary and after every
  matcher iteration.  It carries everything mutable: the serialized
  :class:`~repro.engine.state.RunState`, the label cache with vote
  strengths, the cost ledger, the phase-budget ledger, the platform's
  answer-stream state and every RNG stream's bit-generator state;
* ``generations/checkpoint-NNNNNN.json`` — a copy of each of the last
  ``keep_generations`` checkpoints.  ``checkpoint.json`` is the fast
  path; the generations are the fallback chain when it fails its
  checksum on load (bit rot, or a stale manifest after a mid-batch
  crash);
* ``MANIFEST.json`` — the storage layer's artifact ledger: sha256,
  size and generation counter per artifact, flushed once per
  checkpoint cycle (after the artifacts — data before metadata);
* ``trace.jsonl`` — the structured event trace (append-only; a resumed
  run appends its tail again, so duplicate sequence numbers mark where
  a crash was resumed from);
* ``metrics.json`` / ``spans.jsonl`` — the telemetry layer's metric
  snapshot and span tree (``docs/observability.md``), *rewritten* from
  checkpointed telemetry state at every write so a resumed run's final
  files are byte-identical to the uninterrupted run's;
* ``profile.json`` — wall-clock hot-path profile, written once at run
  end, deliberately non-deterministic and deliberately absent from the
  manifest;
* ``progress.json`` — the live heartbeat (:mod:`repro.obs.progress`):
  stage, iteration, shard/checkpoint counts and budget burn,
  atomically rewritten at checkpoint and shard boundaries for ``obs
  serve``/``watch``.  A live advisory like ``profile.json`` — outside
  both the manifest and the byte-identity contract;
* ``quarantine/`` — artifacts that failed their checksum, moved aside
  (never deleted) by :func:`load_checkpoint`'s recovery path.

Everything is plain JSON (candidates aside) — no pickling, so run
directories are inspectable and portable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from .. import persistence
from ..core.budgeting import BudgetPlan
from ..data.pairs import Pair
from ..exceptions import DataError
from ..storage.recovery import quarantine_artifact, verify_artifact
from ..storage.writer import ArtifactWriter, load_manifest
from .events import (
    EVENT_ARTIFACT_CORRUPT,
    EVENT_ARTIFACT_QUARANTINED,
    EVENT_ARTIFACT_WRITTEN,
    EVENT_CHECKPOINT_FALLBACK,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.recovery import RecoveryLog
    from .context import RunContext
    from .state import RunState

RUN_FILE = "run.json"
CHECKPOINT_FILE = "checkpoint.json"
CANDIDATES_FILE = "candidates.npz"
TRACE_FILE = "trace.jsonl"
GENERATIONS_DIR = "generations"
"""Run-dir subdirectory holding the last-N checkpoint copies."""

DEFAULT_KEEP_GENERATIONS = 3
"""Checkpoint generations retained for checksum-failure fallback."""


class Checkpointer:
    """Writes a run's durable artifacts into one directory."""

    def __init__(self, run_dir: str | Path,
                 keep_generations: int = DEFAULT_KEEP_GENERATIONS) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.writer = ArtifactWriter(self.run_dir)
        self.keep_generations = max(1, int(keep_generations))
        self.checkpoints_written = 0
        """Checkpoints written by *this* instance (benchmarking)."""
        existing = load_checkpoint(self.run_dir)
        self._next_index = (existing["index"] + 1
                            if existing is not None else 0)
        self._have_candidates = (self.run_dir / CANDIDATES_FILE).exists()

    def write_inputs(self, state: "RunState", ctx: "RunContext",
                     budget_plan: BudgetPlan | None = None) -> None:
        """Persist the run's immutable inputs (no-op if already there)."""
        path = self.run_dir / RUN_FILE
        if path.exists():
            return
        root = ctx.root_seed
        entropy = root.entropy
        if not isinstance(entropy, int):
            entropy = [int(word) for word in np.atleast_1d(entropy)]
        document = {
            "format": "corleone-run",
            "version": persistence.FORMAT_VERSION,
            "mode": state.mode,
            "config": persistence.config_to_dict(ctx.config),
            "budget_plan": (
                None if budget_plan is None
                else persistence.budget_plan_to_dict(budget_plan)
            ),
            "seed_labels": [
                [pair.a_id, pair.b_id, bool(label)]
                for pair, label in state.seed_labels.items()
            ],
            "root_seed": {
                "entropy": entropy,
                "spawn_key": [int(key) for key in root.spawn_key],
            },
            "table_a": persistence.table_to_dict(state.table_a),
            "table_b": persistence.table_to_dict(state.table_b),
        }
        self.writer.atomic_write_json(RUN_FILE, document)

    def _spilled_features(self, state: "RunState") -> str | None:
        """Relative spill-file path for the candidate matrix, if any.

        When the block stage spilled the feature matrix to a
        memory-mapped ``.npy`` under this run directory, the candidate
        file stores a reference to it instead of re-serializing the
        matrix (the spill file *is* the canonical bytes).  Matrices
        backed by anything else — heap arrays, or maps outside the run
        directory — are serialized inline as before.
        """
        from ..plan.spill import spill_path

        path = spill_path(state.candidates.features)
        if path is None:
            return None
        try:
            return path.resolve().relative_to(
                self.run_dir.resolve()).as_posix()
        except ValueError:
            return None

    def _generation_name(self, index: int) -> str:
        """Run-relative path of checkpoint ``index``'s generation copy."""
        return f"{GENERATIONS_DIR}/checkpoint-{index:06d}.json"

    def _prune_generations(self, index: int) -> None:
        """Drop generation copies older than the retention window."""
        gen_dir = self.run_dir / GENERATIONS_DIR
        if not gen_dir.is_dir():
            return
        floor = index - self.keep_generations + 1
        for path in sorted(gen_dir.glob("checkpoint-*.json")):
            try:
                gen_index = int(path.stem.split("-")[-1])
            except ValueError:
                continue
            if gen_index < floor:
                path.unlink()
                self.writer.forget(self._generation_name(gen_index))

    def write(self, state: "RunState", ctx: "RunContext") -> int:
        """Durably persist one checkpoint; return its index.

        One checkpoint cycle writes, in order: ``candidates.npz`` (the
        first cycle that has a candidate set), the generation copy,
        ``checkpoint.json`` itself, the telemetry exports, and finally
        one batched ``MANIFEST.json`` flush — data always lands before
        the metadata that describes it.  The mid-run telemetry exports
        are volatile snapshots (atomic replace, no fsync, unmanifested
        — regenerable from the checkpoint's ``telemetry`` state); the
        pipeline's run-end export rewrites them durably and records
        their final checksums in the manifest.

        The telemetry artifact-write counters increment *before* the
        checkpoint document is serialized (the same pre-write rule as
        :meth:`~repro.obs.telemetry.RunTelemetry.record_checkpoint`),
        so a kill at this exact checkpoint resumes with the counts the
        uninterrupted run carries.  ``artifact_written`` events are
        emitted after the cycle completes and are deliberately ignored
        by the telemetry's bus sink for the same reason.
        """
        index = self._next_index
        written: list[tuple[str, str]] = []
        with self.writer.batch():
            if not self._have_candidates and state.candidates is not None:
                sha = persistence.save_candidates(
                    state.candidates, self.run_dir / CANDIDATES_FILE,
                    external_features=self._spilled_features(state),
                    writer=self.writer,
                )
                self._have_candidates = True
                written.append((CANDIDATES_FILE, sha))
            if ctx.telemetry is not None:
                # Pre-serialize, so the counts ride inside the document
                # below.  The cycle's artifact set is fixed (candidates
                # are counted against the "checkpoint" cycle only via
                # their own write above being manifest-recorded, not
                # metered — a restarted run that finds candidates.npz
                # already on disk must converge to the same totals).
                for kind in ("generation", "checkpoint",
                             "metrics", "spans", "manifest"):
                    ctx.telemetry.record_artifact_write(kind)
            platform_state = None
            if hasattr(ctx.platform, "state_dict"):
                platform_state = ctx.platform.state_dict()
            document = {
                "format": "corleone-checkpoint",
                "version": persistence.FORMAT_VERSION,
                "index": index,
                "sequence": ctx.bus.events_emitted,
                "state": state.to_dict(),
                "service_cache": ctx.service.cache_state(),
                "tracker": ctx.tracker.state_dict(),
                "manager": (ctx.manager.state_dict()
                            if ctx.manager is not None else None),
                "platform": platform_state,
                "rng": ctx.rng_states(),
                "telemetry": (ctx.telemetry.state_dict()
                              if ctx.telemetry is not None else None),
            }
            payload = json.dumps(document)
            generation_name = self._generation_name(index)
            self.writer.atomic_write_text(generation_name, payload)
            written.append((generation_name,
                            self.writer.entry(generation_name)["sha256"]))
            self.writer.atomic_write_text(CHECKPOINT_FILE, payload)
            written.append((CHECKPOINT_FILE,
                            self.writer.entry(CHECKPOINT_FILE)["sha256"]))
            self._prune_generations(index)
            self._next_index += 1
            self.checkpoints_written += 1
            if ctx.telemetry is not None:
                # Telemetry artifacts are rewritten (not appended) from
                # the just-persisted state: a later resume regenerates
                # the same files byte for byte.  No writer: mid-run
                # exports are volatile live snapshots, not manifested
                # artifacts — the run-end export records the final
                # checksums.
                ctx.telemetry.export(self.run_dir)
        for artifact, sha in written:
            ctx.bus.emit(EVENT_ARTIFACT_WRITTEN, artifact=artifact,
                         sha256=sha, index=index)
        return index


def _candidate_documents(run_dir: Path) -> list[Path]:
    """Checkpoint documents to try, newest first.

    ``checkpoint.json`` leads; the generation copies follow in
    descending index order.  The latest generation duplicates
    ``checkpoint.json``'s content, so a corrupt primary usually falls
    back with *zero* rollback — only double corruption loses ground.
    """
    paths: list[Path] = []
    primary = run_dir / CHECKPOINT_FILE
    if primary.is_file():
        paths.append(primary)
    gen_dir = run_dir / GENERATIONS_DIR
    if gen_dir.is_dir():
        paths.extend(sorted(gen_dir.glob("checkpoint-*.json"),
                            reverse=True))
    return paths


def load_checkpoint(run_dir: str | Path,
                    recovery: "RecoveryLog | None" = None,
                    ) -> dict[str, Any] | None:
    """The newest checkpoint document that verifies, or None.

    Every candidate (``checkpoint.json``, then each retained
    generation, newest first) is checked against the run manifest's
    sha256 before it is parsed:

    * a checksum **match** is trusted;
    * **no manifest entry** (pre-durability directory, or a crash
      landed between the artifact replace and the manifest flush)
      falls back to the parse + format check — an artifact that parses
      is accepted, because the manifest is metadata, not the artifact
      of record;
    * a checksum **mismatch**, or an unverifiable document that fails
      to parse, is quarantined under ``quarantine/`` and the next
      candidate is tried.

    Recovery actions are recorded on ``recovery`` (when given) as
    ``artifact_corrupt`` / ``artifact_quarantined`` /
    ``checkpoint_fallback`` events for the resuming pipeline to replay
    onto its bus.  When *no* candidate survives, returns None: the
    caller restarts deterministically from ``run.json``, which the
    seeded-replay contract makes equivalent.
    """
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    fell_back = False
    for path in _candidate_documents(run_dir):
        verdict, actual, expected = verify_artifact(run_dir, path,
                                                    manifest)
        if verdict is False:
            _quarantine(run_dir, path, actual, expected, recovery)
            fell_back = True
            continue
        try:
            document = persistence._load_document(path,
                                                  "corleone-checkpoint")
        except DataError:
            if verdict is True:
                # The bytes match what the writer recorded, yet they do
                # not parse: the *recorded* artifact was bad.  That is
                # a writer bug, not rot — surface it, don't mask it.
                raise
            _quarantine(run_dir, path, actual, expected, recovery)
            fell_back = True
            continue
        if fell_back and recovery is not None:
            recovery.emit(
                EVENT_CHECKPOINT_FALLBACK,
                artifact=_relname(run_dir, path),
                index=int(document.get("index", -1)),
            )
        return document
    return None


def _relname(run_dir: Path, path: Path) -> str:
    """``path`` relative to the run directory (manifest key form)."""
    try:
        return path.resolve().relative_to(run_dir.resolve()).as_posix()
    except ValueError:
        return path.name


def _quarantine(run_dir: Path, path: Path, actual: str,
                expected: str | None,
                recovery: "RecoveryLog | None") -> None:
    """Move one failed artifact aside and record the actions."""
    name = _relname(run_dir, path)
    target = quarantine_artifact(run_dir, path)
    if recovery is not None:
        recovery.emit(
            EVENT_ARTIFACT_CORRUPT,
            artifact=name,
            actual_sha256=actual,
            expected_sha256=expected or "",
        )
        recovery.emit(
            EVENT_ARTIFACT_QUARANTINED,
            artifact=name,
            quarantined_to=_relname(run_dir, target),
        )


def load_run_inputs(run_dir: str | Path) -> dict[str, Any]:
    """The parsed run inputs: config, tables, seeds, plan, root seed.

    Returns a dict with keys ``mode``, ``config``, ``budget_plan``,
    ``seed_labels``, ``root_seed`` (a reconstructed
    :class:`numpy.random.SeedSequence`), ``table_a`` and ``table_b``.

    ``run.json`` is written once and has no generation chain to fall
    back through, so a checksum mismatch against the run manifest is
    unrecoverable: it raises a typed :class:`~repro.exceptions.
    DataError` naming the file and both checksums.
    """
    run_dir = Path(run_dir)
    path = run_dir / RUN_FILE
    if not path.is_file():
        raise DataError(f"{run_dir}: not a run directory (no {RUN_FILE})")
    verdict, actual, expected = verify_artifact(run_dir, path)
    if verdict is False:
        raise DataError(
            f"{path}: corrupt beyond recovery — sha256 {actual} does not "
            f"match the manifest's recorded {expected}, and run inputs "
            f"have no fallback generation")
    document = persistence._load_document(path, "corleone-run")
    raw = document["root_seed"]
    entropy = raw["entropy"]
    if not isinstance(entropy, int):
        entropy = [int(word) for word in entropy]
    root = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(int(key) for key in raw["spawn_key"]),
    )
    return {
        "mode": document["mode"],
        "config": persistence.config_from_dict(document["config"]),
        "budget_plan": (
            None if document["budget_plan"] is None
            else persistence.budget_plan_from_dict(document["budget_plan"])
        ),
        "seed_labels": {
            Pair(str(a), str(b)): bool(label)
            for a, b, label in document["seed_labels"]
        },
        "root_seed": root,
        "table_a": persistence.table_from_dict(document["table_a"]),
        "table_b": persistence.table_from_dict(document["table_b"]),
    }
