"""Durable run directories: checkpoint, kill, resume.

A run directory has a fixed layout:

* ``run.json`` — the run's immutable inputs, written once: config,
  tables, seed labels, mode, budget plan and the root seed sequence;
* ``candidates.npz`` — the vectorized umbrella set, written once as
  soon as blocking produces it (the expensive artifact, so it is never
  re-serialized per checkpoint);
* ``checkpoint.json`` — the latest engine state, replaced atomically
  (tmp file + ``os.replace``) at every stage boundary and after every
  matcher iteration.  It carries everything mutable: the serialized
  :class:`~repro.engine.state.RunState`, the label cache with vote
  strengths, the cost ledger, the phase-budget ledger, the platform's
  answer-stream state and every RNG stream's bit-generator state;
* ``trace.jsonl`` — the structured event trace (append-only; a resumed
  run appends its tail again, so duplicate sequence numbers mark where
  a crash was resumed from);
* ``metrics.json`` / ``spans.jsonl`` — the telemetry layer's metric
  snapshot and span tree (``docs/observability.md``), *rewritten* from
  checkpointed telemetry state at every write so a resumed run's final
  files are byte-identical to the uninterrupted run's;
* ``profile.json`` — wall-clock hot-path profile, written once at run
  end and deliberately non-deterministic.

Everything is plain JSON (candidates aside) — no pickling, so run
directories are inspectable and portable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from .. import persistence
from ..core.budgeting import BudgetPlan
from ..data.pairs import Pair
from ..exceptions import DataError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import RunContext
    from .state import RunState

RUN_FILE = "run.json"
CHECKPOINT_FILE = "checkpoint.json"
CANDIDATES_FILE = "candidates.npz"
TRACE_FILE = "trace.jsonl"


class Checkpointer:
    """Writes a run's durable artifacts into one directory."""

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoints_written = 0
        """Checkpoints written by *this* instance (benchmarking)."""
        existing = load_checkpoint(self.run_dir)
        self._next_index = (existing["index"] + 1
                            if existing is not None else 0)
        self._have_candidates = (self.run_dir / CANDIDATES_FILE).exists()

    def write_inputs(self, state: "RunState", ctx: "RunContext",
                     budget_plan: BudgetPlan | None = None) -> None:
        """Persist the run's immutable inputs (no-op if already there)."""
        path = self.run_dir / RUN_FILE
        if path.exists():
            return
        root = ctx.root_seed
        entropy = root.entropy
        if not isinstance(entropy, int):
            entropy = [int(word) for word in np.atleast_1d(entropy)]
        document = {
            "format": "corleone-run",
            "version": persistence.FORMAT_VERSION,
            "mode": state.mode,
            "config": persistence.config_to_dict(ctx.config),
            "budget_plan": (
                None if budget_plan is None
                else persistence.budget_plan_to_dict(budget_plan)
            ),
            "seed_labels": [
                [pair.a_id, pair.b_id, bool(label)]
                for pair, label in state.seed_labels.items()
            ],
            "root_seed": {
                "entropy": entropy,
                "spawn_key": [int(key) for key in root.spawn_key],
            },
            "table_a": persistence.table_to_dict(state.table_a),
            "table_b": persistence.table_to_dict(state.table_b),
        }
        path.write_text(json.dumps(document))

    def _spilled_features(self, state: "RunState") -> str | None:
        """Relative spill-file path for the candidate matrix, if any.

        When the block stage spilled the feature matrix to a
        memory-mapped ``.npy`` under this run directory, the candidate
        file stores a reference to it instead of re-serializing the
        matrix (the spill file *is* the canonical bytes).  Matrices
        backed by anything else — heap arrays, or maps outside the run
        directory — are serialized inline as before.
        """
        from ..plan.spill import spill_path

        path = spill_path(state.candidates.features)
        if path is None:
            return None
        try:
            return path.resolve().relative_to(
                self.run_dir.resolve()).as_posix()
        except ValueError:
            return None

    def write(self, state: "RunState", ctx: "RunContext") -> int:
        """Atomically persist one checkpoint; return its index."""
        if not self._have_candidates and state.candidates is not None:
            persistence.save_candidates(
                state.candidates, self.run_dir / CANDIDATES_FILE,
                external_features=self._spilled_features(state),
            )
            self._have_candidates = True
        platform_state = None
        if hasattr(ctx.platform, "state_dict"):
            platform_state = ctx.platform.state_dict()
        document = {
            "format": "corleone-checkpoint",
            "version": persistence.FORMAT_VERSION,
            "index": self._next_index,
            "sequence": ctx.bus.events_emitted,
            "state": state.to_dict(),
            "service_cache": ctx.service.cache_state(),
            "tracker": ctx.tracker.state_dict(),
            "manager": (ctx.manager.state_dict()
                        if ctx.manager is not None else None),
            "platform": platform_state,
            "rng": ctx.rng_states(),
            "telemetry": (ctx.telemetry.state_dict()
                          if ctx.telemetry is not None else None),
        }
        tmp = self.run_dir / (CHECKPOINT_FILE + ".tmp")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, self.run_dir / CHECKPOINT_FILE)
        self._next_index += 1
        self.checkpoints_written += 1
        if ctx.telemetry is not None:
            # Telemetry artifacts are rewritten (not appended) from the
            # just-persisted state: a later resume regenerates the same
            # files byte for byte.
            ctx.telemetry.export(self.run_dir)
        return document["index"]


def load_checkpoint(run_dir: str | Path) -> dict[str, Any] | None:
    """The latest checkpoint document, or None if none was written."""
    path = Path(run_dir) / CHECKPOINT_FILE
    if not path.is_file():
        return None
    return persistence._load_document(path, "corleone-checkpoint")


def load_run_inputs(run_dir: str | Path) -> dict[str, Any]:
    """The parsed run inputs: config, tables, seeds, plan, root seed.

    Returns a dict with keys ``mode``, ``config``, ``budget_plan``,
    ``seed_labels``, ``root_seed`` (a reconstructed
    :class:`numpy.random.SeedSequence`), ``table_a`` and ``table_b``.
    """
    path = Path(run_dir) / RUN_FILE
    if not path.is_file():
        raise DataError(f"{run_dir}: not a run directory (no {RUN_FILE})")
    document = persistence._load_document(path, "corleone-run")
    raw = document["root_seed"]
    entropy = raw["entropy"]
    if not isinstance(entropy, int):
        entropy = [int(word) for word in entropy]
    root = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(int(key) for key in raw["spawn_key"]),
    )
    return {
        "mode": document["mode"],
        "config": persistence.config_from_dict(document["config"]),
        "budget_plan": (
            None if document["budget_plan"] is None
            else persistence.budget_plan_from_dict(document["budget_plan"])
        ),
        "seed_labels": {
            Pair(str(a), str(b)): bool(label)
            for a, b, label in document["seed_labels"]
        },
        "root_seed": root,
        "table_a": persistence.table_from_dict(document["table_a"]),
        "table_b": persistence.table_from_dict(document["table_b"]),
    }
