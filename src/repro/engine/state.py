"""The serializable state of one hands-off run.

:class:`RunState` replaces the old ``_RunProgress`` accumulator: it is
the *only* mutable object the stages operate on, and everything in it
(beyond the input tables, which are persisted once per run directory)
round-trips through plain JSON via :meth:`RunState.to_dict` /
:meth:`RunState.from_dict`.  That property is what makes checkpointed
runs resumable to a bit-identical result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.blocker import BlockerResult
from ..core.estimator import AccuracyEstimate
from ..core.matcher import MatcherTrainState
from ..core.results import CorleoneResult, IterationRecord
from ..data.pairs import CandidateSet, Pair
from ..rules.evaluation import RuleEvaluation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.cost import CostTracker
    from ..data.table import Table
    from ..features.library import FeatureLibrary

FIRST_STAGE = "block"
"""Name of the stage every fresh run starts in."""


@dataclass
class RunState:
    """Everything a hands-off run has computed so far.

    The candidate set is referenced, not duplicated: ``working_rows``
    and the serialized forms of locator results store row indices into
    ``candidates``, and the checkpointer persists the candidate set once
    (as ``.npz``) rather than on every checkpoint.
    """

    mode: str
    """"full", "one_iteration" or "blocker_matcher"."""

    seed_labels: dict[Pair, bool]
    """The user's trusted seed examples."""

    next_stage: str | None = FIRST_STAGE
    """Name of the stage to run next; None when the run is finished."""

    iteration: int = 0
    """1-based index of the current matching iteration."""

    max_rounds: int = 0
    """Iteration cap for this run (set by the blocking stage)."""

    blocker: BlockerResult | None = None
    candidates: CandidateSet | None = None
    working_rows: list[int] = field(default_factory=list)
    """Rows of ``candidates`` forming the current working set."""

    pending_difficult_rows: list[int] = field(default_factory=list)
    """Difficult rows handed from the locate stage to the reduce stage."""

    predictions_by_pair: dict[Pair, bool] = field(default_factory=dict)
    """Ensemble predictions: each pair decided by the matcher of the
    iteration in which it left the difficult set (Section 7, step 3)."""

    iterations: list[IterationRecord] = field(default_factory=list)
    certified: list[RuleEvaluation] = field(default_factory=list)
    """Reduction-rule evaluations accepted by earlier estimation rounds;
    re-applied for free by later rounds."""

    best_f1: float = -1.0
    best_predictions: frozenset[Pair] = frozenset()
    best_estimate: AccuracyEstimate | None = None
    stop_reason: str = "max_iterations"
    matcher_state: MatcherTrainState | None = None
    """In-progress matcher training (set between mid-stage checkpoints,
    None at stage boundaries)."""

    def __post_init__(self) -> None:
        """Initialize the transient (non-serialized) input references."""
        self.table_a: "Table | None" = None
        self.table_b: "Table | None" = None
        self.library: "FeatureLibrary | None" = None

    def attach(self, table_a: "Table", table_b: "Table",
               library: "FeatureLibrary") -> None:
        """Attach the run inputs (transient; persisted via ``run.json``)."""
        self.table_a = table_a
        self.table_b = table_b
        self.library = library

    def working_set(self) -> CandidateSet:
        """The current working candidate set C' (a view by rows)."""
        assert self.candidates is not None
        if len(self.working_rows) == len(self.candidates):
            return self.candidates
        return self.candidates.subset(self.working_rows)

    def to_result(self, tracker: "CostTracker") -> CorleoneResult:
        """Package a *finished* run (``next_stage is None``) as a result.

        Requires the blocking stage to have run (``blocker`` and
        ``candidates`` set); partial budget-exhausted runs are packaged
        by the pipeline's own fallback path instead.
        """
        assert self.blocker is not None and self.candidates is not None
        return CorleoneResult(
            predicted_matches=self.best_predictions,
            candidates=self.candidates,
            blocker=self.blocker,
            iterations=self.iterations,
            estimate=self.best_estimate,
            cost=tracker.snapshot(),
            stop_reason=self.stop_reason,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible snapshot of the run state.

        The candidate set itself is *not* included — only row indices
        into it; the checkpointer stores the set once as ``.npz``.
        """
        from .. import persistence as p

        candidates = self.candidates
        return {
            "mode": self.mode,
            "seed_labels": [
                [pair.a_id, pair.b_id, bool(label)]
                for pair, label in self.seed_labels.items()
            ],
            "next_stage": self.next_stage,
            "iteration": self.iteration,
            "max_rounds": self.max_rounds,
            "blocker": (None if self.blocker is None
                        else p.blocker_result_to_dict(self.blocker)),
            "working_rows": [int(row) for row in self.working_rows],
            "pending_difficult_rows": [
                int(row) for row in self.pending_difficult_rows
            ],
            "predictions_by_pair": [
                [pair.a_id, pair.b_id, bool(label)]
                for pair, label in self.predictions_by_pair.items()
            ],
            "iterations": [
                p.iteration_record_to_dict(record, candidates)
                for record in self.iterations
            ],
            "certified": [
                p.rule_evaluation_to_dict(ev) for ev in self.certified
            ],
            "best_f1": float(self.best_f1),
            "best_predictions": [
                [pair.a_id, pair.b_id]
                for pair in sorted(self.best_predictions)
            ],
            "best_estimate": (None if self.best_estimate is None
                              else p.estimate_to_dict(self.best_estimate)),
            "stop_reason": self.stop_reason,
            "matcher_state": (
                None if self.matcher_state is None
                else p.matcher_train_state_to_dict(self.matcher_state)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any],
                  candidates: CandidateSet | None) -> "RunState":
        """Rebuild a state saved with :meth:`to_dict`.

        ``candidates`` is the candidate set loaded from the run
        directory's ``.npz`` (None when the run was checkpointed before
        blocking produced one).
        """
        from .. import persistence as p

        state = cls(
            mode=data["mode"],
            seed_labels={
                Pair(str(a), str(b)): bool(label)
                for a, b, label in data["seed_labels"]
            },
            next_stage=data["next_stage"],
            iteration=data["iteration"],
            max_rounds=data["max_rounds"],
            blocker=(None if data["blocker"] is None
                     else p.blocker_result_from_dict(data["blocker"])),
            candidates=candidates,
            working_rows=[int(row) for row in data["working_rows"]],
            pending_difficult_rows=[
                int(row) for row in data["pending_difficult_rows"]
            ],
            predictions_by_pair={
                Pair(str(a), str(b)): bool(label)
                for a, b, label in data["predictions_by_pair"]
            },
            iterations=[
                p.iteration_record_from_dict(record, candidates)
                for record in data["iterations"]
            ],
            certified=[
                p.rule_evaluation_from_dict(ev) for ev in data["certified"]
            ],
            best_f1=float(data["best_f1"]),
            best_predictions=frozenset(
                Pair(str(a), str(b)) for a, b in data["best_predictions"]
            ),
            best_estimate=(
                None if data["best_estimate"] is None
                else p.estimate_from_dict(data["best_estimate"])
            ),
            stop_reason=data["stop_reason"],
            matcher_state=(
                None if data["matcher_state"] is None
                else p.matcher_train_state_from_dict(data["matcher_state"])
            ),
        )
        return state
