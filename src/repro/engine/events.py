"""The engine's structured event bus and its standard sinks.

Every observable milestone of a run flows through one
:class:`EventBus`: stage boundaries, label purchases, budget spend and
checkpoint writes.  Sinks subscribe to the bus; the engine ships two —
a JSONL trace writer (the machine-readable run log) and a human
progress reporter.  Events carry a monotonically increasing sequence
number instead of wall-clock timestamps, so traces of a seeded run are
bit-identical across replays (the same determinism contract corlint
CL001 enforces on the algorithmic subsystems).
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any, TextIO

__all__ = [
    "EVENT_ARTIFACT_CORRUPT",
    "EVENT_ARTIFACT_QUARANTINED",
    "EVENT_ARTIFACT_WRITTEN",
    "EVENT_BLOCKER_FALLBACK",
    "EVENT_BUDGET_SPENT",
    "EVENT_CHECKPOINT_FALLBACK",
    "EVENT_CHECKPOINT_WRITTEN",
    "EVENT_CIRCUIT_OPENED",
    "EVENT_FAULT_INJECTED",
    "EVENT_HIT_REPOSTED",
    "EVENT_LABELS_PURCHASED",
    "EVENT_NAMES",
    "EVENT_RETRY_SCHEDULED",
    "EVENT_SHARD_COMPLETED",
    "EVENT_SHARD_STARTED",
    "EVENT_STAGE_FINISHED",
    "EVENT_STAGE_STARTED",
    "EVENT_TRACE_TORN",
    "Event",
    "EventBus",
    "JsonlTraceSink",
    "ProgressReporter",
    "read_trace",
]

EVENT_STAGE_STARTED = "stage_started"
EVENT_STAGE_FINISHED = "stage_finished"
EVENT_LABELS_PURCHASED = "labels_purchased"
EVENT_BUDGET_SPENT = "budget_spent"
EVENT_CHECKPOINT_WRITTEN = "checkpoint_written"
EVENT_FAULT_INJECTED = "fault_injected"
EVENT_RETRY_SCHEDULED = "retry_scheduled"
EVENT_HIT_REPOSTED = "hit_reposted"
EVENT_CIRCUIT_OPENED = "circuit_opened"
EVENT_SHARD_STARTED = "shard_started"
EVENT_SHARD_COMPLETED = "shard_completed"
EVENT_BLOCKER_FALLBACK = "blocker_parallel_fallback"
EVENT_ARTIFACT_WRITTEN = "artifact_written"
EVENT_ARTIFACT_CORRUPT = "artifact_corrupt"
EVENT_ARTIFACT_QUARANTINED = "artifact_quarantined"
EVENT_CHECKPOINT_FALLBACK = "checkpoint_fallback"
EVENT_TRACE_TORN = "trace_torn_tail"

EVENT_NAMES = (
    EVENT_STAGE_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_LABELS_PURCHASED,
    EVENT_BUDGET_SPENT,
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_FAULT_INJECTED,
    EVENT_RETRY_SCHEDULED,
    EVENT_HIT_REPOSTED,
    EVENT_CIRCUIT_OPENED,
    EVENT_SHARD_STARTED,
    EVENT_SHARD_COMPLETED,
    EVENT_BLOCKER_FALLBACK,
    EVENT_ARTIFACT_WRITTEN,
    EVENT_ARTIFACT_CORRUPT,
    EVENT_ARTIFACT_QUARANTINED,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_TRACE_TORN,
)
"""Every event name the engine emits, in rough lifecycle order."""


@dataclass(frozen=True)
class Event:
    """One structured engine event.

    ``sequence`` orders events totally within a run; payload keys are
    event-specific but always JSON-compatible scalars or short lists.
    """

    name: str
    sequence: int
    payload: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible representation (one trace line)."""
        return {"event": self.name, "sequence": self.sequence,
                **self.payload}


Sink = Callable[[Event], None]
"""A subscriber: any callable accepting one :class:`Event`."""


class EventBus:
    """Fans engine events out to subscribed sinks, in subscribe order.

    A sink that raises aborts the emit — the engine treats observer
    failures as real failures rather than silently dropping telemetry
    (and the resume tests exploit this to kill runs at exact
    checkpoint boundaries).
    """

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self._sequence = 0

    @property
    def events_emitted(self) -> int:
        """Total events emitted so far."""
        return self._sequence

    def subscribe(self, sink: Sink) -> Sink:
        """Register ``sink`` for every future event; returns it."""
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Sink) -> None:
        """Remove a previously subscribed sink (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, name: str, **payload: Any) -> Event:
        """Build, number and deliver one event to every sink."""
        event = Event(name=name, sequence=self._sequence, payload=payload)
        self._sequence += 1
        for sink in self._sinks:
            sink(event)
        return event

    def restore_sequence(self, sequence: int) -> None:
        """Reset the sequence counter (checkpoint resume)."""
        self._sequence = int(sequence)


class JsonlTraceSink:
    """Appends every event as one JSON line to a trace file.

    The file is opened lazily and flushed per event, so a killed run's
    trace is complete up to the last event it survived to emit.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None

    def __call__(self, event: Event) -> None:
        """Write one event as a JSON line."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace(path: str | Path) -> list[Event]:
    """Load a JSONL trace written by :class:`JsonlTraceSink`.

    Two durability accommodations, matching how the sink actually
    fails:

    * **Torn tail** — a crash mid-append can persist a *prefix* of the
      final line.  Only the last line may legally be invalid JSON, and
      a torn one is dropped rather than raised on (a resuming process
      additionally truncates it off the file and emits
      ``trace_torn_tail`` — see
      :func:`repro.storage.recovery.repair_trace`); invalid JSON
      anywhere *earlier* is real corruption and raises a typed
      :class:`~repro.exceptions.DataError`.
    * **Duplicate sequence numbers** — the trace is append-only across
      kill/resume: a resumed run re-emits from the restored sequence
      counter, so the seam appears as sequence numbers that repeat
      (and, for events emitted after the checkpoint document was
      serialized, as a small shift).  Events are returned in file
      order, duplicates included; readers wanting one event per
      sequence take the *latest* occurrence, which is the resumed
      run's authoritative one
      (:func:`repro.obs.report.effective_trace`).
    """
    from ..exceptions import DataError

    path = Path(path)
    lines = path.read_text().splitlines()
    last_index = len(lines) - 1
    events: list[Event] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if index == last_index:
                break  # torn tail: a crash cut the final append short
            raise DataError(
                f"{path}: invalid JSON on trace line {index + 1} "
                f"(not a torn tail — line {len(lines)} follows it)"
            ) from None
        name = data.pop("event")
        sequence = data.pop("sequence")
        events.append(Event(name=name, sequence=sequence, payload=data))
    return events


class ProgressReporter:
    """Human-readable one-liner per coarse event.

    ``write`` defaults to ``print``; tests pass a list-appender.  Label
    purchases are aggregated into the following stage_finished line
    rather than reported one-by-one, keeping the output proportional to
    stages, not labels.
    """

    def __init__(self, write: Callable[[str], None] = print) -> None:
        self._write = write
        self._labels_since_stage = 0

    def __call__(self, event: Event) -> None:
        """Format and forward one event."""
        if event.name == EVENT_LABELS_PURCHASED:
            self._labels_since_stage += 1
            return
        if event.name == EVENT_STAGE_STARTED:
            self._labels_since_stage = 0
            self._write(
                f"[{event.sequence}] stage {event.payload.get('stage')} "
                f"(iteration {event.payload.get('iteration')}) started"
            )
        elif event.name == EVENT_STAGE_FINISHED:
            self._write(
                f"[{event.sequence}] stage {event.payload.get('stage')} "
                f"finished: {self._labels_since_stage} labels purchased, "
                f"${event.payload.get('dollars', 0.0):.2f} total spend"
            )
        elif event.name == EVENT_CHECKPOINT_WRITTEN:
            self._write(
                f"[{event.sequence}] checkpoint "
                f"#{event.payload.get('index')} written"
            )
        elif event.name == EVENT_CIRCUIT_OPENED:
            self._write(
                f"[{event.sequence}] crowd circuit OPENED after "
                f"{event.payload.get('failures')} consecutive failures"
            )
        elif event.name == EVENT_BLOCKER_FALLBACK:
            self._write(
                f"[{event.sequence}] parallel blocking fell back "
                f"({event.payload.get('reason')})"
            )
        elif event.name == EVENT_ARTIFACT_CORRUPT:
            self._write(
                f"[{event.sequence}] artifact CORRUPT: "
                f"{event.payload.get('artifact')} "
                f"(sha256 {event.payload.get('actual_sha256', '?')[:12]} != "
                f"recorded {event.payload.get('expected_sha256', '?')[:12]})"
            )
        elif event.name == EVENT_ARTIFACT_QUARANTINED:
            self._write(
                f"[{event.sequence}] artifact quarantined: "
                f"{event.payload.get('artifact')} -> "
                f"{event.payload.get('quarantined_to')}"
            )
        elif event.name == EVENT_CHECKPOINT_FALLBACK:
            self._write(
                f"[{event.sequence}] checkpoint fell back to generation "
                f"{event.payload.get('artifact')}"
            )
        elif event.name == EVENT_TRACE_TORN:
            self._write(
                f"[{event.sequence}] trace had a torn tail: "
                f"{event.payload.get('bytes_truncated')} bytes truncated"
            )
        elif event.name in (EVENT_BUDGET_SPENT, EVENT_FAULT_INJECTED,
                            EVENT_RETRY_SCHEDULED, EVENT_HIT_REPOSTED,
                            EVENT_SHARD_STARTED, EVENT_SHARD_COMPLETED,
                            EVENT_ARTIFACT_WRITTEN):
            pass  # per-answer/per-shard/per-artifact noise, too fine
            # for progress output
        else:
            self._write(f"[{event.sequence}] {event.name}")
