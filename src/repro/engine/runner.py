"""The thin deterministic driver executing the stage sequence.

``StagedEngine.run`` loops: look up the next stage by name, emit
``stage_started``, run the stage inside its budget phase, emit
``stage_finished``, checkpoint.  All control flow lives in the stages'
return values; the driver adds only events and durability.

Checkpoints are written *before* the ``checkpoint_written`` event is
emitted, so even a sink that raises (the crash-injection hook the
resume tests use) leaves a complete checkpoint on disk.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from .context import RunContext
from .events import (
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_STARTED,
)
from .stage import Stage
from .stages import build_stages
from .state import RunState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import Checkpointer


class StagedEngine:
    """Executes stages against one run state until none remains."""

    def __init__(self, ctx: RunContext,
                 stages: Sequence[Stage] | None = None,
                 checkpointer: "Checkpointer | None" = None) -> None:
        self.ctx = ctx
        stage_list = list(stages) if stages is not None else build_stages()
        self.stages: dict[str, Stage] = {
            stage.name: stage for stage in stage_list
        }
        self.checkpointer = checkpointer
        if checkpointer is not None:
            # Stages call this mid-stage (e.g. per matcher iteration).
            ctx.checkpoint = self._write_checkpoint

    def _write_checkpoint(self, state: RunState) -> None:
        """Persist the state, then announce it on the bus."""
        index = self.checkpointer.write(state, self.ctx)
        self.ctx.bus.emit(
            EVENT_CHECKPOINT_WRITTEN,
            index=index,
            stage=state.next_stage,
            iteration=state.iteration,
        )

    def run(self, state: RunState) -> RunState:
        """Drive ``state`` to completion (``next_stage is None``).

        A :class:`~repro.exceptions.BudgetExhaustedError` escaping a
        stage propagates to the caller with the partial state intact.
        """
        while state.next_stage is not None:
            stage = self.stages[state.next_stage]
            self.ctx.bus.emit(
                EVENT_STAGE_STARTED,
                stage=stage.name,
                iteration=state.iteration,
            )
            with self.ctx.phase(stage.phase):
                next_name = stage.run(state, self.ctx)
            state.next_stage = next_name
            self.ctx.bus.emit(
                EVENT_STAGE_FINISHED,
                stage=stage.name,
                iteration=state.iteration,
                next_stage=next_name,
                dollars=round(self.ctx.tracker.dollars, 10),
            )
            if self.checkpointer is not None:
                self._write_checkpoint(state)
        return state
