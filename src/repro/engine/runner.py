"""The thin deterministic driver executing the stage sequence.

``StagedEngine.run`` loops: look up the next stage by name, emit
``stage_started``, run the stage inside its budget phase, emit
``stage_finished``, checkpoint.  All control flow lives in the stages'
return values; the driver adds only events and durability.

Checkpoints are written *before* the ``checkpoint_written`` event is
emitted, so even a sink that raises (the crash-injection hook the
resume tests use) leaves a complete checkpoint on disk.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from .context import RunContext
from .events import (
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_STARTED,
)
from .stage import Stage
from .stages import build_stages
from .state import RunState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import Checkpointer


class StagedEngine:
    """Executes stages against one run state until none remains."""

    def __init__(self, ctx: RunContext,
                 stages: Sequence[Stage] | None = None,
                 checkpointer: "Checkpointer | None" = None) -> None:
        self.ctx = ctx
        stage_list = list(stages) if stages is not None else build_stages()
        self.stages: dict[str, Stage] = {
            stage.name: stage for stage in stage_list
        }
        self.checkpointer = checkpointer
        if checkpointer is not None:
            # Stages call this mid-stage (e.g. per matcher iteration).
            ctx.checkpoint = self._write_checkpoint
            # Finer-than-checkpoint durability (the sharded blocking
            # executor's per-shard files) lives under the same directory.
            ctx.run_dir = checkpointer.run_dir

    def _write_checkpoint(self, state: RunState) -> None:
        """Persist the state, then announce it on the bus.

        The telemetry checkpoint counter increments *before* the write
        so the count rides inside the checkpoint document itself — a
        run killed at this exact checkpoint then resumes with the same
        count the uninterrupted run carries in memory.
        """
        if self.ctx.telemetry is not None:
            self.ctx.telemetry.record_checkpoint()
        index = self.checkpointer.write(state, self.ctx)
        self.ctx.bus.emit(
            EVENT_CHECKPOINT_WRITTEN,
            index=index,
            stage=state.next_stage,
            iteration=state.iteration,
        )

    def run(self, state: RunState) -> RunState:
        """Drive ``state`` to completion (``next_stage is None``).

        A :class:`~repro.exceptions.BudgetExhaustedError` escaping a
        stage propagates to the caller with the partial state intact.

        For the run's duration the context's telemetry (if any) is
        *activated*: ambient hot-path hooks and the wall-clock profiler
        report to it, a root ``run`` span brackets the whole run and
        each stage executes inside its own ``stage`` span.  A stage
        that raises leaves its span open; the span then simply never
        reaches ``spans.jsonl`` (the tracer serializes completed spans
        only), and a resumed run re-opens it afresh.
        """
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            telemetry.activate()
            telemetry.open_run_span(state.mode)
        try:
            while state.next_stage is not None:
                stage = self.stages[state.next_stage]
                span_id = (telemetry.start_stage_span(
                    stage.name, state.iteration)
                    if telemetry is not None else None)
                self.ctx.bus.emit(
                    EVENT_STAGE_STARTED,
                    stage=stage.name,
                    iteration=state.iteration,
                )
                with self.ctx.phase(stage.phase):
                    next_name = stage.run(state, self.ctx)
                state.next_stage = next_name
                self.ctx.bus.emit(
                    EVENT_STAGE_FINISHED,
                    stage=stage.name,
                    iteration=state.iteration,
                    next_stage=next_name,
                    dollars=round(self.ctx.tracker.dollars, 10),
                )
                if telemetry is not None:
                    telemetry.tracer.end(span_id)
                    if next_name is None:
                        # Close the root span before the final
                        # checkpoint so the completed run rides into
                        # the persisted telemetry state.
                        telemetry.close_run_span()
                if self.checkpointer is not None:
                    self._write_checkpoint(state)
        finally:
            if telemetry is not None:
                telemetry.deactivate()
        return state
