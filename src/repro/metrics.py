"""Matching-quality metrics: confusion counts, precision, recall, F1.

These are the quantities reported throughout the paper's evaluation
(Tables 2-4).  Predictions and gold labels are boolean sequences or
sets of pair identifiers.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from dataclasses import dataclass
from typing import Hashable

__all__ = [
    "Confusion",
    "blocking_recall",
    "confusion_from_labels",
    "confusion_from_sets",
    "density",
    "prf1",
    "summarize",
]


@dataclass(frozen=True)
class Confusion:
    """A binary confusion matrix."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def predicted_positives(self) -> int:
        return self.tp + self.fp

    @property
    def actual_positives(self) -> int:
        return self.tp + self.fn

    @property
    def precision(self) -> float:
        """tp / (tp + fp); defined as 0.0 when nothing was predicted."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """tp / (tp + fn); defined as 0.0 when there are no positives."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )


def confusion_from_labels(predicted: Iterable[bool],
                          actual: Iterable[bool]) -> Confusion:
    """Build a confusion matrix from aligned boolean sequences.

    Raises ``ValueError`` if the sequences have different lengths.
    """
    tp = fp = fn = tn = 0
    sentinel = object()
    predicted_iter, actual_iter = iter(predicted), iter(actual)
    while True:
        p = next(predicted_iter, sentinel)
        a = next(actual_iter, sentinel)
        if p is sentinel and a is sentinel:
            break
        if p is sentinel or a is sentinel:
            raise ValueError("predicted and actual have different lengths")
        if p and a:
            tp += 1
        elif p and not a:
            fp += 1
        elif not p and a:
            fn += 1
        else:
            tn += 1
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)


def confusion_from_sets(predicted: Collection[Hashable],
                        actual: Collection[Hashable],
                        universe_size: int | None = None) -> Confusion:
    """Build a confusion matrix from sets of positive pair identifiers.

    ``universe_size`` is the total number of candidate pairs; when given,
    true negatives are computed, otherwise ``tn`` is 0 (it does not affect
    precision/recall/F1).
    """
    predicted_set = set(predicted)
    actual_set = set(actual)
    tp = len(predicted_set & actual_set)
    fp = len(predicted_set - actual_set)
    fn = len(actual_set - predicted_set)
    tn = 0
    if universe_size is not None:
        tn = universe_size - tp - fp - fn
        if tn < 0:
            raise ValueError(
                "universe_size is smaller than the observed pair count"
            )
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)


def prf1(predicted: Collection[Hashable],
         actual: Collection[Hashable]) -> tuple[float, float, float]:
    """Convenience: (precision, recall, F1) from sets of positive ids."""
    c = confusion_from_sets(predicted, actual)
    return c.precision, c.recall, c.f1


def blocking_recall(surviving: Collection[Hashable],
                    gold_matches: Collection[Hashable]) -> float:
    """Fraction of true matches retained by blocking (Table 3 'Recall')."""
    gold = set(gold_matches)
    if not gold:
        return 1.0
    return len(gold & set(surviving)) / len(gold)


def density(positives: int, total: int) -> float:
    """Positive density of an example universe (Section 6)."""
    return positives / total if total else 0.0


def summarize(confusions: Mapping[str, Confusion]) -> dict[str, dict[str, float]]:
    """Render a name->confusion mapping as name->{p, r, f1} percentages."""
    return {
        name: {
            "precision": 100.0 * c.precision,
            "recall": 100.0 * c.recall,
            "f1": 100.0 * c.f1,
        }
        for name, c in confusions.items()
    }
