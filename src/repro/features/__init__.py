"""The pre-supplied feature library of Section 4.1 and pair vectorization."""

from .similarity import (
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    overlap_coefficient,
    cosine_tfidf,
    exact_match,
    abs_diff,
    rel_diff,
)
from .batch import cache_stats, reset_cache_stats
from .tokenize import normalize, qgrams, word_tokens
from .library import Feature, FeatureLibrary, build_feature_library
from .vectorize import vectorize_pairs

__all__ = [
    "cache_stats",
    "reset_cache_stats",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan",
    "overlap_coefficient",
    "cosine_tfidf",
    "exact_match",
    "abs_diff",
    "rel_diff",
    "normalize",
    "qgrams",
    "word_tokens",
    "Feature",
    "FeatureLibrary",
    "build_feature_library",
    "vectorize_pairs",
]
