"""String normalization and tokenization used by the similarity measures.

The memoized variants (:func:`cached_word_tokens`,
:func:`cached_qgrams3`) are the shared tokenized intermediates of the
scalar feature path: every measure closure in
:mod:`repro.features.library` reads them, so one attribute tokenized
for a cheap measure is never re-tokenized for an expensive one.  (The
batch engine has its own per-record memoization in
:class:`repro.features.batch.PreparedColumn`, keyed by record rather
than by text.)
"""

from __future__ import annotations

import re
from functools import lru_cache

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace; punctuation is left in place.

    Token-level measures strip punctuation themselves via the word regex;
    character-level measures (edit distance, Jaro) want it preserved so
    that e.g. model numbers keep their hyphens.
    """
    return " ".join(text.lower().split())


def word_tokens(text: str) -> list[str]:
    """Alphanumeric word tokens of the lowercased text, in order."""
    return _WORD_RE.findall(text.lower())


def qgrams(text: str, q: int = 3) -> list[str]:
    """Character q-grams of the normalized text, padded with '#'.

    Padding with q-1 boundary characters gives prefix/suffix grams weight,
    which is the standard formulation for q-gram string joins.
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    text = normalize(text)
    if not text:
        return []
    padded = "#" * (q - 1) + text + "#" * (q - 1)
    return [padded[i:i + q] for i in range(len(padded) - q + 1)]


@lru_cache(maxsize=1 << 16)
def cached_word_tokens(text: str) -> tuple[str, ...]:
    """Memoized :func:`word_tokens` (tuple-valued, hashable input)."""
    return tuple(word_tokens(text))


@lru_cache(maxsize=1 << 16)
def cached_qgrams3(text: str) -> tuple[str, ...]:
    """Memoized 3-gram :func:`qgrams` (tuple-valued, hashable input)."""
    return tuple(qgrams(text, 3))
