"""Schema-driven feature generation (Section 4.1, step 3).

Given the two input tables, :func:`build_feature_library` produces a
:class:`FeatureLibrary`: one :class:`Feature` per (attribute, measure)
combination appropriate for the attribute's type — e.g. no TF/IDF features
for numeric attributes, exactly as the paper prescribes.  Every feature
carries a relative compute cost, which the Blocker's greedy rule-selection
uses as the "tuple pair cost" (Section 4.3).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data.table import AttrType, Record, Table
from ..exceptions import FeatureError
from . import batch as batch_engine
from . import similarity as sim
from .tokenize import cached_qgrams3 as _qgrams3
from .tokenize import cached_word_tokens as _tokens
from .tokenize import word_tokens


@dataclass(frozen=True)
class Feature:
    """A named similarity feature over one attribute of a tuple pair.

    ``compute`` maps the two attribute values to a float; missing values
    on either side yield NaN so the forest can route them explicitly.
    ``cost`` is a relative compute-cost estimate in arbitrary units used
    to rank blocking rules by cheapness.  ``batch_compute`` is the
    optional column-wise kernel behind :meth:`batch_value`; features
    without one fall back to the scalar loop.
    """

    name: str
    attribute: str
    measure: str
    cost: float
    compute: Callable[[object, object], float] = field(compare=False)
    batch_compute: batch_engine.BatchKernel | None = field(
        default=None, compare=False, repr=False
    )

    def value(self, record_a: Record, record_b: Record) -> float:
        """Evaluate this feature on a pair of records."""
        a = record_a.get(self.attribute)
        b = record_b.get(self.attribute)
        if a is None or b is None:
            return math.nan
        return float(self.compute(a, b))

    def batch_value(self, records_a: Sequence[Record],
                    records_b: Sequence[Record],
                    cache_a: batch_engine.TableFeatureCache | None = None,
                    cache_b: batch_engine.TableFeatureCache | None = None,
                    ) -> np.ndarray:
        """Evaluate this feature over aligned record columns at once.

        Returns exactly ``[self.value(a, b) for a, b in zip(records_a,
        records_b)]`` as a float64 array — the scalar path is the parity
        oracle — with NaN wherever either side's attribute is missing.
        ``cache_a``/``cache_b`` are the per-table prepared-value caches
        (see :func:`repro.features.batch.table_cache`); each record list
        must come from a single table per side.  When omitted, private
        caches still deduplicate work within this call.
        """
        if len(records_a) != len(records_b):
            raise FeatureError(
                f"batch_value got {len(records_a)} A records but "
                f"{len(records_b)} B records"
            )
        if self.batch_compute is None:
            return np.fromiter(
                (self.value(a, b) for a, b in zip(records_a, records_b)),
                dtype=np.float64, count=len(records_a),
            )
        if cache_a is None:
            cache_a = batch_engine.TableFeatureCache()
        if cache_b is None:
            cache_b = batch_engine.TableFeatureCache()
        column_a = cache_a.column(self.attribute)
        column_b = cache_b.column(self.attribute)
        values = self.batch_compute(column_a, records_a, column_b, records_b)
        missing = column_a.missing_mask(records_a, records_b, column_b)
        if missing.any():
            values[missing] = math.nan
        return values


class FeatureLibrary:
    """An ordered collection of features with name-based lookup."""

    def __init__(self, features: Sequence[Feature]) -> None:
        if not features:
            raise FeatureError("feature library must not be empty")
        self._features = tuple(features)
        self._by_name = {feature.name: feature for feature in self._features}
        if len(self._by_name) != len(self._features):
            raise FeatureError("duplicate feature names in library")

    @property
    def features(self) -> tuple[Feature, ...]:
        return self._features

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(feature.name for feature in self._features)

    @property
    def costs(self) -> tuple[float, ...]:
        return tuple(feature.cost for feature in self._features)

    def __len__(self) -> int:
        return len(self._features)

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._features)

    def __getitem__(self, name: str) -> Feature:
        try:
            return self._by_name[name]
        except KeyError:
            raise FeatureError(f"unknown feature {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


# Relative compute costs per measure (arbitrary units; used only to rank
# blocking rules by how cheap they are to apply at A x B scale).
_MEASURE_COSTS: Mapping[str, float] = {
    "exact": 1.0,
    "abs_diff": 1.0,
    "rel_diff": 1.0,
    "jaccard_word": 3.0,
    "jaccard_qgram": 4.0,
    "overlap": 3.0,
    "jaro_winkler": 4.0,
    "levenshtein": 6.0,
    "cosine_tfidf": 5.0,
    "monge_elkan": 8.0,
    # Extended measures (opt-in via build_feature_library(extended=True)).
    "containment": 3.0,
    "prefix": 1.0,
    "soundex": 3.0,
    "smith_waterman": 7.0,
}


def _string_measures(idf: Mapping[str, float]) -> dict[str, Callable[[object, object], float]]:
    return {
        "exact": sim.exact_match,
        "levenshtein": lambda a, b: sim.levenshtein_similarity(str(a), str(b)),
        "jaro_winkler": lambda a, b: sim.jaro_winkler(str(a), str(b)),
        "jaccard_qgram": lambda a, b: sim.jaccard(_qgrams3(str(a)), _qgrams3(str(b))),
    }


def _text_measures(idf: Mapping[str, float]) -> dict[str, Callable[[object, object], float]]:
    return {
        "jaccard_word": lambda a, b: sim.jaccard(_tokens(str(a)), _tokens(str(b))),
        "overlap": lambda a, b: sim.overlap_coefficient(
            _tokens(str(a)), _tokens(str(b))
        ),
        "cosine_tfidf": lambda a, b: sim.cosine_tfidf(
            _tokens(str(a)), _tokens(str(b)), idf
        ),
        "monge_elkan": lambda a, b: sim.monge_elkan(str(a), str(b)),
    }


def _numeric_measures() -> dict[str, Callable[[object, object], float]]:
    return {
        "exact": sim.exact_match,
        "abs_diff": lambda a, b: sim.abs_diff(float(a), float(b)),
        "rel_diff": lambda a, b: sim.rel_diff(float(a), float(b)),
    }


def build_feature_library(table_a: Table, table_b: Table,
                          extended: bool = False) -> FeatureLibrary:
    """Generate all applicable features for the shared schema of A and B.

    TF/IDF weights are fit over the union of both tables' values for each
    text attribute, so cosine features see corpus-wide term rarity.
    ``extended=True`` adds the measures from
    :mod:`repro.features.extended` (containment, prefix, Soundex,
    Smith-Waterman) — useful on code-heavy or phonetically noisy data at
    extra vectorization cost.

    Raises :class:`FeatureError` if the two schemas differ.
    """
    if table_a.schema != table_b.schema:
        raise FeatureError(
            "tables must share a schema "
            f"({table_a.schema!r} != {table_b.schema!r})"
        )
    from . import extended as ext

    features: list[Feature] = []
    for attr in table_a.schema:
        idf: dict[str, float] | None = None
        if attr.attr_type is AttrType.NUMERIC:
            measures = _numeric_measures()
        else:
            documents = [
                word_tokens(str(value))
                for table in (table_a, table_b)
                for record in table
                if (value := record.get(attr.name)) is not None
            ]
            idf = sim.build_idf(documents)
            if attr.attr_type is AttrType.TEXT:
                measures = _text_measures(idf)
                if extended:
                    measures["containment"] = (
                        lambda a, b: ext.containment(_tokens(str(a)),
                                                     _tokens(str(b)))
                    )
                    measures["soundex"] = (
                        lambda a, b: ext.soundex_similarity(str(a), str(b))
                    )
            else:
                measures = _string_measures(idf)
                # Multi-word short strings (e.g. names) also benefit from a
                # token-level view.
                measures["jaccard_word"] = (
                    lambda a, b: sim.jaccard(_tokens(str(a)), _tokens(str(b)))
                )
                if extended:
                    measures["prefix"] = (
                        lambda a, b: ext.prefix_similarity(str(a), str(b))
                    )
                    measures["smith_waterman"] = (
                        lambda a, b: ext.smith_waterman(str(a), str(b))
                    )
        for measure, fn in measures.items():
            features.append(Feature(
                name=f"{attr.name}_{measure}",
                attribute=attr.name,
                measure=measure,
                cost=_MEASURE_COSTS[measure],
                compute=fn,
                batch_compute=batch_engine.kernel_for(
                    measure, attr.attr_type, idf=idf
                ),
            ))
    return FeatureLibrary(features)
