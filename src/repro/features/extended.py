"""Extended similarity measures beyond the paper's named set.

The paper's feature library is explicitly open-ended ("Example features
include...", §4.1); these are the next measures a practitioner reaches
for.  They are *not* registered in the default library (keeping default
vectorization cost at the paper's level) — pass ``extended=True`` to
:func:`repro.features.library.build_feature_library` to include the
cheap ones, or use them directly.
"""

from __future__ import annotations

from .tokenize import normalize, word_tokens


def containment(tokens_a: list[str] | tuple[str, ...],
                tokens_b: list[str] | tuple[str, ...]) -> float:
    """|A ∩ B| / |A|: how much of record A's content appears in B.

    Asymmetric by nature (useful when one source truncates); we return
    the max of both directions so the feature stays symmetric.  Both
    sides empty counts as identical.
    """
    set_a, set_b = set(tokens_a), set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    return max(intersection / len(set_a), intersection / len(set_b))


def prefix_similarity(s: str, t: str, length: int = 4) -> float:
    """Fraction of the first ``length`` characters that agree.

    Cheap and surprisingly effective on codes and model numbers whose
    discriminating content is front-loaded.
    """
    s, t = normalize(s), normalize(t)
    if not s and not t:
        return 1.0
    window = min(length, max(len(s), len(t)))
    if window == 0:
        return 1.0
    agree = sum(
        1 for i in range(window)
        if i < len(s) and i < len(t) and s[i] == t[i]
    )
    return agree / window


def longest_common_substring_ratio(s: str, t: str) -> float:
    """len(LCS(s, t)) / max(len(s), len(t)) on normalized strings."""
    s, t = normalize(s), normalize(t)
    if not s and not t:
        return 1.0
    if not s or not t:
        return 0.0
    longest = 0
    previous = [0] * (len(t) + 1)
    for cs in s:
        current = [0]
        for j, ct in enumerate(t, start=1):
            length = previous[j - 1] + 1 if cs == ct else 0
            current.append(length)
            if length > longest:
                longest = length
        previous = current
    return longest / max(len(s), len(t))


def smith_waterman(s: str, t: str, match: float = 2.0,
                   mismatch: float = -1.0, gap: float = -1.0) -> float:
    """Normalized Smith-Waterman local-alignment similarity in [0, 1].

    The raw best local-alignment score is divided by its maximum
    attainable value (``match * min(len(s), len(t))``), giving 1.0 when
    the shorter string aligns perfectly inside the longer one.
    """
    s, t = normalize(s), normalize(t)
    if not s and not t:
        return 1.0
    if not s or not t:
        return 0.0
    best = 0.0
    previous = [0.0] * (len(t) + 1)
    for cs in s:
        current = [0.0]
        for j, ct in enumerate(t, start=1):
            score = max(
                0.0,
                previous[j - 1] + (match if cs == ct else mismatch),
                previous[j] + gap,
                current[j - 1] + gap,
            )
            current.append(score)
            if score > best:
                best = score
        previous = current
    return best / (match * min(len(s), len(t)))


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """The classic American Soundex code of one word (e.g. 'R163').

    Empty/non-alphabetic input yields an empty code.
    """
    word = "".join(ch for ch in word.lower() if ch.isalpha())
    if not word:
        return ""
    first = word[0].upper()
    encoded = []
    previous_code = _SOUNDEX_CODES.get(word[0], "")
    for ch in word[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != previous_code:
            encoded.append(code)
        if ch not in "hw":  # h/w do not reset the previous code
            previous_code = code
        if len(encoded) == 3:
            break
    return (first + "".join(encoded)).ljust(4, "0")


def soundex_similarity(s: str, t: str) -> float:
    """Fraction of words in the shorter string with a Soundex-equal
    partner in the other (a crude phonetic Monge-Elkan)."""
    words_s, words_t = word_tokens(s), word_tokens(t)
    if not words_s and not words_t:
        return 1.0
    if not words_s or not words_t:
        return 0.0
    codes_t = {soundex(word) for word in words_t}
    codes_s = {soundex(word) for word in words_s}
    shorter, other = (
        (codes_s, codes_t) if len(codes_s) <= len(codes_t)
        else (codes_t, codes_s)
    )
    hits = sum(1 for code in shorter if code in other)
    return hits / len(shorter)
