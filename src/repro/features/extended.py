"""Extended similarity measures beyond the paper's named set.

The paper's feature library is explicitly open-ended ("Example features
include...", §4.1); these are the next measures a practitioner reaches
for.  They are *not* registered in the default library (keeping default
vectorization cost at the paper's level) — pass ``extended=True`` to
:func:`repro.features.library.build_feature_library` to include the
cheap ones, or use them directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .tokenize import normalize, word_tokens

__all__ = [
    "batch_smith_waterman",
    "containment",
    "longest_common_substring_ratio",
    "prefix_similarity",
    "smith_waterman",
    "soundex",
    "soundex_similarity",
]


def containment(tokens_a: list[str] | tuple[str, ...],
                tokens_b: list[str] | tuple[str, ...]) -> float:
    """|A ∩ B| / |A|: how much of record A's content appears in B.

    Asymmetric by nature (useful when one source truncates); we return
    the max of both directions so the feature stays symmetric.  Both
    sides empty counts as identical.
    """
    set_a, set_b = set(tokens_a), set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    return max(intersection / len(set_a), intersection / len(set_b))


def prefix_similarity(s: str, t: str, length: int = 4) -> float:
    """Fraction of the first ``length`` characters that agree.

    Cheap and surprisingly effective on codes and model numbers whose
    discriminating content is front-loaded.
    """
    s, t = normalize(s), normalize(t)
    if not s and not t:
        return 1.0
    window = min(length, max(len(s), len(t)))
    if window == 0:
        return 1.0
    agree = sum(
        1 for i in range(window)
        if i < len(s) and i < len(t) and s[i] == t[i]
    )
    return agree / window


def longest_common_substring_ratio(s: str, t: str) -> float:
    """len(LCS(s, t)) / max(len(s), len(t)) on normalized strings."""
    s, t = normalize(s), normalize(t)
    if not s and not t:
        return 1.0
    if not s or not t:
        return 0.0
    longest = 0
    previous = [0] * (len(t) + 1)
    for cs in s:
        current = [0]
        for j, ct in enumerate(t, start=1):
            length = previous[j - 1] + 1 if cs == ct else 0
            current.append(length)
            if length > longest:
                longest = length
        previous = current
    return longest / max(len(s), len(t))


def smith_waterman(s: str, t: str, match: float = 2.0,
                   mismatch: float = -1.0, gap: float = -1.0) -> float:
    """Normalized Smith-Waterman local-alignment similarity in [0, 1].

    The raw best local-alignment score is divided by its maximum
    attainable value (``match * min(len(s), len(t))``), giving 1.0 when
    the shorter string aligns perfectly inside the longer one.
    """
    s, t = normalize(s), normalize(t)
    if not s and not t:
        return 1.0
    if not s or not t:
        return 0.0
    best = 0.0
    previous = [0.0] * (len(t) + 1)
    for cs in s:
        current = [0.0]
        for j, ct in enumerate(t, start=1):
            score = max(
                0.0,
                previous[j - 1] + (match if cs == ct else mismatch),
                previous[j] + gap,
                current[j - 1] + gap,
            )
            current.append(score)
            if score > best:
                best = score
        previous = current
    return best / (match * min(len(s), len(t)))


def batch_smith_waterman(norms_a: Sequence[str],
                         norms_b: Sequence[str]) -> np.ndarray:
    """:func:`smith_waterman` (default scores) over pre-normalized pairs.

    One numpy DP row per unique pair, like the batched Levenshtein: the
    in-row gap dependency collapses to a prefix-maximum (the zero floor
    of cells never propagates, because a floored cell's decayed
    contribution downstream is negative and re-floored anyway).  All
    scores are small integer-valued doubles, so results are bit-identical
    to the scalar function.
    """
    from .similarity import _char_matrix, _dedup_pairs, _PAD_A, _PAD_B

    match, mismatch, gap = 2.0, -1.0, -1.0
    unique, index = _dedup_pairs(norms_a, norms_b)
    values = np.empty(len(unique), dtype=np.float64)

    hard: list[int] = []
    for slot, (s, t) in enumerate(unique):
        if not s and not t:
            values[slot] = 1.0
        elif not s or not t:
            values[slot] = 0.0
        else:
            hard.append(slot)

    if hard:
        strs_a = [unique[slot][0] for slot in hard]
        strs_b = [unique[slot][1] for slot in hard]
        len_a = np.array([len(s) for s in strs_a], dtype=np.int32)
        len_b = np.array([len(t) for t in strs_b], dtype=np.int32)
        width_a = int(len_a.max())
        width_b = int(len_b.max())
        chars_a = _char_matrix(strs_a, width_a, _PAD_A)
        chars_b = _char_matrix(strs_b, width_b, _PAD_B)

        offsets = np.arange(width_b + 1, dtype=np.float64)
        previous = np.zeros((len(hard), width_b + 1), dtype=np.float64)
        best = np.zeros(len(hard), dtype=np.float64)
        base = np.empty_like(previous)
        for i in range(1, width_a + 1):
            substitution = np.where(
                chars_a[:, i - 1:i] == chars_b, match, mismatch
            )
            base[:, 0] = -np.inf  # first column is always the zero floor
            np.maximum(previous[:, :-1] + substitution,
                       previous[:, 1:] + gap, out=base[:, 1:])
            current = np.maximum(
                np.maximum.accumulate(base + offsets, axis=1) - offsets,
                0.0,
            )
            # Padded cells only ever decay from real cells, so the row
            # maximum over the padded width equals the in-bounds maximum.
            np.maximum(best, current.max(axis=1), out=best)
            previous = current
        values[hard] = best / (match * np.minimum(len_a, len_b))

    return values[index]


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """The classic American Soundex code of one word (e.g. 'R163').

    Empty/non-alphabetic input yields an empty code.
    """
    word = "".join(ch for ch in word.lower() if ch.isalpha())
    if not word:
        return ""
    first = word[0].upper()
    encoded = []
    previous_code = _SOUNDEX_CODES.get(word[0], "")
    for ch in word[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != previous_code:
            encoded.append(code)
        if ch not in "hw":  # h/w do not reset the previous code
            previous_code = code
        if len(encoded) == 3:
            break
    return (first + "".join(encoded)).ljust(4, "0")


def soundex_similarity(s: str, t: str) -> float:
    """Fraction of words in the shorter string with a Soundex-equal
    partner in the other (a crude phonetic Monge-Elkan)."""
    words_s, words_t = word_tokens(s), word_tokens(t)
    if not words_s and not words_t:
        return 1.0
    if not words_s or not words_t:
        return 0.0
    codes_t = {soundex(word) for word in words_t}
    codes_s = {soundex(word) for word in words_s}
    shorter, other = (
        (codes_s, codes_t) if len(codes_s) <= len(codes_t)
        else (codes_t, codes_s)
    )
    hits = sum(1 for code in shorter if code in other)
    return hits / len(shorter)
