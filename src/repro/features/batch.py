"""Batched feature evaluation: the blocking/vectorization hot-path engine.

Corleone's §4.3 rule-application step streams all of A x B through the
blocking rules — the paper's only Hadoop-scale component.  Evaluating
features with a per-pair, per-feature Python loop makes that path (and
every :func:`repro.features.vectorize.vectorize_pairs` call feeding the
matcher, estimator and locator) the dominant cost of a run.  This module
is the batch-first substrate underneath
:meth:`repro.features.library.Feature.batch_value`:

* :class:`PreparedColumn` caches *per-record* derived values — normalized
  strings, word/q-gram token sets, interned word-id arrays, TF/IDF weight
  vectors, Soundex code sets — so tokenization happens once per record
  instead of once per pair;
* :class:`TableFeatureCache` holds one :class:`PreparedColumn` per
  attribute of a :class:`~repro.data.table.Table`, shared across chunks
  and features (obtained via :func:`table_cache`, keyed weakly by table);
* :func:`kernel_for` maps every library measure to a batch kernel that
  evaluates whole pair-columns at once — pure numpy for numeric measures
  and the DP string measures (Levenshtein, Jaro-Winkler, Smith-Waterman),
  set arithmetic over precomputed token sets for the Jaccard family, and
  an interned word-pair matrix for Monge-Elkan.

Every kernel returns exactly the values the scalar ``Feature.value``
path produces — the scalar loop remains both the fallback (for features
without a kernel) and the parity oracle the test suite checks batch
results against, bit for bit (including NaN positions).
"""

from __future__ import annotations

import math
import weakref
from collections import Counter
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from ..data.table import AttrType, Record, Table
from . import extended as ext
from . import similarity as sim
from .tokenize import normalize, qgrams, word_tokens

BatchKernel = Callable[
    ["PreparedColumn", Sequence[Record], "PreparedColumn", Sequence[Record]],
    np.ndarray,
]
"""A measure evaluated column-wise: (prepared_a, records_a, prepared_b,
records_b) -> float64 array aligned with the record lists.  Kernels do
not handle missing values — ``Feature.batch_value`` masks them to NaN."""


# ----------------------------------------------------------------------
# Cache-miss accounting
# ----------------------------------------------------------------------

_CACHE_MISSES: "Counter[str]" = Counter()
"""Prepared-column cache misses by accessor kind, process-lifetime.

``tfidf_table`` counts whole TF/IDF weight-table (re)builds — the
legacy per-rule waste the plan compiler exists to remove: tables are
keyed by idf-mapping *identity*, so two kernels built over the same
column but through different ``kernel_for`` calls silently recompute
every weight vector.  Like the wall-clock profiler, these counters
depend on process-lifetime cache warmth (a replayed run hits where the
first run missed), so they are deliberately NOT part of the
checkpointed metrics registry — read them via :func:`cache_stats`
(``make bench-plan`` records them before/after in BENCH_plan.json).
"""


def _note_misses(kind: str, count: int) -> None:
    """Record ``count`` cache misses for one accessor kind."""
    if count > 0:
        _CACHE_MISSES[kind] += count


def cache_stats() -> dict[str, int]:
    """A snapshot of the process-lifetime cache-miss counters."""
    return dict(_CACHE_MISSES)


def reset_cache_stats() -> None:
    """Zero the cache-miss counters (benchmark harness hook)."""
    _CACHE_MISSES.clear()


# ----------------------------------------------------------------------
# Word interning (shared by the Monge-Elkan kernel)
# ----------------------------------------------------------------------

_WORD_IDS: dict[str, int] = {}
_WORDS: list[str] = []

_JW_BY_KEY: dict[int, float] = {}
"""(id_a << 32 | id_b) -> word-level Jaro-Winkler.  Bounded by the square
of the co-occurring vocabulary, which real tables keep modest."""


def _intern_word(word: str) -> int:
    word_id = _WORD_IDS.get(word)
    if word_id is None:
        word_id = len(_WORDS)
        _WORD_IDS[word] = word_id
        _WORDS.append(word)
    return word_id


# ----------------------------------------------------------------------
# Per-record prepared values
# ----------------------------------------------------------------------


class PreparedColumn:
    """Record-level derived values for one attribute of one table.

    Every accessor takes the (pair-aligned) record list and returns an
    aligned list/array of prepared values, memoized per ``record_id`` —
    lazily, so records added to a table after the cache was created are
    still picked up.  Missing values map to neutral empties ("" / empty
    set); callers mask them to NaN afterwards.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._missing: dict[str, bool] = {}
        self._numbers: dict[str, float] = {}
        self._norms: dict[str, str] = {}
        self._tokens: dict[str, tuple[str, ...]] = {}
        self._token_sets: dict[str, frozenset[str]] = {}
        self._qgram_sets: dict[str, frozenset[str]] = {}
        self._word_ids: dict[str, np.ndarray] = {}
        self._soundex: dict[str, frozenset[str]] = {}
        # id(idf) -> (idf, default_idf, record_id -> (weights, norm)).
        self._tfidf: dict[int, tuple] = {}

    def missing_flags(self, records: Sequence[Record]) -> list[bool]:
        """Whether each record's attribute value is None, memoized."""
        memo = self._missing
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        attribute = self.attribute
        out = []
        for record in records:
            value = memo.get(record.record_id)
            if value is None:
                value = record.get(attribute) is None
                memo[record.record_id] = value
            out.append(value)
        _note_misses("missing_flags", len(memo) - before)
        return out

    def missing_mask(self, records_a: Sequence[Record],
                     records_b: Sequence[Record],
                     other: "PreparedColumn") -> np.ndarray:
        """Pair-aligned bool mask: True where either side is missing."""
        return (np.array(self.missing_flags(records_a), dtype=bool)
                | np.array(other.missing_flags(records_b), dtype=bool))

    def numbers(self, records: Sequence[Record]) -> np.ndarray:
        """Float values per record (NaN where missing), memoized."""
        memo = self._numbers
        try:
            return np.array([memo[record.record_id] for record in records],
                            dtype=np.float64)
        except KeyError:
            pass
        before = len(memo)
        attribute = self.attribute
        out = []
        for record in records:
            value = memo.get(record.record_id)
            if value is None:
                raw = record.get(attribute)
                value = math.nan if raw is None else float(raw)
                memo[record.record_id] = value
            out.append(value)
        _note_misses("numbers", len(memo) - before)
        return np.array(out, dtype=np.float64)

    def raw(self, records: Sequence[Record]) -> list:
        """The raw attribute value per record (None where missing)."""
        attribute = self.attribute
        return [record.get(attribute) for record in records]

    def norms(self, records: Sequence[Record]) -> list[str]:
        """Normalized string per record ("" where missing), memoized."""
        memo, attribute = self._norms, self.attribute
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        out = []
        for record in records:
            value = memo.get(record.record_id)
            if value is None:
                raw = record.get(attribute)
                value = "" if raw is None else normalize(str(raw))
                memo[record.record_id] = value
            out.append(value)
        _note_misses("norms", len(memo) - before)
        return out

    def tokens(self, records: Sequence[Record]) -> list[tuple[str, ...]]:
        """Word-token tuple per record (empty where missing), memoized."""
        memo, attribute = self._tokens, self.attribute
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        out = []
        for record in records:
            value = memo.get(record.record_id)
            if value is None:
                raw = record.get(attribute)
                value = (() if raw is None
                         else tuple(word_tokens(str(raw))))
                memo[record.record_id] = value
            out.append(value)
        _note_misses("tokens", len(memo) - before)
        return out

    def token_sets(self, records: Sequence[Record]) -> list[frozenset[str]]:
        """Word-token frozenset per record, memoized."""
        memo = self._token_sets
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        tokens = self.tokens(records)
        out = []
        for record, toks in zip(records, tokens):
            value = memo.get(record.record_id)
            if value is None:
                value = frozenset(toks)
                memo[record.record_id] = value
            out.append(value)
        _note_misses("token_sets", len(memo) - before)
        return out

    def qgram_sets(self, records: Sequence[Record]) -> list[frozenset[str]]:
        """3-gram frozenset per record, memoized."""
        memo, attribute = self._qgram_sets, self.attribute
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        out = []
        for record in records:
            value = memo.get(record.record_id)
            if value is None:
                raw = record.get(attribute)
                value = (frozenset() if raw is None
                         else frozenset(qgrams(str(raw), 3)))
                memo[record.record_id] = value
            out.append(value)
        _note_misses("qgram_sets", len(memo) - before)
        return out

    def word_id_arrays(self, records: Sequence[Record]) -> list[np.ndarray]:
        """Interned word-id int64 array per record, memoized."""
        memo = self._word_ids
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        tokens = self.tokens(records)
        out = []
        for record, toks in zip(records, tokens):
            value = memo.get(record.record_id)
            if value is None:
                value = np.fromiter(
                    (_intern_word(word) for word in toks),
                    dtype=np.int64, count=len(toks),
                )
                memo[record.record_id] = value
            out.append(value)
        _note_misses("word_id_arrays", len(memo) - before)
        return out

    def soundex_sets(self, records: Sequence[Record]) -> list[frozenset[str]]:
        """Soundex-code frozenset per record's words, memoized."""
        memo = self._soundex
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        tokens = self.tokens(records)
        out = []
        for record, toks in zip(records, tokens):
            value = memo.get(record.record_id)
            if value is None:
                value = frozenset(ext.soundex(word) for word in toks)
                memo[record.record_id] = value
            out.append(value)
        _note_misses("soundex_sets", len(memo) - before)
        return out

    def tfidf_weights(self, records: Sequence[Record],
                      idf: Mapping[str, float]) -> list[tuple[dict, float]]:
        """Per-record (token -> tf*idf weights, norm), memoized per idf.

        Weight dicts are built exactly as the scalar
        :func:`repro.features.similarity.cosine_tfidf` builds them, so
        the per-pair dot product reproduces its result bit for bit.
        """
        entry = self._tfidf.get(id(idf))
        if entry is None:
            # A fresh idf mapping (even one equal to an already-cached
            # mapping) starts an empty weight table: every record's
            # weights will be recomputed.  This is the per-rule rebuild
            # the cache-miss counters make visible.
            _note_misses("tfidf_table", 1)
            default_idf = (max(idf.values()) + 1.0) if idf else 1.0
            entry = (idf, default_idf, {})
            self._tfidf[id(idf)] = entry
        _, default_idf, memo = entry
        try:
            return [memo[record.record_id] for record in records]
        except KeyError:
            pass
        before = len(memo)
        tokens = self.tokens(records)
        out = []
        for record, toks in zip(records, tokens):
            value = memo.get(record.record_id)
            if value is None:
                counts = Counter(toks)
                weights = {
                    token: count * idf.get(token, default_idf)
                    for token, count in counts.items()
                }
                norm = math.sqrt(sum(v * v for v in weights.values()))
                value = (weights, norm)
                memo[record.record_id] = value
            out.append(value)
        _note_misses("tfidf_weights", len(memo) - before)
        return out


class TableFeatureCache:
    """One :class:`PreparedColumn` per attribute, for one table's records.

    Caches are keyed by ``record_id``, so a cache must only ever be used
    with records of the table it was created for — obtain instances via
    :func:`table_cache`, which enforces that by construction.
    """

    def __init__(self) -> None:
        self._columns: dict[str, PreparedColumn] = {}

    def column(self, attribute: str) -> PreparedColumn:
        """The (lazily created) prepared column for ``attribute``."""
        column = self._columns.get(attribute)
        if column is None:
            column = PreparedColumn(attribute)
            self._columns[attribute] = column
        return column


_TABLE_CACHES: "weakref.WeakKeyDictionary[Table, TableFeatureCache]" = (
    weakref.WeakKeyDictionary()
)


def table_cache(table: Table) -> TableFeatureCache:
    """The shared feature cache of ``table`` (created on first use)."""
    cache = _TABLE_CACHES.get(table)
    if cache is None:
        cache = TableFeatureCache()
        _TABLE_CACHES[table] = cache
    return cache


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------


def _exact_numeric(col_a, records_a, col_b, records_b):
    return (col_a.numbers(records_a)
            == col_b.numbers(records_b)).astype(np.float64)


def _exact_string(col_a, records_a, col_b, records_b):
    norms_a = col_a.norms(records_a)
    norms_b = col_b.norms(records_b)
    return np.fromiter(
        (1.0 if a == b else 0.0 for a, b in zip(norms_a, norms_b)),
        dtype=np.float64, count=len(norms_a),
    )


def _abs_diff(col_a, records_a, col_b, records_b):
    return np.abs(col_a.numbers(records_a) - col_b.numbers(records_b))


def _rel_diff(col_a, records_a, col_b, records_b):
    a = col_a.numbers(records_a)
    b = col_b.numbers(records_b)
    denominator = np.maximum(np.abs(a), np.abs(b))
    with np.errstate(invalid="ignore", divide="ignore"):
        # corlint: disable-next-line=CL004 — exact-zero division guard
        return np.where(denominator == 0.0, 0.0,
                        np.abs(a - b) / denominator)


def _jaccard_over(sets_of):
    def kernel(col_a, records_a, col_b, records_b):
        sets_a = sets_of(col_a, records_a)
        sets_b = sets_of(col_b, records_b)
        out = np.empty(len(sets_a), dtype=np.float64)
        for i, (sa, sb) in enumerate(zip(sets_a, sets_b)):
            if not sa and not sb:
                out[i] = 1.0
            else:
                intersection = len(sa & sb)
                out[i] = intersection / (len(sa) + len(sb) - intersection)
        return out
    return kernel


_jaccard_word = _jaccard_over(lambda col, recs: col.token_sets(recs))
_jaccard_qgram = _jaccard_over(lambda col, recs: col.qgram_sets(recs))


def _overlap(col_a, records_a, col_b, records_b):
    sets_a = col_a.token_sets(records_a)
    sets_b = col_b.token_sets(records_b)
    out = np.empty(len(sets_a), dtype=np.float64)
    for i, (sa, sb) in enumerate(zip(sets_a, sets_b)):
        if not sa and not sb:
            out[i] = 1.0
        else:
            smaller = min(len(sa), len(sb))
            out[i] = len(sa & sb) / smaller if smaller else 0.0
    return out


def _containment(col_a, records_a, col_b, records_b):
    sets_a = col_a.token_sets(records_a)
    sets_b = col_b.token_sets(records_b)
    out = np.empty(len(sets_a), dtype=np.float64)
    for i, (sa, sb) in enumerate(zip(sets_a, sets_b)):
        if not sa and not sb:
            out[i] = 1.0
        elif not sa or not sb:
            out[i] = 0.0
        else:
            intersection = len(sa & sb)
            out[i] = max(intersection / len(sa), intersection / len(sb))
    return out


def _levenshtein(col_a, records_a, col_b, records_b):
    return sim.batch_levenshtein_similarity(
        col_a.norms(records_a), col_b.norms(records_b)
    )


def _jaro_winkler(col_a, records_a, col_b, records_b):
    return sim.batch_jaro_winkler(
        col_a.norms(records_a), col_b.norms(records_b)
    )


def _smith_waterman(col_a, records_a, col_b, records_b):
    return ext.batch_smith_waterman(
        col_a.norms(records_a), col_b.norms(records_b)
    )


def _prefix(col_a, records_a, col_b, records_b):
    norms_a = col_a.norms(records_a)
    norms_b = col_b.norms(records_b)
    prefix = ext.prefix_similarity
    return np.fromiter(
        (prefix(a, b) for a, b in zip(norms_a, norms_b)),
        dtype=np.float64, count=len(norms_a),
    )


def _soundex(col_a, records_a, col_b, records_b):
    tokens_a = col_a.tokens(records_a)
    tokens_b = col_b.tokens(records_b)
    codes_a = col_a.soundex_sets(records_a)
    codes_b = col_b.soundex_sets(records_b)
    out = np.empty(len(tokens_a), dtype=np.float64)
    for i, (ta, tb, ca, cb) in enumerate(
            zip(tokens_a, tokens_b, codes_a, codes_b)):
        if not ta and not tb:
            out[i] = 1.0
        elif not ta or not tb:
            out[i] = 0.0
        else:
            shorter, other = (ca, cb) if len(ca) <= len(cb) else (cb, ca)
            hits = sum(1 for code in shorter if code in other)
            out[i] = hits / len(shorter)
    return out


def _make_cosine_tfidf(idf: Mapping[str, float]) -> BatchKernel:
    def kernel(col_a, records_a, col_b, records_b):
        pairs_a = col_a.tfidf_weights(records_a, idf)
        pairs_b = col_b.tfidf_weights(records_b, idf)
        out = np.empty(len(pairs_a), dtype=np.float64)
        for i, ((wa, norm_a), (wb, norm_b)) in enumerate(
                zip(pairs_a, pairs_b)):
            if not wa and not wb:
                out[i] = 1.0
            elif not wa or not wb:
                out[i] = 0.0
            # corlint: disable-next-line=CL004 — exact-zero guard
            elif norm_a == 0.0 or norm_b == 0.0:
                out[i] = 0.0
            else:
                dot = sum(wa[token] * wb[token]
                          for token in wa.keys() & wb.keys())
                out[i] = dot / (norm_a * norm_b)
        return out
    return kernel


# ----------------------------------------------------------------------
# Monge-Elkan over interned word-id matrices
# ----------------------------------------------------------------------

_MONGE_BLOCK_ELEMENTS = 1 << 22
"""Cap on elements of the (rows, words_a, words_b) value tensor per
block, bounding peak memory to ~32 MB regardless of chunk size."""


def _monge_elkan(col_a, records_a, col_b, records_b):
    ids_a = col_a.word_id_arrays(records_a)
    ids_b = col_b.word_id_arrays(records_b)
    out = np.empty(len(ids_a), dtype=np.float64)

    hard: list[int] = []
    for i, (wa, wb) in enumerate(zip(ids_a, ids_b)):
        if not wa.size and not wb.size:
            out[i] = 1.0
        elif not wa.size or not wb.size:
            out[i] = 0.0
        else:
            hard.append(i)

    start = 0
    while start < len(hard):
        # Grow the block until the padded tensor would exceed the cap.
        width_a = width_b = 0
        stop = start
        while stop < len(hard):
            row = hard[stop]
            next_a = max(width_a, ids_a[row].size)
            next_b = max(width_b, ids_b[row].size)
            if (stop > start
                    and (stop - start + 1) * next_a * next_b
                    > _MONGE_BLOCK_ELEMENTS):
                break
            width_a, width_b = next_a, next_b
            stop += 1
        block = hard[start:stop]
        _monge_elkan_block(
            [ids_a[row] for row in block],
            [ids_b[row] for row in block],
            width_a, width_b, block, out,
        )
        start = stop
    return out


def _monge_elkan_block(ids_a, ids_b, width_a, width_b, rows, out) -> None:
    n = len(ids_a)
    mat_a = np.full((n, width_a), -1, dtype=np.int64)
    mat_b = np.full((n, width_b), -1, dtype=np.int64)
    for i, ids in enumerate(ids_a):
        mat_a[i, :ids.size] = ids
    for i, ids in enumerate(ids_b):
        mat_b[i, :ids.size] = ids

    keys = (mat_a[:, :, None] << 32) | mat_b[:, None, :]
    valid = (mat_a[:, :, None] >= 0) & (mat_b[:, None, :] >= 0)
    flat = keys[valid]
    unique = np.unique(flat)

    cache = _JW_BY_KEY
    jw = sim._jaro_winkler_words
    lookup = np.empty(unique.size, dtype=np.float64)
    for i, key in enumerate(unique.tolist()):
        value = cache.get(key)
        if value is None:
            value = jw(_WORDS[key >> 32], _WORDS[key & 0xFFFFFFFF])
            cache[key] = value
        lookup[i] = value

    values = np.full(keys.shape, -np.inf)
    values[valid] = lookup[np.searchsorted(unique, flat)]
    best_ab = values.max(axis=2)  # (n, width_a): best partner per a-word
    best_ba = values.max(axis=1)  # (n, width_b): best partner per b-word

    # Means are summed sequentially in token order (plain Python adds,
    # not numpy's pairwise summation), exactly like the scalar
    # directed() loop, to keep bit parity.
    list_ab = best_ab.tolist()
    list_ba = best_ba.tolist()
    for i, row in enumerate(rows):
        size_a = ids_a[i].size
        size_b = ids_b[i].size
        total_ab = sum(list_ab[i][:size_a], 0.0)
        total_ba = sum(list_ba[i][:size_b], 0.0)
        out[row] = (total_ab / size_a + total_ba / size_b) / 2.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_KERNELS: dict[str, BatchKernel] = {
    "abs_diff": _abs_diff,
    "rel_diff": _rel_diff,
    "jaccard_word": _jaccard_word,
    "jaccard_qgram": _jaccard_qgram,
    "overlap": _overlap,
    "containment": _containment,
    "levenshtein": _levenshtein,
    "jaro_winkler": _jaro_winkler,
    "monge_elkan": _monge_elkan,
    "smith_waterman": _smith_waterman,
    "prefix": _prefix,
    "soundex": _soundex,
}


def kernel_for(measure: str, attr_type: AttrType,
               idf: Mapping[str, float] | None = None) -> BatchKernel | None:
    """The batch kernel for ``measure`` on an ``attr_type`` column.

    Returns None for measures without a batched implementation; those
    features fall back to the scalar ``value()`` loop.
    """
    if measure == "exact":
        return (_exact_numeric if attr_type is AttrType.NUMERIC
                else _exact_string)
    if measure == "cosine_tfidf":
        return _make_cosine_tfidf(idf if idf is not None else {})
    return _KERNELS.get(measure)
