"""Similarity measures from the paper's feature library (Section 4.1).

Edit distance, Jaccard, Jaro-Winkler, TF/IDF cosine and Monge-Elkan are the
measures the paper names explicitly; overlap coefficient and numeric
differences round out the library.  All similarity functions return values
in [0, 1] where 1 means identical, except the raw distance/difference
helpers which are documented individually.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Mapping, Sequence
from functools import lru_cache

import numpy as np

from .tokenize import normalize, word_tokens


def levenshtein_distance(s: str, t: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs).

    Runs in O(|s| * |t|) time and O(min) memory via two rolling rows.
    """
    if s == t:
        return 0
    if len(s) < len(t):
        s, t = t, s
    if not t:
        return len(s)
    previous = list(range(len(t) + 1))
    for i, cs in enumerate(s, start=1):
        current = [i]
        for j, ct in enumerate(t, start=1):
            current.append(min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + (cs != ct),  # substitution
            ))
        previous = current
    return previous[-1]


def levenshtein_similarity(s: str, t: str) -> float:
    """1 - distance / max_length, on normalized strings."""
    s, t = normalize(s), normalize(t)
    longest = max(len(s), len(t))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(s, t) / longest


def jaro(s: str, t: str) -> float:
    """Jaro similarity of two strings (0 = disjoint, 1 = identical)."""
    s, t = normalize(s), normalize(t)
    if s == t:
        return 1.0
    if not s or not t:
        return 0.0
    window = max(len(s), len(t)) // 2 - 1
    window = max(window, 0)

    s_flags = [False] * len(s)
    t_flags = [False] * len(t)
    matches = 0
    for i, ch in enumerate(s):
        low = max(0, i - window)
        high = min(len(t), i + window + 1)
        for j in range(low, high):
            if not t_flags[j] and t[j] == ch:
                s_flags[i] = t_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, flagged in enumerate(s_flags):
        if not flagged:
            continue
        while not t_flags[j]:
            j += 1
        if s[i] != t[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    m = matches
    return (m / len(s) + m / len(t) + (m - transpositions) / m) / 3.0


def jaro_winkler(s: str, t: str, prefix_weight: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    base = jaro(s, t)
    s_n, t_n = normalize(s), normalize(t)
    prefix = 0
    for cs, ct in zip(s_n, t_n):
        if cs != ct or prefix == max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def jaccard(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
    """Jaccard similarity of two token multisets' supports.

    Defined as 1.0 when both token sets are empty (two empty strings are
    identical for matching purposes).
    """
    set_a, set_b = set(tokens_a), set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union


def overlap_coefficient(tokens_a: Sequence[str],
                        tokens_b: Sequence[str]) -> float:
    """|A ∩ B| / min(|A|, |B|); 1.0 when either side is empty-and-equal."""
    set_a, set_b = set(tokens_a), set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller


@lru_cache(maxsize=1 << 18)
def _jaro_winkler_words(a: str, b: str) -> float:
    """Cached word-level Jaro-Winkler for Monge-Elkan's inner loop.

    Real tables draw words from a modest vocabulary, so the cache turns
    Monge-Elkan from the most expensive library feature into one of the
    cheapest after warm-up.
    """
    return jaro_winkler(a, b)


def monge_elkan(s: str, t: str) -> float:
    """Monge-Elkan: mean best Jaro-Winkler match of each word of s in t.

    The measure is asymmetric in general; we symmetrize by averaging both
    directions, which is the common practice for EM feature libraries.
    """
    words_s, words_t = word_tokens(s), word_tokens(t)
    if not words_s and not words_t:
        return 1.0
    if not words_s or not words_t:
        return 0.0

    def directed(ws: list[str], wt: list[str]) -> float:
        total = 0.0
        for a in ws:
            total += max(_jaro_winkler_words(a, b) for b in wt)
        return total / len(ws)

    return (directed(words_s, words_t) + directed(words_t, words_s)) / 2.0


def cosine_tfidf(tokens_a: Sequence[str], tokens_b: Sequence[str],
                 idf: Mapping[str, float]) -> float:
    """TF/IDF-weighted cosine similarity of two token lists.

    ``idf`` maps tokens to inverse-document-frequency weights computed over
    the corpus (both tables) by the feature library.  Unknown tokens get
    the maximum observed idf + 1 (they are maximally discriminative).
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    default_idf = (max(idf.values()) + 1.0) if idf else 1.0

    def weights(tokens: Sequence[str]) -> dict[str, float]:
        counts = Counter(tokens)
        return {
            token: count * idf.get(token, default_idf)
            for token, count in counts.items()
        }

    wa, wb = weights(tokens_a), weights(tokens_b)
    dot = sum(wa[token] * wb[token] for token in wa.keys() & wb.keys())
    norm_a = math.sqrt(sum(v * v for v in wa.values()))
    norm_b = math.sqrt(sum(v * v for v in wb.values()))
    # corlint: disable-next-line=CL004 — exact-zero division guard
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def exact_match(a: object, b: object) -> float:
    """1.0 if the normalized values are equal, else 0.0.

    Strings are compared after :func:`normalize`; other values compare
    with ``==``.
    """
    if isinstance(a, str) and isinstance(b, str):
        return 1.0 if normalize(a) == normalize(b) else 0.0
    return 1.0 if a == b else 0.0


def abs_diff(a: float, b: float) -> float:
    """Absolute difference of two numbers (a raw distance, not in [0,1])."""
    return abs(a - b)


def rel_diff(a: float, b: float) -> float:
    """Relative difference |a-b| / max(|a|, |b|); 0.0 when both are 0."""
    denominator = max(abs(a), abs(b))
    # corlint: disable-next-line=CL004 — exact-zero division guard
    if denominator == 0.0:
        return 0.0
    return abs(a - b) / denominator


# ----------------------------------------------------------------------
# Batched variants (the §4.3 hot-path substrate)
#
# Each batch function evaluates one measure over whole columns of pairs at
# once and returns exactly the values the scalar function above would —
# the scalar path is the parity oracle, and tests assert bit-identical
# matrices.  Inputs are *pre-normalized* strings (normalize() is
# idempotent, so the scalar functions agree on them); tokenization and
# normalization are hoisted out by repro.features.batch so they happen
# once per record instead of once per pair.
# ----------------------------------------------------------------------

# Pad codes for character matrices.  Distinct negative values on the two
# sides guarantee a padded cell never compares equal to anything.
_PAD_A = -2
_PAD_B = -1


def _char_matrix(strings: Sequence[str], width: int, pad: int) -> np.ndarray:
    """Stack strings into an (n, width) int32 code-point matrix."""
    out = np.full((len(strings), max(width, 1)), pad, dtype=np.int32)
    for row, text in enumerate(strings):
        if text:
            out[row, :len(text)] = np.frombuffer(
                text.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int32)
    return out


def _dedup_pairs(strings_a: Sequence[str], strings_b: Sequence[str],
                 ) -> tuple[list[tuple[str, str]], np.ndarray]:
    """Unique (a, b) string pairs plus the pair index of every row.

    Cartesian chunks repeat values heavily (every record of A meets every
    record of B, and low-cardinality columns such as brands repeat across
    records), so computing each distinct pair once is a large win.
    """
    first: dict[tuple[str, str], int] = {}
    unique: list[tuple[str, str]] = []
    index = np.empty(len(strings_a), dtype=np.intp)
    for row, key in enumerate(zip(strings_a, strings_b)):
        slot = first.get(key)
        if slot is None:
            slot = len(unique)
            first[key] = slot
            unique.append(key)
        index[row] = slot
    return unique, index


def batch_levenshtein_similarity(norms_a: Sequence[str],
                                 norms_b: Sequence[str]) -> np.ndarray:
    """``levenshtein_similarity`` over pre-normalized string pairs.

    The classic DP runs across the whole (deduplicated) batch at once:
    one numpy row per unique pair, iterating over character positions of
    the longer side.  The sequential-insertion dependency inside a DP row
    is resolved with the prefix-minimum identity
    ``c[j] = min_k<=j (base[k] + (j - k))``, so every step is a handful of
    vector operations.  Integer arithmetic throughout — results are
    bit-identical to the scalar function.
    """
    unique, index = _dedup_pairs(norms_a, norms_b)
    values = np.empty(len(unique), dtype=np.float64)

    hard: list[int] = []
    for slot, (s, t) in enumerate(unique):
        longest = max(len(s), len(t))
        if longest == 0:
            values[slot] = 1.0
        elif s == t:
            values[slot] = 1.0
        elif not s or not t:
            values[slot] = 0.0  # distance == longest exactly
        else:
            hard.append(slot)

    if hard:
        strs_a = [unique[slot][0] for slot in hard]
        strs_b = [unique[slot][1] for slot in hard]
        len_a = np.array([len(s) for s in strs_a], dtype=np.int32)
        len_b = np.array([len(t) for t in strs_b], dtype=np.int32)
        width_a = int(len_a.max())
        width_b = int(len_b.max())
        chars_a = _char_matrix(strs_a, width_a, _PAD_A)
        chars_b = _char_matrix(strs_b, width_b, _PAD_B)

        offsets = np.arange(width_b + 1, dtype=np.int32)
        previous = np.tile(offsets, (len(hard), 1))
        distance = np.empty(len(hard), dtype=np.int32)
        base = np.empty_like(previous)
        for i in range(1, width_a + 1):
            cost = (chars_a[:, i - 1:i] != chars_b).astype(np.int32)
            base[:, 0] = i
            np.minimum(previous[:, 1:] + 1, previous[:, :-1] + cost,
                       out=base[:, 1:])
            current = np.minimum.accumulate(base - offsets, axis=1) + offsets
            finished = len_a == i
            if finished.any():
                rows = np.flatnonzero(finished)
                distance[rows] = current[rows, len_b[rows]]
            previous = current
        longest = np.maximum(len_a, len_b).astype(np.float64)
        values[hard] = 1.0 - distance / longest

    return values[index]


def batch_jaro_winkler(norms_a: Sequence[str],
                       norms_b: Sequence[str]) -> np.ndarray:
    """``jaro_winkler`` over pre-normalized string pairs, vectorized.

    The greedy matching pass iterates over character positions (a few
    dozen at most for STRING attributes) with all pairs advanced in lock
    step; flags, match counts and transpositions live in numpy arrays.
    Matching order, transposition counting and the Winkler prefix boost
    replicate the scalar implementation exactly.
    """
    unique, index = _dedup_pairs(norms_a, norms_b)
    values = np.empty(len(unique), dtype=np.float64)

    hard: list[int] = []
    for slot, (s, t) in enumerate(unique):
        if s == t:
            # jaro() == 1.0, and the prefix boost adds 0.
            values[slot] = 1.0
        elif not s or not t:
            values[slot] = 0.0
        else:
            hard.append(slot)

    if hard:
        strs_a = [unique[slot][0] for slot in hard]
        strs_b = [unique[slot][1] for slot in hard]
        values[hard] = _jaro_winkler_block(strs_a, strs_b)

    return values[index]


def _jaro_winkler_block(strs_a: Sequence[str],
                        strs_b: Sequence[str]) -> np.ndarray:
    """Vectorized Jaro-Winkler for non-trivial, non-empty string pairs."""
    n = len(strs_a)
    len_a = np.array([len(s) for s in strs_a], dtype=np.int32)
    len_b = np.array([len(t) for t in strs_b], dtype=np.int32)
    width_a = int(len_a.max())
    width_b = int(len_b.max())
    chars_a = _char_matrix(strs_a, width_a, _PAD_A)
    chars_b = _char_matrix(strs_b, width_b, _PAD_B)
    window = np.maximum(np.maximum(len_a, len_b) // 2 - 1, 0)
    max_window = int(window.max())

    flags_a = np.zeros((n, width_a), dtype=bool)
    flags_b = np.zeros((n, width_b), dtype=bool)
    matches = np.zeros(n, dtype=np.int32)
    for i in range(width_a):
        # Greedy first-fit inside each row's window, scanning j ascending
        # exactly like the scalar loop; `open_rows` drops a row once its
        # position i has found a partner (or has no character there).
        open_rows = i < len_a
        low = max(0, i - max_window)
        high = min(width_b, i + max_window + 1)
        for j in range(low, high):
            if not open_rows.any():
                break
            candidates = (
                open_rows
                & (j >= i - window) & (j <= i + window) & (j < len_b)
                & ~flags_b[:, j]
                & (chars_b[:, j] == chars_a[:, i])
            )
            if candidates.any():
                flags_b[candidates, j] = True
                flags_a[candidates, i] = True
                matches += candidates
                open_rows = open_rows & ~candidates

    # Transpositions: align the k-th matched character of each side.
    jaro_values = np.zeros(n, dtype=np.float64)
    matched_rows = matches > 0
    if matched_rows.any():
        max_matches = int(matches.max())
        ranks_a = np.cumsum(flags_a, axis=1) - 1
        ranks_b = np.cumsum(flags_b, axis=1) - 1
        seq_a = np.full((n, max_matches), _PAD_A, dtype=np.int32)
        seq_b = np.full((n, max_matches), _PAD_B, dtype=np.int32)
        rows_a, cols_a = np.nonzero(flags_a)
        rows_b, cols_b = np.nonzero(flags_b)
        seq_a[rows_a, ranks_a[rows_a, cols_a]] = chars_a[rows_a, cols_a]
        seq_b[rows_b, ranks_b[rows_b, cols_b]] = chars_b[rows_b, cols_b]
        transpositions = (
            ((seq_a != seq_b) & (seq_a != _PAD_A)).sum(axis=1) // 2
        ).astype(np.int32)

        m = matches.astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            jaro_all = (
                m / len_a + m / len_b + (m - transpositions) / m
            ) / 3.0
        jaro_values[matched_rows] = jaro_all[matched_rows]

    # Winkler prefix boost over the first (up to) four characters.
    prefix_width = min(4, width_a, width_b)
    if prefix_width > 0:
        agree = chars_a[:, :prefix_width] == chars_b[:, :prefix_width]
        prefix = np.cumprod(agree, axis=1).sum(axis=1)
    else:
        prefix = np.zeros(n, dtype=np.int64)
    return jaro_values + prefix * 0.1 * (1.0 - jaro_values)


def build_idf(documents: Sequence[Sequence[str]]) -> dict[str, float]:
    """Smoothed inverse document frequencies for a token corpus.

    idf(t) = ln((1 + N) / (1 + df(t))) + 1, the standard smooth variant
    that keeps weights positive and finite.
    """
    n_docs = len(documents)
    df: Counter[str] = Counter()
    for doc in documents:
        df.update(set(doc))
    return {
        token: math.log((1 + n_docs) / (1 + count)) + 1.0
        for token, count in df.items()
    }
