"""Similarity measures from the paper's feature library (Section 4.1).

Edit distance, Jaccard, Jaro-Winkler, TF/IDF cosine and Monge-Elkan are the
measures the paper names explicitly; overlap coefficient and numeric
differences round out the library.  All similarity functions return values
in [0, 1] where 1 means identical, except the raw distance/difference
helpers which are documented individually.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Mapping, Sequence
from functools import lru_cache

from .tokenize import normalize, word_tokens


def levenshtein_distance(s: str, t: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs).

    Runs in O(|s| * |t|) time and O(min) memory via two rolling rows.
    """
    if s == t:
        return 0
    if len(s) < len(t):
        s, t = t, s
    if not t:
        return len(s)
    previous = list(range(len(t) + 1))
    for i, cs in enumerate(s, start=1):
        current = [i]
        for j, ct in enumerate(t, start=1):
            current.append(min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + (cs != ct),  # substitution
            ))
        previous = current
    return previous[-1]


def levenshtein_similarity(s: str, t: str) -> float:
    """1 - distance / max_length, on normalized strings."""
    s, t = normalize(s), normalize(t)
    longest = max(len(s), len(t))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(s, t) / longest


def jaro(s: str, t: str) -> float:
    """Jaro similarity of two strings (0 = disjoint, 1 = identical)."""
    s, t = normalize(s), normalize(t)
    if s == t:
        return 1.0
    if not s or not t:
        return 0.0
    window = max(len(s), len(t)) // 2 - 1
    window = max(window, 0)

    s_flags = [False] * len(s)
    t_flags = [False] * len(t)
    matches = 0
    for i, ch in enumerate(s):
        low = max(0, i - window)
        high = min(len(t), i + window + 1)
        for j in range(low, high):
            if not t_flags[j] and t[j] == ch:
                s_flags[i] = t_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, flagged in enumerate(s_flags):
        if not flagged:
            continue
        while not t_flags[j]:
            j += 1
        if s[i] != t[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    m = matches
    return (m / len(s) + m / len(t) + (m - transpositions) / m) / 3.0


def jaro_winkler(s: str, t: str, prefix_weight: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    base = jaro(s, t)
    s_n, t_n = normalize(s), normalize(t)
    prefix = 0
    for cs, ct in zip(s_n, t_n):
        if cs != ct or prefix == max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def jaccard(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
    """Jaccard similarity of two token multisets' supports.

    Defined as 1.0 when both token sets are empty (two empty strings are
    identical for matching purposes).
    """
    set_a, set_b = set(tokens_a), set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union


def overlap_coefficient(tokens_a: Sequence[str],
                        tokens_b: Sequence[str]) -> float:
    """|A ∩ B| / min(|A|, |B|); 1.0 when either side is empty-and-equal."""
    set_a, set_b = set(tokens_a), set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller


@lru_cache(maxsize=1 << 18)
def _jaro_winkler_words(a: str, b: str) -> float:
    """Cached word-level Jaro-Winkler for Monge-Elkan's inner loop.

    Real tables draw words from a modest vocabulary, so the cache turns
    Monge-Elkan from the most expensive library feature into one of the
    cheapest after warm-up.
    """
    return jaro_winkler(a, b)


def monge_elkan(s: str, t: str) -> float:
    """Monge-Elkan: mean best Jaro-Winkler match of each word of s in t.

    The measure is asymmetric in general; we symmetrize by averaging both
    directions, which is the common practice for EM feature libraries.
    """
    words_s, words_t = word_tokens(s), word_tokens(t)
    if not words_s and not words_t:
        return 1.0
    if not words_s or not words_t:
        return 0.0

    def directed(ws: list[str], wt: list[str]) -> float:
        total = 0.0
        for a in ws:
            total += max(_jaro_winkler_words(a, b) for b in wt)
        return total / len(ws)

    return (directed(words_s, words_t) + directed(words_t, words_s)) / 2.0


def cosine_tfidf(tokens_a: Sequence[str], tokens_b: Sequence[str],
                 idf: Mapping[str, float]) -> float:
    """TF/IDF-weighted cosine similarity of two token lists.

    ``idf`` maps tokens to inverse-document-frequency weights computed over
    the corpus (both tables) by the feature library.  Unknown tokens get
    the maximum observed idf + 1 (they are maximally discriminative).
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    default_idf = (max(idf.values()) + 1.0) if idf else 1.0

    def weights(tokens: Sequence[str]) -> dict[str, float]:
        counts = Counter(tokens)
        return {
            token: count * idf.get(token, default_idf)
            for token, count in counts.items()
        }

    wa, wb = weights(tokens_a), weights(tokens_b)
    dot = sum(wa[token] * wb[token] for token in wa.keys() & wb.keys())
    norm_a = math.sqrt(sum(v * v for v in wa.values()))
    norm_b = math.sqrt(sum(v * v for v in wb.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def exact_match(a: object, b: object) -> float:
    """1.0 if the normalized values are equal, else 0.0.

    Strings are compared after :func:`normalize`; other values compare
    with ``==``.
    """
    if isinstance(a, str) and isinstance(b, str):
        return 1.0 if normalize(a) == normalize(b) else 0.0
    return 1.0 if a == b else 0.0


def abs_diff(a: float, b: float) -> float:
    """Absolute difference of two numbers (a raw distance, not in [0,1])."""
    return abs(a - b)


def rel_diff(a: float, b: float) -> float:
    """Relative difference |a-b| / max(|a|, |b|); 0.0 when both are 0."""
    denominator = max(abs(a), abs(b))
    if denominator == 0.0:
        return 0.0
    return abs(a - b) / denominator


def build_idf(documents: Sequence[Sequence[str]]) -> dict[str, float]:
    """Smoothed inverse document frequencies for a token corpus.

    idf(t) = ln((1 + N) / (1 + df(t))) + 1, the standard smooth variant
    that keeps weights positive and finite.
    """
    n_docs = len(documents)
    df: Counter[str] = Counter()
    for doc in documents:
        df.update(set(doc))
    return {
        token: math.log((1 + n_docs) / (1 + count)) + 1.0
        for token, count in df.items()
    }
