"""Convert tuple pairs into feature vectors (Section 5.1).

Every surviving pair after blocking is converted immediately into a
feature vector; all downstream modules then work on the numeric matrix.
The matrix is filled column-wise through the batched feature engine
(:mod:`repro.features.batch`): records are materialized once per side,
per-record tokenization comes from the shared per-table caches, and each
feature evaluates the whole pair column in one call.  ``engine="scalar"``
keeps the original per-pair loop — the parity oracle the batched path is
tested against.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.pairs import CandidateSet, Pair
from ..data.table import Table
from ..exceptions import DataError
from ..obs.profiling import profile_section
from .batch import table_cache
from .library import FeatureLibrary


def vectorize_pairs(table_a: Table, table_b: Table, pairs: Sequence[Pair],
                    library: FeatureLibrary,
                    engine: str = "batched") -> CandidateSet:
    """Build a :class:`CandidateSet` for ``pairs`` using ``library``.

    Records are looked up by id in their respective tables; unknown ids
    raise :class:`repro.exceptions.DataError` via the table lookup.
    Missing attribute values produce NaN feature entries.  ``engine``
    selects the evaluation path: ``"batched"`` (default) evaluates each
    feature column-wise over all pairs at once, ``"scalar"`` keeps the
    per-pair loop; both produce identical matrices.
    """
    if engine not in ("batched", "scalar"):
        raise DataError(f"unknown vectorization engine {engine!r}")
    matrix = np.empty((len(pairs), len(library)), dtype=np.float64)
    if not pairs:
        return CandidateSet(list(pairs), matrix, library.names)

    if engine == "scalar":
        for row, pair in enumerate(pairs):
            record_a = table_a[pair.a_id]
            record_b = table_b[pair.b_id]
            for col, feature in enumerate(library):
                matrix[row, col] = feature.value(record_a, record_b)
        return CandidateSet(list(pairs), matrix, library.names)

    with profile_section("features.vectorize_pairs"):
        records_a = [table_a[pair.a_id] for pair in pairs]
        records_b = [table_b[pair.b_id] for pair in pairs]
        cache_a = table_cache(table_a)
        cache_b = table_cache(table_b)
        for col, feature in enumerate(library):
            matrix[:, col] = feature.batch_value(
                records_a, records_b, cache_a, cache_b
            )
    return CandidateSet(list(pairs), matrix, library.names)
