"""Convert tuple pairs into feature vectors (Section 5.1).

Every surviving pair after blocking is converted immediately into a
feature vector; all downstream modules then work on the numeric matrix.
The matrix is filled column-wise through the batched feature engine
(:mod:`repro.features.batch`): records are materialized once per side,
per-record tokenization comes from the shared per-table caches, and each
feature evaluates the whole pair column in one call.  ``engine="scalar"``
keeps the original per-pair loop — the parity oracle the batched path is
tested against — and ``engine="plan"`` fills the columns in the
attribute-grouped, cheapest-first order of
:func:`repro.plan.compile_vectorize_plan` (same values in every cell;
only the evaluation schedule and cache locality differ).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.pairs import CandidateSet, Pair
from ..data.table import Table
from ..exceptions import DataError
from ..obs.profiling import profile_section
from .batch import table_cache
from .library import FeatureLibrary


def vectorize_pairs(table_a: Table, table_b: Table, pairs: Sequence[Pair],
                    library: FeatureLibrary,
                    engine: str = "batched",
                    out: np.ndarray | None = None) -> CandidateSet:
    """Build a :class:`CandidateSet` for ``pairs`` using ``library``.

    Records are looked up by id in their respective tables; unknown ids
    raise :class:`repro.exceptions.DataError` via the table lookup.
    Missing attribute values produce NaN feature entries.  ``engine``
    selects the evaluation path: ``"batched"`` (default) evaluates each
    feature column-wise over all pairs at once, ``"scalar"`` keeps the
    per-pair loop, ``"plan"`` runs the compiled column order; all three
    produce bit-identical matrices.

    ``out`` (optional) is a preallocated ``(len(pairs), len(library))``
    float64 array the matrix is written into — the spill hook: the
    engine passes a memory-mapped array from
    :class:`repro.plan.SpillManager` so the feature matrix never has to
    fit in RAM.
    """
    if engine not in ("batched", "scalar", "plan"):
        raise DataError(f"unknown vectorization engine {engine!r}")
    shape = (len(pairs), len(library))
    if out is None:
        matrix = np.empty(shape, dtype=np.float64)
    else:
        if out.shape != shape or out.dtype != np.float64:
            raise DataError(
                f"out must be a float64 array of shape {shape}, got "
                f"{out.dtype} {out.shape}"
            )
        matrix = out
    if not pairs:
        return CandidateSet(list(pairs), matrix, library.names)

    if engine == "scalar":
        for row, pair in enumerate(pairs):
            record_a = table_a[pair.a_id]
            record_b = table_b[pair.b_id]
            for col, feature in enumerate(library):
                matrix[row, col] = feature.value(record_a, record_b)
        return CandidateSet(list(pairs), matrix, library.names)

    if engine == "plan":
        from ..plan import compile_vectorize_plan

        plan = compile_vectorize_plan(library)
        columns = [(step.column, step.feature) for step in plan.steps]
    else:
        columns = list(enumerate(library))

    with profile_section("features.vectorize_pairs"):
        records_a = [table_a[pair.a_id] for pair in pairs]
        records_b = [table_b[pair.b_id] for pair in pairs]
        cache_a = table_cache(table_a)
        cache_b = table_cache(table_b)
        for col, feature in columns:
            matrix[:, col] = feature.batch_value(
                records_a, records_b, cache_a, cache_b
            )
    return CandidateSet(list(pairs), matrix, library.names)
