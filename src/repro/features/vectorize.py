"""Convert tuple pairs into feature vectors (Section 5.1).

Every surviving pair after blocking is converted immediately into a
feature vector; all downstream modules then work on the numeric matrix.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..data.pairs import CandidateSet, Pair
from ..data.table import Table
from .library import FeatureLibrary


def vectorize_pairs(table_a: Table, table_b: Table, pairs: Sequence[Pair],
                    library: FeatureLibrary) -> CandidateSet:
    """Build a :class:`CandidateSet` for ``pairs`` using ``library``.

    Records are looked up by id in their respective tables; unknown ids
    raise :class:`repro.exceptions.DataError` via the table lookup.
    Missing attribute values produce NaN feature entries.
    """
    matrix = np.empty((len(pairs), len(library)), dtype=np.float64)
    for row, pair in enumerate(pairs):
        record_a = table_a[pair.a_id]
        record_b = table_b[pair.b_id]
        for col, feature in enumerate(library):
            matrix[row, col] = feature.value(record_a, record_b)
    return CandidateSet(list(pairs), matrix, library.names)
