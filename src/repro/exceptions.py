"""Exception hierarchy for the Corleone reproduction.

All errors raised by this package derive from :class:`CorleoneError`, so a
caller can catch everything the library raises with a single ``except``
clause while still being able to distinguish configuration problems from
data problems or crowd-budget exhaustion.
"""

from __future__ import annotations


class CorleoneError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(CorleoneError):
    """An invalid parameter value or inconsistent configuration."""


class SchemaError(CorleoneError):
    """Tables or records do not conform to the expected schema."""


class DataError(CorleoneError):
    """Malformed input data (empty tables, bad CSV rows, unknown ids...)."""


class FeatureError(CorleoneError):
    """A feature could not be computed or an unknown feature was requested."""


class RuleError(CorleoneError):
    """A rule is malformed or cannot be applied to the given data."""


class CrowdError(CorleoneError):
    """The crowd platform failed to answer a question batch."""


class TransientCrowdError(CrowdError):
    """A temporary platform failure that a retry may recover from.

    Raised for the realistic microtask failure taxonomy
    (:mod:`repro.crowd.faults`): platform outages, per-answer timeouts
    and HIT expiry.  The resilient gateway
    (:class:`repro.crowd.gateway.ResilientCrowd`) retries these with
    capped exponential backoff; anything that escapes the gateway is no
    longer transient from the caller's point of view.
    """


class AnswerTimeoutError(TransientCrowdError):
    """No :class:`~repro.crowd.base.WorkerAnswer` arrived in time.

    The question was posted but no worker answered within the deadline;
    no answer was consumed (and none is charged).
    """


class HitExpiredError(TransientCrowdError):
    """A posted HIT was abandoned by its worker or expired unanswered.

    The gateway reacts by *reposting* the HIT (metered as a fresh HIT in
    the cost tracker) rather than merely re-asking.
    """


class CrowdUnavailableError(CrowdError):
    """The crowd platform is down and retrying is no longer useful.

    Raised by the gateway when its circuit breaker opens after
    ``failure_threshold`` consecutive platform failures.  The engine
    degrades gracefully: the last stage-boundary checkpoint is already
    on disk, so :meth:`repro.core.pipeline.Corleone.resume` can continue
    the run (with a recovered platform) to a bit-identical result.
    ``partial`` is attached by the pipeline when the error escapes a
    checkpointed run, so callers can inspect how far the run got.
    """

    def __init__(self, failures: int,
                 message: str | None = None) -> None:
        super().__init__(
            message if message is not None else
            f"crowd platform unavailable: circuit opened after "
            f"{failures} consecutive platform failures"
        )
        self.failures = failures
        self.partial = None
        """Set by the pipeline: the partial CorleoneResult at failure."""


class BudgetExhaustedError(CrowdError):
    """The monetary budget for crowdsourcing has been exhausted.

    Raised by budget-capped crowd platforms when a question batch would
    exceed the remaining budget.  The pipeline catches this to terminate
    gracefully and return the best result obtained so far.
    """

    def __init__(self, spent: float, budget: float) -> None:
        super().__init__(
            f"crowd budget exhausted: spent ${spent:.2f} of ${budget:.2f}"
        )
        self.spent = spent
        self.budget = budget


class EstimationError(CorleoneError):
    """Accuracy estimation could not be completed."""
