"""Exception hierarchy for the Corleone reproduction.

All errors raised by this package derive from :class:`CorleoneError`, so a
caller can catch everything the library raises with a single ``except``
clause while still being able to distinguish configuration problems from
data problems or crowd-budget exhaustion.
"""

from __future__ import annotations


class CorleoneError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(CorleoneError):
    """An invalid parameter value or inconsistent configuration."""


class SchemaError(CorleoneError):
    """Tables or records do not conform to the expected schema."""


class DataError(CorleoneError):
    """Malformed input data (empty tables, bad CSV rows, unknown ids...)."""


class FeatureError(CorleoneError):
    """A feature could not be computed or an unknown feature was requested."""


class RuleError(CorleoneError):
    """A rule is malformed or cannot be applied to the given data."""


class CrowdError(CorleoneError):
    """The crowd platform failed to answer a question batch."""


class BudgetExhaustedError(CrowdError):
    """The monetary budget for crowdsourcing has been exhausted.

    Raised by budget-capped crowd platforms when a question batch would
    exceed the remaining budget.  The pipeline catches this to terminate
    gracefully and return the best result obtained so far.
    """

    def __init__(self, spent: float, budget: float) -> None:
        super().__init__(
            f"crowd budget exhausted: spent ${spent:.2f} of ${budget:.2f}"
        )
        self.spent = spent
        self.budget = budget


class EstimationError(CorleoneError):
    """Accuracy estimation could not be completed."""
