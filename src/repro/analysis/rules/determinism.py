"""CL001 — determinism: no ambient entropy or wall-clock in core code.

The paper's §9.3 sensitivity analysis (and this repo's bit-for-bit
regression suite) assume a fully seeded simulated crowd: the same seed
must replay the same run.  Inside the algorithmic subsystems (``core/``,
``forest/``, ``crowd/``, ``rules/``) randomness must therefore be
threaded as an ``np.random.Generator`` parameter — the convention of
``crowd/simulated.py`` and ``data/sampling.py`` — never pulled from
module-level RNGs, unseeded constructors or the wall clock.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module, \
    relpath_matches

_SCOPE = "core|forest|crowd|rules"

_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
})
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})
_BIT_GENERATORS = frozenset({
    "Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    "SeedSequence", "BitGenerator",
})


class DeterminismRule(ModuleRule):
    """Flags unseeded/global RNG use and wall-clock reads in core code."""

    rule_id = "CL001"
    severity = Severity.ERROR
    summary = ("no module-level random.*, unseeded np.random RNG, or "
               "wall-clock reads in core/, forest/, crowd/, rules/ — "
               "thread a seeded np.random.Generator instead")

    def applies_to(self, module: SourceModule) -> bool:
        """Only the algorithmic subsystems; tests are exempt."""
        return relpath_matches(module, _SCOPE) and not is_test_module(module)

    def begin_module(self, module: SourceModule,
                     ctx: ModuleContext) -> None:
        """Prescan imports to resolve numpy / random / time aliases."""
        self._numpy = set()
        self._numpy_random = set()
        self._default_rng = set()
        self._stdlib_random = set()
        self._random_funcs = set()
        self._time_mods = set()
        self._clock_funcs = set()
        self._datetime_mods = set()
        self._datetime_classes = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name in ("numpy", "numpy.random"):
                        target = (self._numpy if alias.name == "numpy"
                                  else self._numpy_random)
                        target.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        self._stdlib_random.add(bound)
                    elif alias.name == "time":
                        self._time_mods.add(bound)
                    elif alias.name == "datetime":
                        self._datetime_mods.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "numpy" and alias.name == "random":
                        self._numpy_random.add(bound)
                    elif node.module == "numpy.random":
                        if alias.name == "default_rng":
                            self._default_rng.add(bound)
                    elif node.module == "random":
                        self._random_funcs.add(bound)
                    elif node.module == "time":
                        if alias.name in _CLOCK_FUNCS:
                            self._clock_funcs.add(bound)
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            self._datetime_classes.add(bound)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Classify one call against the determinism contract."""
        chain = dotted_name(node.func)
        if chain is None:
            return
        head, tail = chain[0], chain[1:]
        seeded = bool(node.args or node.keywords)

        if head in self._stdlib_random or (
                len(chain) == 1 and head in self._random_funcs):
            ctx.report(self, node,
                       "stdlib `random` uses hidden module-level state; "
                       "thread a seeded np.random.Generator parameter "
                       "instead")
            return

        np_random_func = None
        if head in self._numpy and len(chain) == 3 and tail[0] == "random":
            np_random_func = tail[1]
        elif head in self._numpy_random and len(chain) == 2:
            np_random_func = tail[0]
        elif len(chain) == 1 and head in self._default_rng:
            np_random_func = "default_rng"
        if np_random_func is not None:
            self._check_numpy(node, np_random_func, seeded, ctx)
            return

        if ((head in self._time_mods and len(chain) == 2
                and tail[0] in _CLOCK_FUNCS)
                or (len(chain) == 1 and head in self._clock_funcs)):
            ctx.report(self, node,
                       "wall-clock read makes the run irreproducible; "
                       "pass timings/timestamps in from the caller")
            return

        is_datetime = (
            (head in self._datetime_mods and len(chain) == 3
             and tail[0] in ("datetime", "date")
             and tail[1] in _DATETIME_METHODS)
            or (head in self._datetime_classes and len(chain) == 2
                and tail[0] in _DATETIME_METHODS)
        )
        if is_datetime:
            ctx.report(self, node,
                       "datetime.now()/today() reads the wall clock; "
                       "pass timestamps in from the caller")

    def _check_numpy(self, node: ast.Call, func: str, seeded: bool,
                     ctx: ModuleContext) -> None:
        """Vet one ``np.random.<func>(...)`` call."""
        if func == "default_rng" or func in _BIT_GENERATORS:
            if not seeded:
                ctx.report(self, node,
                           f"unseeded np.random.{func}() is "
                           "irreproducible; pass an explicit seed or "
                           "thread the caller's Generator")
        else:
            ctx.report(self, node,
                       f"legacy np.random.{func}() uses the global "
                       "numpy RNG; thread a seeded np.random.Generator "
                       "instead")
