"""CL017 — telemetry name registries: sections and spans are closed sets.

CL009 keeps event names honest; this rule does the same for the other
two name-dispatched telemetry surfaces.  A ``profile_section("name")``
with a typo'd name silently creates a new ``profile.json`` section that
no doc, bench or dashboard knows about, and a ``tracer.start("name")``
outside the documented span hierarchy breaks every consumer that walks
the span tree by name (the report's stage/matcher rollups, the cross-run
differ's stage alignment).  So both take their names from closed
registries:

* ``SECTION_NAMES`` in ``obs/profiling.py`` — every literal
  ``profile_section(...)`` argument must be listed; a *non-literal*
  argument is flagged too, because a computed section name cannot be
  audited against the registry (the plan executor's per-node sections
  carry an explicit pragma with their justification);
* ``SPAN_NAMES`` in ``obs/spans.py`` — every literal name passed to a
  tracer's ``.start(...)`` or ``.span(...)`` must be listed.  The
  ``.start`` check only applies to receivers *named* ``tracer`` (a
  bare ``tracer`` variable or an ``x.tracer`` attribute): matcher
  objects also expose ``start`` and the span context-manager forwards
  a non-literal name internally, and neither is a span-name call site.

Like CL009, the rule stays silent when the registry modules are not in
the scanned set (targeted subpackage runs), and skips test modules.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence

from ..findings import Severity
from ..source import SourceModule
from .base import ProjectContext, ProjectRule, is_test_module

_SECTION_REGISTRY = "SECTION_NAMES"
_SPAN_REGISTRY = "SPAN_NAMES"


def _string_tuple(tree: ast.Module, name: str) -> set[str] | None:
    """The string values of a module-level ``name = ("...", ...)``."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == name
                    and isinstance(value, ast.Tuple)):
                return {
                    element.value for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
    return None


def _is_tracer_receiver(func: ast.Attribute) -> bool:
    """Whether the call receiver is a tracer (``tracer`` / ``x.tracer``)."""
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id == "tracer"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "tracer"
    return False


class TelemetryNameRule(ProjectRule):
    """Audits section and span names against their closed registries."""

    rule_id = "CL017"
    severity = Severity.ERROR
    summary = ("profile_section(...) names must be literals listed in "
               "SECTION_NAMES and tracer .start(...)/.span(...) names "
               "must be literals listed in SPAN_NAMES — an unregistered "
               "name silently escapes every report, bench and dashboard")

    def check_project(self, modules: Sequence[SourceModule],
                      ctx: ProjectContext) -> None:
        """Resolve both registries, then audit every call site."""
        sections: set[str] | None = None
        spans: set[str] | None = None
        for module in modules:
            if sections is None:
                sections = _string_tuple(module.tree, _SECTION_REGISTRY)
            if spans is None:
                spans = _string_tuple(module.tree, _SPAN_REGISTRY)
        if sections is None and spans is None:
            # Neither registry module is part of this scan (targeted
            # run): nothing to audit against, stay silent.
            return
        for module in modules:
            if is_test_module(module):
                continue
            self._check_module(module, sections, spans, ctx)

    def _check_module(self, module: SourceModule,
                      sections: set[str] | None, spans: set[str] | None,
                      ctx: ProjectContext) -> None:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            if sections is not None and self._is_profile_section(node):
                self._check_name(
                    module, node, sections, _SECTION_REGISTRY,
                    "profile_section", ctx, flag_non_literal=True)
            elif spans is not None and self._is_span_call(node):
                # The span context-manager wrapper forwards a
                # non-literal name by design; only literal names are
                # auditable here.
                flag = (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "start")
                self._check_name(
                    module, node, spans, _SPAN_REGISTRY,
                    node.func.attr, ctx, flag_non_literal=flag)

    @staticmethod
    def _is_profile_section(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "profile_section"
        return (isinstance(func, ast.Attribute)
                and func.attr == "profile_section")

    @staticmethod
    def _is_span_call(node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr == "start":
            return _is_tracer_receiver(func)
        if func.attr == "span":
            # .span(...) is unambiguous enough to audit on any
            # receiver: the only `span` methods in the tree are the
            # tracer's and the run context's forwarding wrapper.
            return True
        return False

    def _check_name(self, module: SourceModule, node: ast.Call,
                    declared: set[str], registry: str, callee: str,
                    ctx: ProjectContext, flag_non_literal: bool) -> None:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in declared:
                ctx.report(self, module, first,
                           f"{callee} with unregistered name "
                           f"{first.value!r}; add it to {registry} so "
                           "reports and docs keep enumerating the "
                           "telemetry schema")
        elif flag_non_literal:
            ctx.report(self, module, first,
                       f"{callee} name is not a string literal, so it "
                       f"cannot be audited against {registry}; use a "
                       "registered literal (or pragma a justified "
                       "exception)")
