"""CL009 — event registry: every emitted event name is declared.

The observability stack fans one :class:`~repro.engine.events.EventBus`
out to the trace sink, the progress reporter and the metrics registry,
and each consumer dispatches on the event *name*.  A typo'd name in an
``emit`` call would silently fall through every dispatcher — the event
lands in ``trace.jsonl`` but no metric moves and no report row shows
it.  The registry tuple ``EVENT_NAMES`` in ``engine/events.py`` is the
contract: this rule cross-checks that (a) every ``EVENT_*`` string
constant defined in the registry module is listed in ``EVENT_NAMES``,
and (b) every ``*.emit("literal", ...)`` call in the scanned sources
uses a declared name.  Emits through an ``EVENT_*`` constant are the
idiom and need no per-site check — the constant either is in the tuple
or trips check (a).
"""

from __future__ import annotations

import ast
from collections.abc import Sequence

from ..findings import Severity
from ..source import SourceModule
from .base import ProjectContext, ProjectRule, is_test_module

_REGISTRY_TUPLE = "EVENT_NAMES"
_CONSTANT_PREFIX = "EVENT_"


def _module_constants(tree: ast.Module) -> dict[str, tuple[ast.AST, str]]:
    """Module-level ``NAME = "literal"``: name -> (target node, value)."""
    out: dict[str, tuple[ast.AST, str]] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, str)):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = (target, value.value)
    return out


def _registry_tuple(tree: ast.Module) -> ast.Tuple | None:
    """The tuple literal assigned to module-level ``EVENT_NAMES``."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == _REGISTRY_TUPLE
                    and isinstance(value, ast.Tuple)):
                return value
    return None


class EventRegistryRule(ProjectRule):
    """Cross-checks emitted event names against ``EVENT_NAMES``."""

    rule_id = "CL009"
    severity = Severity.ERROR
    summary = ("every *.emit(\"name\") string literal must be listed in "
               "the EVENT_NAMES registry tuple, and every EVENT_* string "
               "constant in the registry module must be in EVENT_NAMES — "
               "an undeclared name silently bypasses every dispatcher")

    def check_project(self, modules: Sequence[SourceModule],
                      ctx: ProjectContext) -> None:
        """Resolve the registry, then audit constants and emit calls."""
        registry = None
        tuple_node: ast.Tuple | None = None
        for module in modules:
            tuple_node = _registry_tuple(module.tree)
            if tuple_node is not None:
                registry = module
                break
        if registry is None or tuple_node is None:
            # The registry module was not part of the scan (e.g. a
            # targeted run over one subpackage): nothing to check
            # against, so stay silent rather than flagging every emit.
            return

        constants = _module_constants(registry.tree)
        declared_names: set[str] = set()
        declared_values: set[str] = set()
        for element in tuple_node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                    element.value, str):
                declared_values.add(element.value)
            elif isinstance(element, ast.Name):
                declared_names.add(element.id)
                if element.id in constants:
                    declared_values.add(constants[element.id][1])

        for name, (target, _value) in sorted(constants.items()):
            if (name.startswith(_CONSTANT_PREFIX)
                    and name not in declared_names):
                ctx.report(self, registry, target,
                           f"event constant {name} is not listed in "
                           f"{_REGISTRY_TUPLE}; consumers dispatching on "
                           "the registry will never see this event")

        for module in modules:
            if is_test_module(module):
                continue
            self._check_emits(module, declared_values, ctx)

    def _check_emits(self, module: SourceModule, declared_values: set[str],
                     ctx: ProjectContext) -> None:
        """Flag ``*.emit("literal")`` calls with undeclared names."""
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit" and node.args):
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue
            if first.value in declared_values:
                continue
            ctx.report(self, module, first,
                       f"emit with undeclared event name "
                       f"{first.value!r}; add it to {_REGISTRY_TUPLE} in "
                       "engine/events.py (and prefer emitting via the "
                       "EVENT_* constant)")
