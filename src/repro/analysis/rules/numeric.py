"""CL004 — numeric hygiene: no accidental float equality.

Feature values, precisions and confidence bounds are floats; ``==`` on
them silently depends on bit-exact arithmetic.  The batch engine's
parity contract makes *some* exact comparisons legitimate (exact-zero
division guards), but those must be declared: either suppressed inline
with a ``# corlint: disable=CL004`` intent comment or grandfathered in
the baseline.  The ``x != x`` NaN idiom is always flagged — spell it
``math.isnan(x)``.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module, \
    relpath_matches

_SCOPE = "features|forest|rules|core"

_NAN_INF_CHAINS = frozenset({
    ("math", "nan"), ("math", "inf"),
    ("np", "nan"), ("np", "inf"), ("numpy", "nan"), ("numpy", "inf"),
    ("np", "NaN"), ("numpy", "NaN"),
})


def _is_floatish(node: ast.expr) -> bool:
    """Can we statically tell this expression is float-typed?

    Conservative: float literals, ``float(...)`` conversions and
    NaN/inf constants only, so untyped ``a == b`` never false-positives.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float"):
        return True
    chain = dotted_name(node)
    return chain in _NAN_INF_CHAINS


class NumericHygieneRule(ModuleRule):
    """Flags ``==``/``!=`` on float-typed operands and NaN idioms."""

    rule_id = "CL004"
    severity = Severity.WARNING
    summary = ("no ==/!= against float-typed expressions in numeric "
               "modules (use math.isclose or an intent comment) and no "
               "`x != x` NaN tests (use math.isnan)")

    def applies_to(self, module: SourceModule) -> bool:
        """The numeric subsystems plus metrics.py; tests are exempt."""
        if is_test_module(module):
            return False
        return (relpath_matches(module, _SCOPE)
                or module.relpath.endswith("metrics.py"))

    def visit_Compare(self, node: ast.Compare, ctx: ModuleContext) -> None:
        """Check every adjacent operand pair of a comparison chain."""
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_pair(node, op, left, right, ctx)
            left = right

    def _check_pair(self, node: ast.Compare, op: ast.cmpop,
                    left: ast.expr, right: ast.expr,
                    ctx: ModuleContext) -> None:
        """Vet one ``left <op> right`` pair."""
        if ast.dump(left) == ast.dump(right):
            idiom = "x != x" if isinstance(op, ast.NotEq) else "x == x"
            ctx.report(self, node,
                       f"`{idiom}` NaN idiom; spell the intent with "
                       "math.isnan(x) (or np.isnan for arrays)")
            return
        if _is_floatish(left) or _is_floatish(right):
            symbol = "!=" if isinstance(op, ast.NotEq) else "=="
            ctx.report(self, node,
                       f"float `{symbol}` comparison; use math.isclose/"
                       "np.isclose with an explicit tolerance, or mark "
                       "an intentional exact comparison with a "
                       "`# corlint: disable=CL004` intent comment")
