"""The corlint rule registry.

Each rule lives in its own module; :func:`default_rules` instantiates
the full shipped set, and :func:`rules_by_id` gives the CLI's
``--select``/``--ignore`` a name index.  To add a rule, subclass
:class:`~repro.analysis.rules.base.ModuleRule` (per-file, AST-visitor
handlers), :class:`~repro.analysis.rules.base.ProjectRule`
(cross-file) or :class:`~repro.analysis.rules.base.SemanticRule`
(whole-program, driven by the compiled semantic model) and append it
to :data:`DEFAULT_RULE_CLASSES`.
"""

from __future__ import annotations

from .accounting import AccountingRule
from .base import ModuleContext, ModuleRule, ProjectContext, ProjectRule, \
    Rule, SemanticRule
from .checkpoint_state import CheckpointStateRule
from .dead_api import DeadApiRule
from .determinism import DeterminismRule
from .events import EventRegistryRule
from .hygiene import GenericHygieneRule
from .kernel_parity import KernelParityRule
from .numeric import NumericHygieneRule
from .obs_consistency import ObsConsistencyRule
from .picklability import PicklabilityRule
from .resilience import SwallowedCrowdErrorRule
from .rng_flow import RngFlowRule
from .rng_sharing import RngSharingRule
from .spill import SpillOwnershipRule
from .storage_writes import StorageOwnershipRule
from .telemetry_names import TelemetryNameRule
from .wallclock import WallClockPurityRule

DEFAULT_RULE_CLASSES: tuple[type[Rule], ...] = (
    DeterminismRule,
    AccountingRule,
    KernelParityRule,
    NumericHygieneRule,
    PicklabilityRule,
    GenericHygieneRule,
    RngSharingRule,
    SwallowedCrowdErrorRule,
    EventRegistryRule,
    RngFlowRule,
    CheckpointStateRule,
    ObsConsistencyRule,
    WallClockPurityRule,
    DeadApiRule,
    SpillOwnershipRule,
    StorageOwnershipRule,
    TelemetryNameRule,
)
"""Every shipped rule class, in rule-id order."""


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [rule_class() for rule_class in DEFAULT_RULE_CLASSES]


def rules_by_id(rules: list[Rule] | None = None) -> dict[str, Rule]:
    """Index rules by their ``rule_id`` (for --select/--ignore)."""
    return {rule.rule_id: rule for rule in (rules or default_rules())}


__all__ = [
    "AccountingRule",
    "CheckpointStateRule",
    "DEFAULT_RULE_CLASSES",
    "DeadApiRule",
    "DeterminismRule",
    "EventRegistryRule",
    "GenericHygieneRule",
    "KernelParityRule",
    "ModuleContext",
    "ModuleRule",
    "NumericHygieneRule",
    "ObsConsistencyRule",
    "PicklabilityRule",
    "ProjectContext",
    "ProjectRule",
    "RngFlowRule",
    "RngSharingRule",
    "SemanticRule",
    "SpillOwnershipRule",
    "StorageOwnershipRule",
    "SwallowedCrowdErrorRule",
    "TelemetryNameRule",
    "Rule",
    "WallClockPurityRule",
    "default_rules",
    "rules_by_id",
]
