"""CL012 — obs consistency: events and metrics form a closed loop.

CL009 checks one direction (every emit uses a declared name).  The
observability contract has three more edges this rule closes, using
the whole-program model:

* every name in ``EVENT_NAMES`` must actually be **emitted** somewhere
  — a declared-but-never-produced event is a dead registry entry that
  consumers will wait on forever;
* every name in ``EVENT_NAMES`` must have a **consumer** — a module
  (other than the registry itself) that references the ``EVENT_*``
  constant beyond just emitting it, or dispatches on the literal name
  in a comparison or dict key.  An event only the generic trace sink
  sees moves no metric and shows in no report;
* every metric registered in the catalog (``registry.counter/gauge/``
  ``histogram("name", ...)``) must have a **producer** — a
  ``reg.get("name")`` / ``registry.get("name")`` call site — and every
  such lookup must name a registered metric (the registry raises at
  runtime for unknown names, but only on paths a test happens to hit).

Because the reasoning is absence-of-reference, the rule only runs on
whole-program scans.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..findings import Severity
from ..model import SemanticModel
from ..source import SourceModule
from .base import ProjectContext, SemanticRule, is_test_module


class ObsConsistencyRule(SemanticRule):
    """Cross-checks event and metric producers against consumers."""

    rule_id = "CL012"
    severity = Severity.ERROR
    requires_whole_program = True
    summary = ("every EVENT_NAMES entry must be emitted and consumed "
               "(dispatched on) somewhere, every catalog metric must "
               "have a reg.get() producer, and every reg.get() must "
               "name a cataloged metric — unwired telemetry is silent "
               "data loss")

    def check_model(self, model: SemanticModel,
                    modules: Sequence[SourceModule],
                    ctx: ProjectContext) -> None:
        """Audit the event registry and the metric catalog."""
        by_relpath = {m.relpath: m for m in modules}
        scanned = [
            facts for facts in model.modules.values()
            if (m := by_relpath.get(facts.relpath)) is not None
            and not is_test_module(m)
        ]
        self._check_events(scanned, by_relpath, ctx)
        self._check_metrics(scanned, by_relpath, ctx)

    # -- events ---------------------------------------------------------

    def _check_events(self, scanned, by_relpath, ctx) -> None:
        registry = next(
            (f for f in scanned if f.event_registry is not None), None)
        if registry is None:
            return
        module = by_relpath[registry.relpath]

        # Resolve each tuple element to its literal event name.
        entries: list[tuple[str, str, int, int]] = []
        for kind, value, line, col in registry.event_registry:
            if kind == "literal":
                entries.append((value, value, line, col))
            else:
                literal = registry.event_constants.get(value)
                if literal is not None:
                    entries.append((value, literal, line, col))

        for const, literal, line, col in entries:
            emitted = False
            consumed = False
            for facts in scanned:
                emit_consts = sum(
                    1 for kind, v, _l, _c in facts.emits
                    if (kind == "const" and v == const)
                    or (kind == "literal" and v == literal))
                if emit_consts:
                    emitted = True
                if facts.relpath == registry.relpath:
                    continue
                refs = facts.const_ref_counts.get(const, 0)
                if refs > emit_consts:
                    consumed = True
                if literal in facts.dispatch_literals:
                    consumed = True
            if not emitted:
                ctx.report_location(
                    self, module, line, col + 1,
                    f'event "{literal}" is declared in EVENT_NAMES but '
                    f"never emitted anywhere in the tree — remove the "
                    f"entry or wire up the producer",
                )
            elif not consumed:
                ctx.report_location(
                    self, module, line, col + 1,
                    f'event "{literal}" is emitted but no module '
                    f"consumes it (no reference to {const} beyond "
                    f"emits, no dispatch on the literal) — it lands in "
                    f"the trace but moves no metric and no report row",
                )

    # -- metrics --------------------------------------------------------

    def _check_metrics(self, scanned, by_relpath, ctx) -> None:
        catalog: dict[str, tuple[str, int, int]] = {}
        for facts in scanned:
            for _kind, name, line, col in facts.metric_regs:
                catalog.setdefault(name, (facts.relpath, line, col))
        if not catalog:
            return
        produced: set[str] = set()
        for facts in scanned:
            for name, _line, _col in facts.metric_gets:
                produced.add(name)

        for name, (relpath, line, col) in sorted(catalog.items()):
            if name in produced:
                continue
            module = by_relpath.get(relpath)
            if module is None:
                continue
            ctx.report_location(
                self, module, line, col + 1,
                f'metric "{name}" is registered in the catalog but no '
                f"code ever looks it up (reg.get(...)) — it will "
                f"render as a permanently empty series; instrument a "
                f"producer or drop the registration",
            )

        for facts in scanned:
            module = by_relpath.get(facts.relpath)
            if module is None:
                continue
            for name, line, col in facts.metric_gets:
                if name in catalog:
                    continue
                ctx.report_location(
                    self, module, line, col + 1,
                    f'metric "{name}" is produced here but never '
                    f"registered in the catalog — the registry will "
                    f"raise on this path at runtime",
                )
