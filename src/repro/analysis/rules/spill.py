"""CL015 — spill ownership: memmap handles live in ``plan/spill.py``.

The spill subsystem (:mod:`repro.plan.spill`) owns every memory-mapped
array in the codebase: creation (``np.lib.format.open_memmap``, raw
``np.memmap``) and read-only reopening (``np.load(...,
mmap_mode=...)``) both go through it, so flush discipline, file
layout under the run directory and the checkpointer's
reference-not-reserialize contract are enforced in exactly one place.
A memmap opened anywhere else bypasses the
:class:`~repro.plan.spill.SpillManager` lifecycle — nothing tracks its
bytes, nothing flushes it before a checkpoint references it, and
``load_candidates`` cannot verify its fingerprint.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module

_OWNER_SUFFIX = "plan/spill.py"


class SpillOwnershipRule(ModuleRule):
    """Flags memmap creation/opening outside ``plan/spill.py``."""

    rule_id = "CL015"
    severity = Severity.ERROR
    summary = ("memory-mapped arrays (np.memmap, open_memmap, "
               "np.load(mmap_mode=...)) are created only in "
               "plan/spill.py — route spill handles through "
               "SpillManager / open_readonly")

    def applies_to(self, module: SourceModule) -> bool:
        """Everywhere except the owning module itself and tests."""
        if is_test_module(module):
            return False
        return not module.relpath.endswith(_OWNER_SUFFIX)

    def begin_module(self, module: SourceModule,
                     ctx: ModuleContext) -> None:
        """Prescan imports to resolve numpy aliases and bare names."""
        self._numpy = set()
        self._numpy_lib_format = set()
        self._memmap_funcs = set()
        self._load_funcs = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self._numpy.add(alias.asname or "numpy")
                    elif alias.name == "numpy.lib.format":
                        self._numpy_lib_format.add(
                            alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if (node.module == "numpy"
                            and alias.name == "memmap"):
                        self._memmap_funcs.add(bound)
                    elif (node.module == "numpy"
                            and alias.name == "load"):
                        self._load_funcs.add(bound)
                    elif (node.module == "numpy.lib.format"
                            and alias.name == "open_memmap"):
                        self._memmap_funcs.add(bound)
                    elif (node.module == "numpy.lib"
                            and alias.name == "format"):
                        self._numpy_lib_format.add(bound)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Classify one call against the spill-ownership contract."""
        chain = dotted_name(node.func)
        if chain is None:
            return
        head, tail = chain[0], chain[1:]
        if self._creates_memmap(head, tail):
            ctx.report(self, node,
                       "memmap created outside plan/spill.py; allocate "
                       "through repro.plan.SpillManager so the spill "
                       "lifecycle (flush, accounting, checkpoint "
                       "reference) stays owned in one place")
        elif self._maps_on_load(head, tail, node):
            ctx.report(self, node,
                       "np.load(mmap_mode=...) outside plan/spill.py; "
                       "reopen spill files with "
                       "repro.plan.spill.open_readonly instead")

    def _creates_memmap(self, head: str, tail: tuple[str, ...]) -> bool:
        """Is this ``np.memmap`` / ``open_memmap`` under any alias?"""
        if not tail:
            return head in self._memmap_funcs
        if head in self._numpy:
            return tail in (("memmap",), ("lib", "format", "open_memmap"))
        if head in self._numpy_lib_format:
            # `import numpy.lib.format as fmt` binds the submodule,
            # `import numpy.lib.format` binds plain `numpy`; either way
            # the chain ends in open_memmap.
            return tail[-1:] == ("open_memmap",)
        return False

    def _maps_on_load(self, head: str, tail: tuple[str, ...],
                      node: ast.Call) -> bool:
        """Is this ``np.load`` under any alias with ``mmap_mode=``?

        Only an explicit non-None ``mmap_mode`` maps the file;
        ``np.load(path)`` and ``mmap_mode=None`` read normally and
        stay legal everywhere.
        """
        is_load = ((tail == ("load",) and head in self._numpy)
                   or (not tail and head in self._load_funcs))
        if not is_load:
            return False
        for keyword in node.keywords:
            if keyword.arg == "mmap_mode":
                is_none = (isinstance(keyword.value, ast.Constant)
                           and keyword.value.value is None)
                return not is_none
        return False
