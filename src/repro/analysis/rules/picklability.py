"""CL005 — picklability: pool workers must be module-level functions.

The parallel blocker (``rules of core/blocker.py``) ships work to a
``multiprocessing`` pool; callables passed to pool methods cross the
process boundary by pickling, and lambdas or closures fail there at
runtime — on the fork path only when a worker actually unpickles them,
which makes the bug platform-dependent.  This rule catches it
statically: the callable handed to a pool/executor method must resolve
to a module-level ``def`` (or an import), never a lambda or a function
nested inside another function.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name

_POOL_METHODS = frozenset({
    "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async", "submit",
})
_POOLISH_NAMES = ("pool", "executor")
_PARTIAL_NAMES = frozenset({"partial"})


class PicklabilityRule(ModuleRule):
    """Flags lambdas/closures handed to multiprocessing pool methods."""

    rule_id = "CL005"
    severity = Severity.ERROR
    summary = ("callables passed to multiprocessing pool / executor "
               "methods must be module-level functions (picklable), "
               "not lambdas or closures")

    def begin_module(self, module: SourceModule,
                     ctx: ModuleContext) -> None:
        """Index module-level vs nested function definitions."""
        self._module_level: set[str] = set()
        self._nested: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_level.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self._module_level.add(bound)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    if (sub is not node
                            and isinstance(sub, (ast.FunctionDef,
                                                 ast.AsyncFunctionDef))):
                        self._nested.add(sub.name)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Inspect the callable argument of pool-shaped method calls."""
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _POOL_METHODS):
            return
        receiver = func.value
        leaf = None
        if isinstance(receiver, ast.Name):
            leaf = receiver.id
        elif isinstance(receiver, ast.Attribute):
            leaf = receiver.attr
        if leaf is None or not any(
                poolish in leaf.lower() for poolish in _POOLISH_NAMES):
            return
        if not node.args:
            return
        self._check_callable(node.args[0], ctx)

    def _check_callable(self, arg: ast.expr, ctx: ModuleContext) -> None:
        """Vet the callable being shipped across the process boundary."""
        if isinstance(arg, ast.Lambda):
            ctx.report(self, arg,
                       "lambda passed to a multiprocessing pool cannot "
                       "be pickled; hoist it to a module-level def")
            return
        if (isinstance(arg, ast.Call) and (chain := dotted_name(arg.func))
                and chain[-1] in _PARTIAL_NAMES and arg.args):
            # functools.partial pickles iff its inner callable does.
            self._check_callable(arg.args[0], ctx)
            return
        if isinstance(arg, ast.Name):
            name = arg.id
            if name in self._nested and name not in self._module_level:
                ctx.report(self, arg,
                           f"function {name!r} is defined inside another "
                           "function; closures cannot cross the process "
                           "boundary — hoist it to module level")
