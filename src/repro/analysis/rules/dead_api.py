"""CL014 — dead public API: exported names someone actually uses.

A public top-level function or class that nothing in the tree imports,
references, or re-exports is untested surface area that silently rots
(the next refactor breaks it and no gate notices).  Working from the
import graph, this rule flags public module-level defs that are:

* never imported by any other scanned module (directly or via a
  re-export chain),
* never referenced as ``module.name`` through a whole-module import,
* never used inside their own module either,
* not re-exported by any package ``__init__`` (that is the deliberate
  external API surface — tests and downstream users consume it), and
* not listed in their own module's ``__all__`` (an explicit export is
  a statement of intent; keeping it honest is ``__init__``'s job).

It also flags ``__all__`` entries that do not resolve to anything
defined or imported in the module — a typo there breaks
``from m import *`` and API docs silently.

Absence-of-reference reasoning: whole-program scans only.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..findings import Severity
from ..model import SemanticModel
from ..source import SourceModule
from .base import ProjectContext, SemanticRule, is_test_module


class DeadApiRule(SemanticRule):
    """Flags unreferenced public defs and dangling __all__ entries."""

    rule_id = "CL014"
    severity = Severity.WARNING
    requires_whole_program = True
    summary = ("a public top-level def/class that no scanned module "
               "imports, references or re-exports (and its own module "
               "never uses) is dead API surface — delete it, make it "
               "private, or export it deliberately via __all__/"
               "__init__; __all__ entries must resolve to real names")

    def check_model(self, model: SemanticModel,
                    modules: Sequence[SourceModule],
                    ctx: ProjectContext) -> None:
        """Resolve every cross-module reference, then diff the exports."""
        by_relpath = {m.relpath: m for m in modules}
        scanned = {
            facts.relpath: facts for facts in model.modules.values()
            if (m := by_relpath.get(facts.relpath)) is not None
            and not is_test_module(m)
        }

        referenced: set[tuple[str, str]] = set()
        reexported: set[tuple[str, str]] = set()
        for facts in model.modules.values():
            # Aliases that name a *module* (``import a.b as x`` or
            # ``from a import b`` where ``b`` is a submodule): their
            # attribute accesses are cross-module references too.
            module_aliases: dict[str, str] = {}
            for binding in facts.imports:
                if binding.symbol is None:
                    module_aliases[binding.alias] = binding.module
                    continue
                target = self._chase(model, binding.module,
                                     binding.symbol)
                if target is None:
                    continue
                if target[1] == "":
                    module_aliases[binding.alias] = target[0]
                    continue
                referenced.add(target)
                if facts.is_package:
                    reexported.add(target)
            for root, attr in facts.attr_refs:
                bound = module_aliases.get(root)
                if bound is None:
                    continue
                target = self._chase(model, bound, attr)
                if target is not None and target[1] != "":
                    referenced.add(target)

        for relpath, facts in sorted(scanned.items()):
            module = by_relpath[relpath]
            self._check_all_entries(facts, module, ctx)
            if facts.is_package or facts.dotted.endswith("__main__"):
                continue
            exported = set(facts.exports or ())
            for name, line in sorted(facts.public_defs.items()):
                if name in exported:
                    continue
                key = (facts.dotted, name)
                if key in referenced or key in reexported:
                    continue
                if name in facts.name_loads:
                    continue
                ctx.report_location(
                    self, module, line, 1,
                    f"public {name!r} is never imported, referenced or "
                    f"re-exported anywhere in the scanned tree — "
                    f"delete it, prefix it with '_', or export it "
                    f"deliberately (__all__ here, or a package "
                    f"__init__)",
                )

    def _check_all_entries(self, facts, module: SourceModule,
                           ctx: ProjectContext) -> None:
        """Every ``__all__`` entry must resolve to a local definition."""
        if facts.exports is None:
            return
        defined = (set(facts.functions) | set(facts.classes)
                   | set(facts.public_defs)
                   | {b.alias for b in facts.imports}
                   | facts.module_assigns)
        for name in facts.exports:
            if name in defined:
                continue
            ctx.report_location(
                self, module, 1, 1,
                f"__all__ lists {name!r} but the module neither "
                f"defines nor imports it — `from {facts.dotted} "
                f"import *` and API docs are silently broken",
            )

    @staticmethod
    def _chase(model: SemanticModel, module: str,
               symbol: str) -> tuple[str, str] | None:
        """Follow re-export chains to the defining (module, symbol)."""
        return model.resolve_export(module, symbol)
