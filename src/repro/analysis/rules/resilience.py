"""CL008 — swallowed crowd errors: failures must propagate or be seen.

The robustness subsystem's contract (``docs/robustness.md``) is that
every crowd-platform failure either propagates as a typed exception or
is surfaced through the engine's event bus — a silent ``except
CrowdError: pass`` hides exactly the faults the resilient gateway and
the chaos harness exist to exercise, and turns a platform outage into a
mystery hang or a wrong label count.  This rule flags ``except`` clauses
that catch :class:`~repro.exceptions.CrowdError` (or its transient /
unavailable subclasses) without re-raising *some* exception or emitting
an event inside the handler.  Handlers for
:class:`~repro.exceptions.BudgetExhaustedError` are exempt: running out
of money is graceful degradation by design, not a hidden fault.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module

_CROWD_ERRORS = frozenset({
    "CrowdError",
    "TransientCrowdError",
    "AnswerTimeoutError",
    "HitExpiredError",
    "CrowdUnavailableError",
})
"""Exception names whose handlers must re-raise or emit.

``BudgetExhaustedError`` is deliberately absent — the pipeline catches
it to wrap up gracefully, which is the documented behaviour, not a
swallowed fault.
"""

_EMIT_METHODS = frozenset({"emit", "report", "warning", "error"})
"""Call leaves that count as surfacing the failure to an observer."""


def _caught_crowd_names(node: ast.ExceptHandler) -> list[str]:
    """The crowd-error names this handler catches (possibly none).

    Understands bare names, dotted names and tuples of either; a bare
    ``except:`` or ``except Exception:`` is CL006's business, not ours.
    """
    if node.type is None:
        return []
    exprs = (list(node.type.elts) if isinstance(node.type, ast.Tuple)
             else [node.type])
    caught = []
    for expr in exprs:
        chain = dotted_name(expr)
        if chain is not None and chain[-1] in _CROWD_ERRORS:
            caught.append(chain[-1])
    return caught


def _handler_surfaces(node: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise or emit somewhere?

    Any ``raise`` statement counts (including conditional ones — the
    retry loops re-raise only on the final attempt, which is exactly the
    sanctioned pattern), as does any call whose final attribute is an
    observer-style method (``bus.emit``, ``logger.warning``, …).
    """
    for child in ast.walk(ast.Module(body=node.body, type_ignores=[])):
        if isinstance(child, ast.Raise):
            return True
        if isinstance(child, ast.Call):
            chain = dotted_name(child.func)
            if chain is not None and chain[-1] in _EMIT_METHODS:
                return True
    return False


class SwallowedCrowdErrorRule(ModuleRule):
    """Flags ``except CrowdError`` handlers that hide the failure."""

    rule_id = "CL008"
    severity = Severity.ERROR
    summary = ("an except clause catching CrowdError or a transient "
               "subclass must re-raise or emit an event; silently "
               "swallowing platform failures defeats the robustness "
               "subsystem")

    def applies_to(self, module: SourceModule) -> bool:
        """Library code only; tests legitimately assert-and-swallow."""
        return not is_test_module(module)

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: ModuleContext) -> None:
        """Check one handler: caught crowd error => must surface it."""
        caught = _caught_crowd_names(node)
        if not caught:
            return
        if _handler_surfaces(node):
            return
        ctx.report(
            self, node,
            f"except {', '.join(caught)} swallows the platform failure; "
            "re-raise it (possibly after cleanup) or emit an event on "
            "the engine bus so the fault stays observable",
        )
