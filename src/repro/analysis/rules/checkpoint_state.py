"""CL011 — checkpoint completeness: mutable state must be serialized.

Kill/resume bit-identity (the staged engine's headline contract) only
holds if every piece of state that *changes during a run* rides inside
``state_dict()``.  The failure mode is silent: a counter assigned in
``__init__`` and incremented in some method but missing from
``state_dict``/``load_state`` simply restarts at its initial value
after resume, and nothing crashes — the resumed run just diverges.

For every class implementing the checkpoint protocol (both
``state_dict`` and ``load_state``), every attribute assigned in
``__init__`` *and reassigned in any other method* must be referenced in
``state_dict`` or ``load_state`` (as ``self.<attr>`` or as a string
key, with or without a leading underscore), or be annotated
``# corlint: derived`` on its ``__init__`` assignment line — the
declared escape hatch for state that is recomputed on resume
(injected callbacks, caches rebuilt from config).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..findings import Severity
from ..model import SemanticModel
from ..source import SourceModule
from .base import ProjectContext, SemanticRule, is_test_module


def _matches(attr: str, refs: set[str]) -> bool:
    """Does ``refs`` cover ``attr`` (modulo a leading underscore)?"""
    candidates = {attr, attr.lstrip("_"), "_" + attr}
    return bool(candidates & refs)


class CheckpointStateRule(SemanticRule):
    """Flags mutable ``__init__`` attributes absent from state_dict."""

    rule_id = "CL011"
    severity = Severity.ERROR
    summary = ("every attribute a checkpointable class (state_dict + "
               "load_state) assigns in __init__ and mutates elsewhere "
               "must be serialized in state_dict/load_state or marked "
               "`# corlint: derived` — unserialized mutable state "
               "silently resets on resume")

    def check_model(self, model: SemanticModel,
                    modules: Sequence[SourceModule],
                    ctx: ProjectContext) -> None:
        """Audit every checkpoint-protocol class in the scanned tree."""
        by_relpath = {m.relpath: m for m in modules}
        for facts in model.modules.values():
            module = by_relpath.get(facts.relpath)
            if module is None or is_test_module(module):
                continue
            for cls in facts.classes.values():
                if not cls.has_state_protocol:
                    continue
                refs = cls.state_refs
                for attr in cls.init_attrs:
                    if attr.derived:
                        continue
                    mutator = cls.mutated_attrs.get(attr.name)
                    if mutator is None:
                        continue
                    if _matches(attr.name, refs):
                        continue
                    ctx.report_location(
                        self, module, attr.line, attr.column + 1,
                        f"{cls.name}.{attr.name} is reassigned in "
                        f"{mutator}() but never serialized by "
                        f"state_dict/load_state — a resumed run "
                        f"silently resets it; serialize it or mark "
                        f"this line `# corlint: derived` if it is "
                        f"recomputed on resume",
                    )
