"""CL002 — crowd accounting: all labels flow through LabelingService.

Section 8's cents-per-question budget only means something if every
crowd answer is metered.  ``LabelingService`` is the single entry point
that meters cost, enforces the budget and feeds the label cache; a
stray ``platform.ask(pair)`` anywhere else produces an unbilled,
uncached answer that silently skews both the spend report and the
cache-reuse statistics.

Two contexts legitimately touch ``ask``: the platform layer itself
(``crowd/base.py``, ``crowd/service.py``) and decorator platforms —
classes deriving from ``CrowdPlatform`` (or a ``*Crowd``/``*Platform``
base) that forward ``ask`` to an inner platform.  Those are *below* the
service in the stack, so the service still meters everything they do.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module

_ANSWER_METHODS = frozenset({"ask", "ask_many"})
_EXEMPT_SUFFIXES = ("crowd/service.py", "crowd/base.py")


class AccountingRule(ModuleRule):
    """Flags CrowdPlatform answer-path calls outside the service layer."""

    rule_id = "CL002"
    severity = Severity.ERROR
    summary = ("crowd answers must route through LabelingService; direct "
               "CrowdPlatform.ask/ask_many calls bypass cost metering, "
               "the budget and the label cache")

    def applies_to(self, module: SourceModule) -> bool:
        """Everywhere except the platform abstraction and tests."""
        if is_test_module(module):
            return False
        return not module.relpath.endswith(_EXEMPT_SUFFIXES)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag ``<expr>.ask(...)`` unless inside a platform subclass."""
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _ANSWER_METHODS):
            return
        if self._in_platform_class(ctx):
            return
        ctx.report(self, node,
                   f"direct CrowdPlatform.{func.attr}() bypasses "
                   "LabelingService accounting (cost metering, budget, "
                   "label cache); use LabelingService.label_batch/"
                   "label_all")

    @staticmethod
    def _in_platform_class(ctx: ModuleContext) -> bool:
        """Is the call inside a class deriving from the platform layer?

        Decorator platforms (``_CountingPlatform(CrowdPlatform)`` etc.)
        forward ``ask`` to an inner platform by design; they sit below
        the service, which still meters every answer they produce.
        """
        enclosing = ctx.enclosing_class()
        if enclosing is None:
            return False
        for base in enclosing.bases:
            chain = dotted_name(base)
            if chain is None:
                continue
            leaf = chain[-1]
            if leaf.endswith(("CrowdPlatform", "Crowd", "Platform")):
                return True
        return False
