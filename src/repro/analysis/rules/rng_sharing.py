"""CL007 — RNG stream sharing: one generator must not feed two stages.

A ``numpy`` ``Generator`` is a single stream of draws: when two pipeline
stages are constructed around the *same* ``self.rng``, every draw one
stage makes shifts the numbers the other sees, so an extra draw in the
blocker silently changes the matcher's training samples (the coupling
the staged engine's per-stage ``SeedSequence`` streams exist to remove —
see ``repro.engine.context.RunContext.rng``).  This rule flags any
function that hands ``self.rng`` (or ``self._rng``) to two or more
constructor-like calls; each stage should instead derive its own named
stream from the run's root seed.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module, \
    relpath_matches

_RNG_ATTRS = frozenset({"rng", "_rng"})


def _rng_attribute(node: ast.expr) -> bool:
    """Is ``node`` a ``self.rng`` / ``self._rng`` attribute access?"""
    chain = dotted_name(node)
    return (chain is not None and len(chain) == 2
            and chain[0] == "self" and chain[1] in _RNG_ATTRS)


def _constructor_name(node: ast.Call) -> str | None:
    """The callee's name if it looks like a class constructor, else None.

    "Looks like" means the last dotted segment is Capitalized — the
    repo's stage classes (``Blocker``, ``ActiveLearningMatcher``, …) all
    are, and lower-case helpers that *consume* a generator without
    retaining it are exactly what the rule must not flag.
    """
    chain = dotted_name(node.func)
    if chain is None:
        return None
    leaf = chain[-1]
    return leaf if leaf[:1].isupper() else None


class RngSharingRule(ModuleRule):
    """Flags one ``self.rng`` shared across several stage constructors."""

    rule_id = "CL007"
    severity = Severity.WARNING
    summary = ("a single self.rng handed to two or more stage "
               "constructors couples their draw sequences; derive one "
               "named SeedSequence stream per stage instead")

    def applies_to(self, module: SourceModule) -> bool:
        """Orchestration code only: core/ and engine/, never tests."""
        return (relpath_matches(module, "core|engine")
                and not is_test_module(module))

    def begin_module(self, module: SourceModule,
                     ctx: ModuleContext) -> None:
        """Reset the per-function constructor-call accumulator."""
        self._shared: dict[int, list[tuple[str, ast.Call]]] = {}

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Record constructor calls that receive ``self.rng``."""
        name = _constructor_name(node)
        if name is None:
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        if not any(_rng_attribute(value) for value in values):
            return
        function = ctx.enclosing_function()
        if function is None:
            return
        self._shared.setdefault(id(function), []).append((name, node))

    def finish_module(self, module: SourceModule,
                      ctx: ModuleContext) -> None:
        """Report every function that shared one stream across stages."""
        for calls in self._shared.values():
            if len(calls) < 2:
                continue
            names = ", ".join(name for name, _ in calls)
            for name, node in calls[1:]:
                ctx.report(
                    self, node,
                    f"self.rng feeds {len(calls)} constructors here "
                    f"({names}); a shared generator couples their draw "
                    "sequences — give each stage its own stream (e.g. "
                    "RunContext.rng(name))",
                )
        self._shared = {}
