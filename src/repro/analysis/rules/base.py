"""Rule plumbing: base classes, the walk context and dotted-name helpers.

A :class:`ModuleRule` declares ``visit_<NodeType>`` handlers; the engine
walks each file's AST exactly once and dispatches every node to the
handlers of every applicable rule.  A :class:`ProjectRule` instead sees
all parsed modules at once, for cross-file invariants (CL003).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence

from ..findings import Finding, Severity
from ..source import SourceModule


def dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    """The dotted parts of a Name/Attribute chain, or None.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``.
    Chains rooted in anything but a plain name (calls, subscripts)
    return None — they cannot be resolved statically.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def relpath_matches(module: SourceModule, segments: str) -> bool:
    """Does the module path contain one of the ``|``-joined segments?

    Matches whole path components (``core`` matches ``src/repro/core/``
    but not ``score/``), which is how rules scope themselves to
    subsystems without caring where the package root sits.
    """
    return re.search(rf"(^|/)(?:{segments})/", module.relpath) is not None


def is_test_module(module: SourceModule) -> bool:
    """Test files are exempt from the domain rules (CL001/CL002)."""
    name = module.path.name
    return (name.startswith("test_") or name == "conftest.py"
            or relpath_matches(module, "tests"))


class ModuleContext:
    """Per-module walk state handed to every rule handler.

    Tracks the ancestor chain (outermost first, not including the node
    being visited) so handlers can ask about their enclosing class or
    function, and collects the findings the rules report.
    """

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.ancestors: list[ast.AST] = []
        self.findings: list[Finding] = []

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        """Record a finding for ``rule`` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(
            path=self.module.relpath,
            line=line,
            column=column,
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
            line_content=self.module.line_content(line),
        ))

    def enclosing_class(self) -> ast.ClassDef | None:
        """The nearest enclosing class definition, if any."""
        for node in reversed(self.ancestors):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def enclosing_function(self) -> ast.AST | None:
        """The nearest enclosing (async) function or lambda, if any."""
        for node in reversed(self.ancestors):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return node
        return None


class ProjectContext:
    """Finding collector for cross-module (project) rules.

    When the engine has built the whole-program semantic model (any
    :class:`SemanticRule` active), it is exposed here as :attr:`model`.
    """

    def __init__(self, model=None) -> None:
        self.findings: list[Finding] = []
        self.model = model

    def report(self, rule: "Rule", module: SourceModule, node: ast.AST,
               message: str) -> None:
        """Record a finding for ``rule`` in ``module`` at ``node``."""
        self.report_location(rule, module, getattr(node, "lineno", 1),
                             getattr(node, "col_offset", 0) + 1, message)

    def report_location(self, rule: "Rule", module: SourceModule,
                        line: int, column: int, message: str) -> None:
        """Record a finding at an explicit (line, column) location.

        Semantic rules work from serialized model facts rather than
        live AST nodes, so they carry plain coordinates.
        """
        self.findings.append(Finding(
            path=module.relpath,
            line=line,
            column=column,
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
            line_content=module.line_content(line),
        ))


class Rule:
    """Common surface of every corlint rule.

    Subclasses set :attr:`rule_id`, :attr:`severity` and
    :attr:`summary`, and override :meth:`applies_to` to scope
    themselves to a path subset.
    """

    rule_id: str = "CL000"
    severity: Severity = Severity.ERROR
    summary: str = ""

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule runs on ``module`` (default: every file)."""
        return True


class ModuleRule(Rule):
    """A rule driven by per-node ``visit_<NodeType>`` handlers."""

    def begin_module(self, module: SourceModule,
                     ctx: ModuleContext) -> None:
        """Hook before the walk — e.g. prescan imports for aliases."""

    def finish_module(self, module: SourceModule,
                      ctx: ModuleContext) -> None:
        """Hook after the walk — e.g. flush accumulated state."""

    def handlers(self) -> dict[str, object]:
        """Map of AST node-type name -> bound handler method."""
        out: dict[str, object] = {}
        for name in dir(self):
            if name.startswith("visit_"):
                out[name[len("visit_"):]] = getattr(self, name)
        return out


class ProjectRule(Rule):
    """A rule over the whole scanned file set (cross-module checks)."""

    def check_project(self, modules: Sequence[SourceModule],
                      ctx: ProjectContext) -> None:
        """Inspect all modules at once, reporting into ``ctx``."""
        raise NotImplementedError


class SemanticRule(ProjectRule):
    """A rule driven by the compiled whole-program semantic model.

    The engine builds one :class:`~repro.analysis.model.SemanticModel`
    per run (cached per file, like findings) whenever at least one
    semantic rule is active, and hands it to :meth:`check_model`.
    Rules whose reasoning is *absence of reference* across the tree
    (dead API, unconsumed events) set :attr:`requires_whole_program`;
    the engine then skips them on partial scans (``--changed``, single
    files) where a missing reference proves nothing.
    """

    requires_whole_program: bool = False

    def check_project(self, modules: Sequence[SourceModule],
                      ctx: ProjectContext) -> None:
        """Dispatch to :meth:`check_model` when a model is available."""
        if ctx.model is None:
            return
        if self.requires_whole_program and not ctx.model.whole_program:
            return
        self.check_model(ctx.model, modules, ctx)

    def check_model(self, model, modules: Sequence[SourceModule],
                    ctx: ProjectContext) -> None:
        """Inspect the semantic model, reporting into ``ctx``."""
        raise NotImplementedError


def iter_string_keys(node: ast.Dict) -> Iterable[tuple[str, ast.AST]]:
    """(value, key-node) for every plain-string key of a dict literal."""
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            yield key.value, key
