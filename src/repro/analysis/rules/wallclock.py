"""CL013 — wall-clock purity: stages never transitively read clocks.

CL001 bans direct wall-clock reads inside the algorithmic subsystems,
but its scope is per-file: a stage can still reach ``perf_counter``
through a helper living in ``data/``, ``exec/`` or anywhere else CL001
does not look.  This rule works from the call graph instead: starting
from every engine stage entry point (a class whose name ends in
``Stage`` exposing a ``run`` method), it walks the transitive callee
set; reaching a function that reads the wall clock (``time.time``,
``perf_counter``, ``datetime.now``, …) is a finding — anchored at the
offending call, with the stage-to-clock chain in the message.

The wall-clock profiler is the one sanctioned exception: modules whose
path contains ``profiling`` are the allowlist (their output is
explicitly excluded from checkpoints and replay comparisons — see
``docs/observability.md``).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..findings import Severity
from ..model import SemanticModel
from ..source import SourceModule
from .base import ProjectContext, SemanticRule, is_test_module

_ALLOWLIST_SEGMENT = "profiling"


def _allowlisted(relpath: str) -> bool:
    """Profiler modules may read the wall clock by design."""
    return _ALLOWLIST_SEGMENT in relpath.rsplit("/", 1)[-1]


class WallClockPurityRule(SemanticRule):
    """Flags wall-clock reads reachable from deterministic stages."""

    rule_id = "CL013"
    severity = Severity.ERROR
    summary = ("no time.time/perf_counter/datetime.now reachable "
               "through the call graph from a deterministic engine "
               "stage (*Stage.run), outside the profiler allowlist — "
               "replay and kill/resume byte-identity depend on it")

    def check_model(self, model: SemanticModel,
                    modules: Sequence[SourceModule],
                    ctx: ProjectContext) -> None:
        """BFS from stage entry points; report reachable clock reads."""
        by_relpath = {m.relpath: m for m in modules}

        entries: list[str] = []
        for key, (facts, func) in model.functions.items():
            module = by_relpath.get(facts.relpath)
            if module is None or is_test_module(module):
                continue
            if "." not in func.qualname:
                continue
            owner, method = func.qualname.rsplit(".", 1)
            if owner.endswith("Stage") and method == "run":
                entries.append(key)
        if not entries:
            return

        reported: set[tuple[str, int, int]] = set()
        for entry in sorted(entries):
            seen: set[str] = set()
            # (node, path-so-far) — path kept short for the message.
            stack: list[tuple[str, tuple[str, ...]]] = [(entry, ())]
            while stack:
                node, path = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                found = model.functions.get(node)
                if found is None:
                    continue
                facts, func = found
                if _allowlisted(facts.relpath):
                    continue
                chain = (*path, func.qualname)
                for line, col, what in func.clock_calls:
                    key = (facts.relpath, line, col)
                    if key in reported:
                        continue
                    reported.add(key)
                    module = by_relpath.get(facts.relpath)
                    if module is None:
                        continue
                    ctx.report_location(
                        self, module, line, col + 1,
                        f"{what}() is reachable from the deterministic "
                        f"stage entry {chain[0]} (via "
                        f"{' -> '.join(chain)}) — wall-clock reads "
                        f"break replay byte-identity; pass timings in, "
                        f"or move this into the profiler",
                    )
                for edge in model.callees.get(node, []):
                    stack.append((edge.callee, chain))
