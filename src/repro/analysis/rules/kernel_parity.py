"""CL003 — kernel parity: every library measure has a batched kernel.

PR 1's contract: ``features/batch.py`` provides a bit-exact column-wise
kernel for every measure registered in ``features/library.py``, and no
kernel exists without a measure (a dead kernel is an untested one).
This is a cross-module check: the rule parses both files' registries —
the ``_MEASURE_COSTS`` dict, the ``_KERNELS`` dict, plus the measures
``kernel_for`` special-cases with ``measure == "..."`` comparisons —
and reports any asymmetry at the exact registry line that declares the
orphaned name.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence

from ..findings import Severity
from ..source import SourceModule
from .base import ProjectContext, ProjectRule, iter_string_keys

_LIBRARY_SUFFIX = "features/library.py"
_BATCH_SUFFIX = "features/batch.py"


def _dict_assignment(tree: ast.Module, name: str) -> ast.Dict | None:
    """The dict literal assigned to module-level ``name``, if any."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == name
                    and isinstance(value, ast.Dict)):
                return value
    return None


def _special_cased_measures(tree: ast.Module) -> set[str]:
    """Measure names ``kernel_for`` handles with explicit branches.

    Collected from ``measure == "<name>"`` comparisons inside the
    ``kernel_for`` function (``exact`` and ``cosine_tfidf`` today).
    """
    out: set[str] = set()
    for node in tree.body:
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "kernel_for"):
            continue
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Compare) and len(sub.ops) == 1
                    and isinstance(sub.ops[0], ast.Eq)):
                continue
            operands = [sub.left, *sub.comparators]
            names = [n for n in operands if isinstance(n, ast.Name)]
            consts = [c for c in operands
                      if isinstance(c, ast.Constant)
                      and isinstance(c.value, str)]
            if any(n.id == "measure" for n in names):
                out.update(c.value for c in consts)
    return out


class KernelParityRule(ProjectRule):
    """Cross-checks the measure registry against the kernel registry."""

    rule_id = "CL003"
    severity = Severity.ERROR
    summary = ("every measure in features/library.py _MEASURE_COSTS must "
               "have a batched kernel in features/batch.py (_KERNELS or a "
               "kernel_for special case), and vice versa")

    def check_project(self, modules: Sequence[SourceModule],
                      ctx: ProjectContext) -> None:
        """Run the parity check when both registry files were scanned."""
        library = self._find(modules, _LIBRARY_SUFFIX)
        batch = self._find(modules, _BATCH_SUFFIX)
        if library is None or batch is None:
            return
        measures_dict = _dict_assignment(library.tree, "_MEASURE_COSTS")
        kernels_dict = _dict_assignment(batch.tree, "_KERNELS")
        if measures_dict is None or kernels_dict is None:
            missing_in = library if measures_dict is None else batch
            name = ("_MEASURE_COSTS" if measures_dict is None
                    else "_KERNELS")
            ctx.report(self, missing_in, missing_in.tree,
                       f"registry dict {name} not found as a module-level "
                       "dict literal; the kernel-parity contract cannot "
                       "be checked")
            return

        special = _special_cased_measures(batch.tree)
        measure_keys = dict(iter_string_keys(measures_dict))
        kernel_keys = dict(iter_string_keys(kernels_dict))
        kernel_names = set(kernel_keys) | special

        for measure, key_node in sorted(measure_keys.items()):
            if measure not in kernel_names:
                ctx.report(self, library, key_node,
                           f"measure {measure!r} has no batched kernel in "
                           f"{_BATCH_SUFFIX} (_KERNELS entry or kernel_for "
                           "special case); the blocking hot path would "
                           "fall back to the scalar loop")
        for kernel, key_node in sorted(kernel_keys.items()):
            if kernel not in measure_keys:
                ctx.report(self, batch, key_node,
                           f"kernel {kernel!r} has no measure in "
                           f"{_LIBRARY_SUFFIX} _MEASURE_COSTS; a kernel "
                           "outside the library is never parity-tested")

    @staticmethod
    def _find(modules: Sequence[SourceModule],
              suffix: str) -> SourceModule | None:
        """The scanned module whose path ends with ``suffix``, if any."""
        for module in modules:
            if module.relpath.endswith(suffix):
                return module
        return None
