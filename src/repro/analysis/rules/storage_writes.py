"""CL016 — storage ownership: durable-write plumbing lives in ``storage/``.

The durability subsystem (:mod:`repro.storage`) owns the atomic-write
discipline for every run-directory artifact: stage to a ``.tmp``
sibling, fsync the file, ``os.replace`` over the target, fsync the
parent directory, and record the bytes in the run manifest.  The repo
used to carry six hand-rolled copies of that dance (checkpoints,
shards, metrics, spans, profiles) — each one a chance to forget a
step, and none of them fed the manifest.  This rule keeps the dance in
one place: a raw ``os.replace`` / ``os.rename`` / ``os.fsync`` call
outside ``repro/storage/`` is a new hand-rolled copy in the making, so
it is flagged with a pointer at the owning helpers
(:func:`repro.storage.writer.atomic_write_json` and friends for
writes, :func:`repro.storage.recovery.quarantine_artifact` for
moving corrupt artifacts aside).
"""

from __future__ import annotations

import ast

from ..findings import Severity
from ..source import SourceModule
from .base import ModuleContext, ModuleRule, dotted_name, is_test_module

_OWNER_PACKAGE = "repro/storage/"
_OWNED_OS_FUNCS = frozenset({"replace", "rename", "fsync"})


class StorageOwnershipRule(ModuleRule):
    """Flags raw atomic-write plumbing outside ``repro/storage/``."""

    rule_id = "CL016"
    severity = Severity.ERROR
    summary = ("os.replace / os.rename / os.fsync outside repro/storage "
               "hand-rolls the durable-write dance — route artifact "
               "writes through repro.storage.writer (atomic_write_*) "
               "and corrupt-file moves through "
               "repro.storage.recovery.quarantine_artifact")

    def applies_to(self, module: SourceModule) -> bool:
        """Everywhere except the owning package itself and tests."""
        if is_test_module(module):
            return False
        return _OWNER_PACKAGE not in module.relpath

    def begin_module(self, module: SourceModule,
                     ctx: ModuleContext) -> None:
        """Prescan imports to resolve ``os`` aliases and bare names."""
        self._os_modules = set()
        self._bare_funcs: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "os":
                        self._os_modules.add(alias.asname or "os")
                    elif alias.name == "os.path":
                        # ``import os.path`` binds plain ``os``.
                        if alias.asname is None:
                            self._os_modules.add("os")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module != "os":
                    continue
                for alias in node.names:
                    if alias.name in _OWNED_OS_FUNCS:
                        bound = alias.asname or alias.name
                        self._bare_funcs[bound] = alias.name

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Classify one call against the storage-ownership contract."""
        chain = dotted_name(node.func)
        if chain is None:
            return
        func = self._owned_function(chain)
        if func is None:
            return
        ctx.report(self, node,
                   f"os.{func} outside repro/storage hand-rolls the "
                   "durable-write discipline; write artifacts through "
                   "repro.storage.writer and move corrupt files with "
                   "repro.storage.recovery.quarantine_artifact so the "
                   "fsync/replace/manifest steps stay owned in one "
                   "place")

    def _owned_function(self, chain: tuple[str, ...]) -> str | None:
        """The owned ``os`` function this chain calls, if any alias."""
        if (len(chain) == 2 and chain[0] in self._os_modules
                and chain[1] in _OWNED_OS_FUNCS):
            return chain[1]
        if len(chain) == 1 and chain[0] in self._bare_funcs:
            return self._bare_funcs[chain[0]]
        return None
