"""CL010 — RNG-stream flow: a named stage stream stays in its stage.

CL007 catches one ``self.rng`` shared across two constructors in the
*same function*; the staged engine's real invariant is stronger: the
generator created as ``ctx.rng("blocker")`` must never be drawn from by
matcher/estimator/locator code, no matter how many helper calls it
passes through (every draw one stage makes from another stage's stream
reorders that stage's numbers — exactly the coupling the named streams
of :class:`~repro.engine.context.RunContext` exist to remove).  This
rule tags every ``*.rng("<name>")`` value at its creation site and
propagates the tag through the call graph wherever the value is handed
on as a plain argument; a tag arriving at a function or constructor
whose name places it in a *different* stage is a finding, anchored at
the stream's creation site.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from ..findings import Severity
from ..model import SemanticModel, bind_arguments
from ..source import SourceModule
from .base import ProjectContext, SemanticRule, is_test_module

_STAGE_TOKENS = {
    "block": "blocker", "blocker": "blocker", "blocking": "blocker",
    "matcher": "matcher", "matching": "matcher",
    "estimate": "estimator", "estimator": "estimator",
    "locate": "locator", "locator": "locator",
}

_TOKEN_SPLIT = re.compile(r"[^A-Za-z0-9]+|(?<=[a-z0-9])(?=[A-Z])")


def _stage_of(name: str) -> str | None:
    """The stage a symbol name belongs to, by token match, or None."""
    for token in _TOKEN_SPLIT.split(name):
        stage = _STAGE_TOKENS.get(token.lower())
        if stage is not None:
            return stage
    return None


class RngFlowRule(SemanticRule):
    """Traces named RNG streams through the call graph across stages."""

    rule_id = "CL010"
    severity = Severity.ERROR
    summary = ("a named per-stage RNG stream (ctx.rng(\"<stage>\")) must "
               "not flow — directly or through helpers — into another "
               "stage's functions or constructors; draws from a foreign "
               "stream couple the two stages' sequences")

    def check_model(self, model: SemanticModel,
                    modules: Sequence[SourceModule],
                    ctx: ProjectContext) -> None:
        """Seed stream tags at creation sites and propagate to fixpoint."""
        by_relpath = {m.relpath: m for m in modules}
        # node key -> param name -> {(stream, origin relpath, line, col)}
        tagged: dict[str, dict[str, set[tuple[str, str, int, int]]]] = {}
        reported: set[tuple] = set()
        worklist: list[str] = []

        def tag(callee: str, param: str,
                flows: set[tuple[str, str, int, int]]) -> None:
            params = tagged.setdefault(callee, {})
            known = params.setdefault(param, set())
            fresh = flows - known
            if not fresh:
                return
            known |= fresh
            worklist.append(callee)
            self._check_consumer(model, by_relpath, callee, fresh,
                                 reported, ctx)

        for edge in model.edges:
            caller_entry = model.functions.get(edge.caller)
            if caller_entry is None:
                continue
            caller = caller_entry[1]
            origin_module = by_relpath.get(edge.module)
            if origin_module is None or is_test_module(origin_module):
                continue
            for param, arg in bind_arguments(model, edge):
                if arg.kind == "stream":
                    stage = _stage_of(arg.detail)
                    if stage is None:
                        continue
                    tag(edge.callee, param,
                        {(arg.detail, edge.module, arg.line,
                          arg.column)})
                elif arg.kind == "name":
                    local = caller.stream_locals.get(arg.detail)
                    if local is not None:
                        stream, line, col = local
                        if _stage_of(stream) is None:
                            continue
                        tag(edge.callee, param,
                            {(stream, edge.module, line, col)})

        while worklist:
            current = worklist.pop()
            params = tagged.get(current, {})
            for edge in model.callees.get(current, []):
                for param, arg in bind_arguments(model, edge):
                    if arg.kind != "name":
                        continue
                    flows = params.get(arg.detail)
                    if flows:
                        tag(edge.callee, param, set(flows))

    def _check_consumer(self, model: SemanticModel,
                        by_relpath: dict, callee: str,
                        flows: set[tuple[str, str, int, int]],
                        reported: set, ctx: ProjectContext) -> None:
        """Flag flows whose stream stage differs from the consumer's."""
        entry = model.functions.get(callee)
        if entry is None:
            return
        facts, func = entry
        owner = (func.qualname.split(".")[0] if "." in func.qualname
                 else func.name)
        consumer_stage = _stage_of(owner)
        if consumer_stage is None:
            return
        for stream, origin_rel, line, col in flows:
            stream_stage = _stage_of(stream)
            if stream_stage is None or stream_stage == consumer_stage:
                continue
            key = (stream, origin_rel, line, col, func.qualname)
            if key in reported:
                continue
            reported.add(key)
            module = by_relpath.get(origin_rel)
            if module is None:
                continue
            ctx.report_location(
                self, module, line, col + 1,
                f'RNG stream "{stream}" created here flows into '
                f'{facts.dotted}.{func.qualname} (stage '
                f'"{consumer_stage}"); per-stage streams must not cross '
                f'stages — that code should draw from its own '
                f'ctx.rng("{consumer_stage}") stream instead',
            )
