"""CL006 — generic hygiene: mutable defaults and shadowed builtins.

Two classic Python traps with outsized blast radius in a long-lived
pipeline: a mutable default argument is shared across *every* call
(state leaks between supposedly independent Corleone runs), and
rebinding a builtin name (``list``, ``filter``, ``id``...) makes later
code in the same scope silently call the wrong thing.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from .base import ModuleContext, ModuleRule

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

_SHADOWABLE_BUILTINS = frozenset({
    "list", "dict", "set", "tuple", "str", "int", "float", "bool",
    "bytes", "type", "id", "input", "filter", "map", "sum", "min", "max",
    "all", "any", "len", "next", "hash", "vars", "object", "print",
    "sorted", "range", "zip", "open", "format", "dir", "iter", "repr",
    "abs", "round", "bin", "hex", "oct",
})


def _is_mutable_literal(node: ast.expr) -> bool:
    """Is a default-argument expression a freshly built mutable object?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


class GenericHygieneRule(ModuleRule):
    """Flags mutable default arguments and shadowed builtin names."""

    rule_id = "CL006"
    severity = Severity.WARNING
    summary = ("no mutable default arguments (shared across calls) and "
               "no rebinding of builtin names")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: ModuleContext) -> None:
        """Check a function's name, parameters and defaults."""
        self._check_function(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                               ctx: ModuleContext) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check_function(node, ctx)

    def visit_Lambda(self, node: ast.Lambda, ctx: ModuleContext) -> None:
        """Check a lambda's defaults and parameter names."""
        self._check_defaults(node, ctx)
        self._check_params(node, ctx)

    def visit_ClassDef(self, node: ast.ClassDef,
                       ctx: ModuleContext) -> None:
        """Flag class names that shadow builtins."""
        self._check_binding(node.name, node, ctx)

    def visit_Assign(self, node: ast.Assign, ctx: ModuleContext) -> None:
        """Flag assignment targets that shadow builtins."""
        for target in node.targets:
            self._check_target(target, ctx)

    def visit_AnnAssign(self, node: ast.AnnAssign,
                        ctx: ModuleContext) -> None:
        """Flag annotated-assignment targets that shadow builtins."""
        self._check_target(node.target, ctx)

    def visit_For(self, node: ast.For, ctx: ModuleContext) -> None:
        """Flag loop variables that shadow builtins."""
        self._check_target(node.target, ctx)

    def visit_withitem(self, node: ast.withitem,
                       ctx: ModuleContext) -> None:
        """Flag ``with ... as name`` bindings that shadow builtins."""
        if node.optional_vars is not None:
            self._check_target(node.optional_vars, ctx)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_function(self, node, ctx: ModuleContext) -> None:
        self._check_binding(node.name, node, ctx)
        self._check_defaults(node, ctx)
        self._check_params(node, ctx)

    def _check_defaults(self, node, ctx: ModuleContext) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                ctx.report(self, default,
                           "mutable default argument is evaluated once "
                           "and shared across every call; default to "
                           "None and create the object in the body")

    def _check_params(self, node, ctx: ModuleContext) -> None:
        args = node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for param in params:
            self._check_binding(param.arg, param, ctx)

    def _check_target(self, target: ast.expr, ctx: ModuleContext) -> None:
        if isinstance(target, ast.Name):
            self._check_binding(target.id, target, ctx)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, ctx)

    def _check_binding(self, name: str, node: ast.AST,
                       ctx: ModuleContext) -> None:
        if name in _SHADOWABLE_BUILTINS:
            ctx.report(self, node,
                       f"name {name!r} shadows the builtin; later code "
                       "in this scope silently loses the builtin — "
                       "rename it")
