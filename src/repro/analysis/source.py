"""Source loading: file discovery, parsing and suppression pragmas.

A :class:`SourceModule` bundles everything a rule needs about one file:
its AST, raw lines and the ``# corlint: disable=...`` pragma map.
Pragmas are read from real COMMENT tokens (via :mod:`tokenize`), so a
pragma-shaped string literal never suppresses anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_PRAGMA = re.compile(
    r"#\s*corlint:\s*(disable|disable-next-line)\s*=\s*"
    r"([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)

_DERIVED_PRAGMA = re.compile(r"#\s*corlint:\s*derived\b")

_EXCLUDED_DIRS = {
    "__pycache__", ".git", ".corlint_cache", ".pytest_cache", ".hypothesis",
}

SUPPRESS_ALL = "*"
"""Wildcard accepted in pragmas (``disable=*`` or ``disable=all``)."""


@dataclass
class SourceModule:
    """One parsed source file plus the metadata rules consume."""

    path: Path
    """Absolute filesystem path."""
    relpath: str
    """Repo-root-relative posix path (stable across machines)."""
    source: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    suppressions: dict[int, frozenset[str]] = field(repr=False)
    """Line number -> rule ids disabled there (``*`` disables all)."""
    derived_lines: frozenset[int] = field(default=frozenset(),
                                          repr=False)
    """Lines carrying ``# corlint: derived`` (checkpoint-exempt state:
    the attribute is recomputed on resume rather than serialized)."""

    def line_content(self, line: int) -> str:
        """The stripped source text of a 1-based line ("" if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Is ``rule_id`` disabled on ``line`` by an inline pragma?"""
        disabled = self.suppressions.get(line)
        return disabled is not None and (
            rule_id in disabled or SUPPRESS_ALL in disabled
        )

    def is_derived(self, line: int) -> bool:
        """Does ``line`` carry a ``# corlint: derived`` annotation?"""
        return line in self.derived_lines


def parse_suppressions(source: str) \
        -> tuple[dict[int, frozenset[str]], frozenset[int]]:
    """Extract the per-line suppression map and derived-line set.

    ``# corlint: disable=CL001[,CL004]`` disables the named rules on the
    comment's own line; ``disable-next-line=`` targets the line below.
    ``all`` and ``*`` disable every rule.  ``# corlint: derived`` marks
    its line's attribute assignment as derived state (CL011).
    """
    suppressed: dict[int, set[str]] = {}
    derived: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}, frozenset()
    for token in comments:
        if _DERIVED_PRAGMA.search(token.string):
            derived.add(token.start[0])
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        mode, rule_list = match.groups()
        line = token.start[0] + (1 if mode == "disable-next-line" else 0)
        rules = {
            SUPPRESS_ALL if item.lower() in ("all", SUPPRESS_ALL) else item
            for item in re.split(r"\s*,\s*", rule_list.strip())
        }
        suppressed.setdefault(line, set()).update(rules)
    return ({line: frozenset(rules)
             for line, rules in suppressed.items()}, frozenset(derived))


def find_repo_root(start: Path) -> Path:
    """The enclosing repo root (pyproject.toml/.git), else ``start``.

    Findings and baselines store paths relative to this root so that the
    same baseline matches no matter which subtree was scanned.
    """
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if ((candidate / "pyproject.toml").is_file()
                or (candidate / ".git").exists()):
            return candidate
    return probe


def collect_files(targets: list[Path]) -> list[Path]:
    """All ``.py`` files under ``targets`` (deterministic order)."""
    seen: set[Path] = set()
    out: list[Path] = []
    for target in targets:
        target = target.resolve()
        if target.is_file():
            candidates = [target]
        else:
            candidates = sorted(
                path for path in target.rglob("*.py")
                if not _EXCLUDED_DIRS.intersection(path.parts)
            )
        for path in candidates:
            if path not in seen:
                seen.add(path)
                out.append(path)
    return out


def load_module(path: Path, root: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises :class:`SyntaxError` if the file does not parse; the engine
    converts that into a ``CL000`` finding rather than aborting the run.
    """
    source = path.read_text(encoding="utf-8")
    try:
        relpath = path.resolve().relative_to(root).as_posix()
    except ValueError:
        relpath = path.name
    tree = ast.parse(source, filename=str(path))
    suppressions, derived_lines = parse_suppressions(source)
    return SourceModule(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=suppressions,
        derived_lines=derived_lines,
    )
