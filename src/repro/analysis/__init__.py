"""corlint: AST-based invariant analysis for the Corleone reproduction.

Generic linters cannot see this repo's contracts; corlint can.  It is a
small rule-based static-analysis framework on stdlib :mod:`ast` — one
walk per file with visitor dispatch, per-rule severity, inline
``# corlint: disable=RULE`` suppressions, a checked-in baseline for
grandfathered findings, text/JSON reporters and a findings cache —
shipping the domain rules that gate every PR:

* **CL001 determinism** — no module-level RNG, unseeded generators or
  wall-clock reads in the algorithmic subsystems (the §9.3 sensitivity
  analysis assumes bit-reproducible runs);
* **CL002 accounting** — crowd answers route through
  ``LabelingService`` so the §8 cost/budget metering and label cache
  see every question;
* **CL003 kernel parity** — every measure in ``features/library.py``
  has a bit-exact batched kernel in ``features/batch.py`` and vice
  versa (PR 1's contract);
* **CL004 numeric hygiene** — no accidental float ``==`` or ``x != x``
  NaN idioms in numeric modules;
* **CL005 picklability** — pool workers must be module-level functions;
* **CL006 generic hygiene** — no mutable defaults or shadowed builtins.

Run it as ``python -m repro.analysis src/repro`` (or ``make lint``);
see ``docs/static_analysis.md`` for the full manual.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, baseline_from_findings
from .engine import AnalysisReport, Analyzer, run_analysis
from .findings import Finding, Severity
from .reporters import render_json, render_text
from .rules import DEFAULT_RULE_CLASSES, default_rules, rules_by_id

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_RULE_CLASSES",
    "Finding",
    "Severity",
    "baseline_from_findings",
    "default_rules",
    "render_json",
    "render_text",
    "rules_by_id",
    "run_analysis",
]
