"""The per-file findings cache (``.corlint_cache/``).

Per-module rule results depend only on the file's bytes and the rule
set, so unchanged files are served from a JSON cache keyed by a digest
of both.  Project rules (CL003) are cross-file and always run fresh.
``make clean`` removes the cache directory; a corrupt or version-bumped
cache is silently discarded.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .findings import Finding

CACHE_DIR_NAME = ".corlint_cache"
CACHE_VERSION = 1
"""Bump when rule semantics change so stale caches self-invalidate."""


def file_digest(source: str, ruleset_signature: str) -> str:
    """Digest of one file's source joined with the active rule set."""
    payload = f"{CACHE_VERSION}\x00{ruleset_signature}\x00{source}"
    return hashlib.sha256(payload.encode()).hexdigest()


class FindingsCache:
    """Loads and stores per-file findings keyed by source digest."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.directory = root / CACHE_DIR_NAME
        self.path = self.directory / "findings.json"
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if self.path.is_file():
            try:
                payload = json.loads(self.path.read_text(encoding="utf-8"))
                if payload.get("version") == CACHE_VERSION:
                    self._entries = payload.get("entries", {})
            except (OSError, ValueError):
                self._entries = {}

    def get(self, relpath: str, digest: str) -> list[Finding] | None:
        """Cached findings for an unchanged file, else None."""
        entry = self._entries.get(relpath)
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            return [Finding.from_dict(item) for item in entry["findings"]]
        except (KeyError, ValueError):
            return None

    def put(self, relpath: str, digest: str,
            findings: list[Finding]) -> None:
        """Record a file's findings under its current digest."""
        self._entries[relpath] = {
            "digest": digest,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Persist the cache if anything changed this run.

        Entries whose file has left the tree are pruned first, so the
        cache never grows monotonically across renames and deletions.
        """
        stale = [relpath for relpath in self._entries
                 if not (self.root / relpath).is_file()]
        for relpath in stale:
            del self._entries[relpath]
            self._dirty = True
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        self.path.write_text(json.dumps(payload, sort_keys=True),
                             encoding="utf-8")
        self._dirty = False
