"""The checked-in baseline of grandfathered findings.

The baseline is the escape hatch for findings that are *intentional*:
each entry names a finding by its line-number-independent fingerprint
and carries a mandatory one-line justification.  ``corlint`` exits
clean only when the scan and the baseline agree exactly — new findings
fail the run, and so do stale entries (a baselined finding that no
longer fires), which keeps the file honest as the code improves.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "corlint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: fingerprint + justification."""

    fingerprint: str
    rule: str
    path: str
    line_content: str
    justification: str
    count: int = 1

    def to_dict(self) -> dict:
        """JSON-ready form (stable key order via the reporter)."""
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "line_content": self.line_content,
            "justification": self.justification,
            "count": self.count,
        }


@dataclass
class BaselineMatch:
    """How a scan's findings divided against the baseline."""

    new: list[Finding] = field(default_factory=list)
    """Findings not covered by any baseline entry — these fail the run."""
    baselined: list[Finding] = field(default_factory=list)
    """Findings absorbed by the baseline (grandfathered)."""
    stale: list[BaselineEntry] = field(default_factory=list)
    """Entries whose finding no longer fires — remove them."""


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: list[BaselineEntry] | None = None,
                 path: Path | None = None) -> None:
        self.entries = list(entries or [])
        self.path = path

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls(path=path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                fingerprint=item["fingerprint"],
                rule=item["rule"],
                path=item["path"],
                line_content=item.get("line_content", ""),
                justification=item.get("justification", ""),
                count=int(item.get("count", 1)),
            )
            for item in payload.get("entries", [])
        ]
        return cls(entries, path=path)

    def match(self, findings: list[Finding]) -> BaselineMatch:
        """Split ``findings`` into new vs baselined, and find stale entries.

        Matching is by fingerprint multiset: an entry with ``count`` N
        absorbs up to N identical findings; excess findings are new,
        unused capacity marks the entry stale.
        """
        capacity = Counter()
        for entry in self.entries:
            capacity[entry.fingerprint] += entry.count
        used: Counter = Counter()
        result = BaselineMatch()
        for finding in findings:
            fingerprint = finding.fingerprint
            if used[fingerprint] < capacity[fingerprint]:
                used[fingerprint] += 1
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        unused = capacity - used
        for entry in self.entries:
            stale_share = min(entry.count, unused[entry.fingerprint])
            if stale_share > 0:
                unused[entry.fingerprint] -= stale_share
                result.stale.append(entry)
        return result

    def write(self, path: Path | None = None) -> Path:
        """Serialize the baseline (sorted, stable) to ``path``."""
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to write to")
        ordered = sorted(
            self.entries,
            key=lambda e: (e.path, e.rule, e.line_content, e.fingerprint),
        )
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in ordered],
        }
        target.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        return target


def baseline_from_findings(findings: list[Finding],
                           previous: Baseline | None = None) -> Baseline:
    """Build a baseline absorbing ``findings`` (for ``--update-baseline``).

    Justifications of surviving entries are preserved by fingerprint;
    genuinely new entries get a TODO placeholder that a human must
    replace — the baseline is a ledger, not a dumping ground.
    """
    keep_justification = {
        entry.fingerprint: entry.justification
        for entry in (previous.entries if previous else [])
        if entry.justification
    }
    grouped: dict[str, BaselineEntry] = {}
    counts = Counter(finding.fingerprint for finding in findings)
    for finding in findings:
        fingerprint = finding.fingerprint
        if fingerprint in grouped:
            continue
        grouped[fingerprint] = BaselineEntry(
            fingerprint=fingerprint,
            rule=finding.rule_id,
            path=finding.path,
            line_content=finding.line_content,
            justification=keep_justification.get(
                fingerprint, "TODO: justify this grandfathered finding"
            ),
            count=counts[fingerprint],
        )
    return Baseline(list(grouped.values()),
                    path=previous.path if previous else None)
