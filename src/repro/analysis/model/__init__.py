"""The corlint v2 semantic model: a compiled whole-program view.

Per-file AST rules catch local violations; the bugs that actually bite
are cross-module flows (a stream seeded in one stage consumed in
another, an attribute mutated here but never checkpointed there, an
event emitted that nothing consumes).  This package parses the scanned
tree once into per-module facts, links them into import/symbol tables
and an approximate call graph, and hands the result to
:class:`~repro.analysis.rules.base.SemanticRule`s via the engine.
"""

from __future__ import annotations

from .builder import (
    CallEdge,
    ModelFactsCache,
    SemanticModel,
    bind_arguments,
    build_model,
)
from .facts import (
    ClassFacts,
    FunctionFacts,
    ModuleFacts,
    extract_facts,
    module_dotted_name,
)

__all__ = [
    "CallEdge",
    "ClassFacts",
    "FunctionFacts",
    "ModelFactsCache",
    "ModuleFacts",
    "SemanticModel",
    "bind_arguments",
    "build_model",
    "extract_facts",
    "module_dotted_name",
]
