"""The whole-program semantic model: linking, call graph, cache.

:func:`build_model` turns a set of parsed :class:`SourceModule`s into a
:class:`SemanticModel`: per-module facts (cached per file, keyed on a
digest of the source and the model version — exactly like per-file
findings), a resolved import graph, global symbol tables, and an
approximate call graph.  The call graph resolves direct calls, imported
calls, constructor calls (edges land on ``__init__``), ``self.method``
dispatch (following declared base classes), and method calls on
receivers whose class is known from a parameter annotation or a local
``x = ClassName(...)`` assignment.  It is deliberately approximate —
no edge is ever invented, some are missed — which is the right polarity
for the flow rules built on top (missed edges can only underreport).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..cache import CACHE_DIR_NAME, file_digest
from ..source import SourceModule
from .facts import (
    ArgValue,
    CallSite,
    ClassFacts,
    FunctionFacts,
    ModuleFacts,
    extract_facts,
)

MODEL_VERSION = 1
"""Bump when fact extraction changes so cached facts self-invalidate."""

MODEL_CACHE_NAME = "model.json"


def _function_key(dotted: str, qualname: str) -> str:
    """The call-graph node key for one function or method."""
    return f"{dotted}::{qualname}"


@dataclass
class CallEdge:
    """One resolved call-graph edge."""

    caller: str
    callee: str
    site: CallSite
    module: str
    """Relpath of the module containing the call site."""


@dataclass
class SemanticModel:
    """The compiled whole-program view rules query."""

    modules: dict[str, ModuleFacts]
    """relpath -> facts, for every scanned module."""
    by_dotted: dict[str, ModuleFacts] = field(default_factory=dict)
    functions: dict[str, tuple[ModuleFacts, FunctionFacts]] = \
        field(default_factory=dict)
    """node key -> (owning module, function facts)."""
    classes: dict[str, tuple[ModuleFacts, ClassFacts]] = \
        field(default_factory=dict)
    """"dotted:ClassName" -> (owning module, class facts)."""
    edges: list[CallEdge] = field(default_factory=list)
    callers: dict[str, list[CallEdge]] = field(default_factory=dict)
    callees: dict[str, list[CallEdge]] = field(default_factory=dict)
    whole_program: bool = False
    """True when the scan covered the full package tree — the gate for
    rules whose absence-of-reference reasoning needs every module."""
    build_seconds: float = 0.0
    cached_modules: int = 0

    def module_of(self, key: str) -> ModuleFacts | None:
        """The module owning a call-graph node key."""
        entry = self.functions.get(key)
        return entry[0] if entry else None

    def resolve_class(self, facts: ModuleFacts,
                      chain: tuple[str, ...]) -> str | None:
        """Resolve a dotted chain to a "dotted:Class" key, if a class."""
        return _resolve_class_chain(self, facts, chain)

    def resolve_export(self, module: str,
                       symbol: str) -> tuple[str, str] | None:
        """Chase ``from module import symbol`` to its defining module.

        Returns ``(module, symbol)`` for a def/class, ``(module, "")``
        when the symbol is itself a submodule, None when external.
        """
        return _resolve_symbol(self, module, symbol)

    def class_method_key(self, class_key: str,
                         method: str) -> str | None:
        """The node key of ``method`` on a class or its declared bases."""
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            owner, cls = entry
            if method in cls.methods:
                return _function_key(owner.dotted,
                                     f"{cls.name}.{method}")
            for base in cls.bases:
                base_key = _resolve_class_chain(self, owner, base)
                if base_key is not None:
                    stack.append(base_key)
        return None

    def stats(self) -> dict:
        """Shape statistics for ``--model-stats`` and the benchmarks."""
        import_edges = 0
        internal = {facts.dotted for facts in self.modules.values()}
        for facts in self.modules.values():
            import_edges += sum(
                1 for b in facts.imports
                if b.module in internal
                or any(b.module.startswith(d + ".") or b.module == d
                       for d in internal)
            )
        return {
            "modules": len(self.modules),
            "classes": len(self.classes),
            "functions": len(self.functions),
            "import_edges": import_edges,
            "call_edges": len(self.edges),
            "whole_program": self.whole_program,
            "cached_modules": self.cached_modules,
            "build_seconds": round(self.build_seconds, 4),
        }


class ModelFactsCache:
    """Per-file :class:`ModuleFacts` cache (``.corlint_cache/model.json``).

    Mirrors :class:`~repro.analysis.cache.FindingsCache`: entries are
    keyed by a digest of the file's source and the model version, and
    entries whose file vanished from the tree are pruned on save.
    """

    def __init__(self, root: Path) -> None:
        self.root = root
        self.path = root / CACHE_DIR_NAME / MODEL_CACHE_NAME
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if self.path.is_file():
            try:
                payload = json.loads(self.path.read_text(
                    encoding="utf-8"))
                if payload.get("version") == MODEL_VERSION:
                    self._entries = payload.get("entries", {})
            except (OSError, ValueError):
                self._entries = {}

    def get(self, relpath: str, digest: str) -> ModuleFacts | None:
        """Cached facts for ``relpath`` when its digest still matches."""
        entry = self._entries.get(relpath)
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            return ModuleFacts.from_dict(entry["facts"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, relpath: str, digest: str,
            facts: ModuleFacts) -> None:
        """Record freshly extracted facts for ``relpath``."""
        self._entries[relpath] = {"digest": digest,
                                  "facts": facts.to_dict()}
        self._dirty = True

    def save(self) -> None:
        """Persist, dropping entries whose file left the tree."""
        known = {
            relpath for relpath in self._entries
            if (self.root / relpath).is_file()
        }
        if len(known) != len(self._entries):
            self._entries = {rel: entry
                             for rel, entry in self._entries.items()
                             if rel in known}
            self._dirty = True
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": MODEL_VERSION, "entries": self._entries}
        self.path.write_text(json.dumps(payload, sort_keys=True),
                             encoding="utf-8")
        self._dirty = False


# ----------------------------------------------------------------------
# Linking
# ----------------------------------------------------------------------


def _import_map(facts: ModuleFacts) -> dict[str, tuple[str, str | None]]:
    """alias -> (module, symbol|None) for one module's bindings."""
    return {b.alias: (b.module, b.symbol) for b in facts.imports}


def _resolve_symbol(model: SemanticModel, module: str,
                    symbol: str) -> tuple[str, str] | None:
    """Chase ``from m import s`` through re-exports to a definition.

    Returns ``(dotted module, symbol)`` of the defining module, or None
    when the target is external or unresolvable.
    """
    seen: set[tuple[str, str]] = set()
    while (module, symbol) not in seen:
        seen.add((module, symbol))
        facts = model.by_dotted.get(module)
        if facts is None:
            # `from repro import engine`-style submodule import.
            sub = model.by_dotted.get(f"{module}.{symbol}")
            if sub is not None:
                return (sub.dotted, "")
            return None
        if symbol in facts.functions or symbol in facts.classes:
            return (module, symbol)
        bound = _import_map(facts).get(symbol)
        if bound is None:
            sub = model.by_dotted.get(f"{module}.{symbol}")
            if sub is not None:
                return (sub.dotted, "")
            return None
        next_module, next_symbol = bound
        if next_symbol is None:
            return (next_module, "")
        module, symbol = next_module, next_symbol
    # Cycle: typically a package __init__ doing `from . import sub`,
    # which binds the submodule under its own name.
    sub = model.by_dotted.get(f"{module}.{symbol}")
    if sub is not None:
        return (sub.dotted, "")
    return None


def _resolve_class_chain(model: SemanticModel, facts: ModuleFacts,
                         chain: tuple[str, ...]) -> str | None:
    """Resolve a dotted chain (as written in ``facts``) to a class key."""
    if len(chain) == 1:
        name = chain[0]
        if name in facts.classes:
            return f"{facts.dotted}:{name}"
        bound = _import_map(facts).get(name)
        if bound is not None and bound[1] is not None:
            resolved = _resolve_symbol(model, bound[0], bound[1])
            if resolved is not None and resolved[1]:
                owner = model.by_dotted.get(resolved[0])
                if owner is not None and resolved[1] in owner.classes:
                    return f"{resolved[0]}:{resolved[1]}"
        return None
    # module.Class / package.module.Class
    head, rest = chain[0], chain[1:]
    bound = _import_map(facts).get(head)
    if bound is None:
        return None
    module, symbol = bound
    if symbol is not None:
        resolved = _resolve_symbol(model, module, symbol)
        if resolved is None or resolved[1]:
            return None
        module = resolved[0]
    while len(rest) > 1:
        module = f"{module}.{rest[0]}"
        rest = rest[1:]
    owner = model.by_dotted.get(module)
    if owner is not None and rest[0] in owner.classes:
        return f"{module}:{rest[0]}"
    return None


def _callee_key(model: SemanticModel, facts: ModuleFacts,
                caller: FunctionFacts, enclosing_class: str | None,
                site: CallSite) -> str | None:
    """Resolve one call site to a call-graph node key, if possible."""
    chain = site.chain
    imports = _import_map(facts)

    if len(chain) == 1:
        name = chain[0]
        if name in facts.functions:
            return _function_key(facts.dotted, name)
        if name in facts.classes:
            return model.class_method_key(f"{facts.dotted}:{name}",
                                          "__init__")
        bound = imports.get(name)
        if bound is not None and bound[1] is not None:
            resolved = _resolve_symbol(model, bound[0], bound[1])
            if resolved is not None and resolved[1]:
                owner = model.by_dotted[resolved[0]]
                if resolved[1] in owner.functions:
                    return _function_key(resolved[0], resolved[1])
                if resolved[1] in owner.classes:
                    return model.class_method_key(
                        f"{resolved[0]}:{resolved[1]}", "__init__")
        return None

    head, method = chain[0], chain[-1]
    if len(chain) == 2:
        if head == "self" and enclosing_class is not None:
            return model.class_method_key(
                f"{facts.dotted}:{enclosing_class}", method)
        receiver_class = _receiver_class(model, facts, caller, head)
        if receiver_class is not None:
            return model.class_method_key(receiver_class, method)
        bound = imports.get(head)
        if bound is not None:
            module, symbol = bound
            if symbol is None:
                owner = model.by_dotted.get(module)
                if owner is not None:
                    if method in owner.functions:
                        return _function_key(module, method)
                    if method in owner.classes:
                        return model.class_method_key(
                            f"{module}:{method}", "__init__")
            else:
                resolved = _resolve_symbol(model, module, symbol)
                if resolved is not None and not resolved[1]:
                    owner = model.by_dotted.get(resolved[0])
                    if owner is not None and method in owner.functions:
                        return _function_key(resolved[0], method)
        return None

    # package.module.func / module.Class(...): resolve the prefix as a
    # module chain, the last element as a symbol.
    prefix = _resolve_class_chain(model, facts, chain)
    if prefix is not None:
        return model.class_method_key(prefix, "__init__")
    bound = imports.get(head)
    if bound is not None and bound[1] is None:
        module = bound[0] + "." + ".".join(chain[1:-1])
        owner = model.by_dotted.get(module)
        if owner is not None:
            if method in owner.functions:
                return _function_key(module, method)
            if method in owner.classes:
                return model.class_method_key(f"{module}:{method}",
                                              "__init__")
    return None


def _receiver_class(model: SemanticModel, facts: ModuleFacts,
                    caller: FunctionFacts, name: str) -> str | None:
    """The class key of a local/parameter receiver, if inferable."""
    for param, annotation in caller.params:
        if param == name and annotation is not None:
            return _resolve_class_chain(model, facts, annotation)
    chain = caller.local_types.get(name)
    if chain is not None:
        return _resolve_class_chain(model, facts, chain)
    return None


def build_model(modules: list[SourceModule], root: Path | None = None,
                use_cache: bool = False,
                whole_program: bool = True) -> SemanticModel:
    """Compile ``modules`` into a linked :class:`SemanticModel`."""
    import time as _time  # wall time for --model-stats only

    started = _time.perf_counter()
    cache = (ModelFactsCache(root)
             if use_cache and root is not None else None)

    model = SemanticModel(modules={})
    cached = 0
    for module in modules:
        facts = None
        digest = None
        if cache is not None:
            digest = file_digest(module.source, f"model:{MODEL_VERSION}")
            facts = cache.get(module.relpath, digest)
            if facts is not None:
                cached += 1
        if facts is None:
            facts = extract_facts(module)
            if cache is not None and digest is not None:
                cache.put(module.relpath, digest, facts)
        model.modules[module.relpath] = facts
    if cache is not None:
        cache.save()
    model.cached_modules = cached

    model.by_dotted = {facts.dotted: facts
                       for facts in model.modules.values()}

    # Whole-program iff every top-level package present in the scan has
    # its root __init__ in the scan too (a subtree or changed-files run
    # does not, so absence-of-reference rules stay silent there).
    tops = {facts.dotted.split(".")[0]
            for facts in model.modules.values() if facts.dotted}
    roots_present = {facts.dotted for facts in model.modules.values()
                     if facts.is_package}
    model.whole_program = whole_program and bool(tops) and all(
        top in roots_present or model.by_dotted.get(top) is not None
        for top in tops
    )

    for facts in model.modules.values():
        for func in facts.functions.values():
            model.functions[_function_key(facts.dotted,
                                          func.qualname)] = (facts, func)
        for cls in facts.classes.values():
            model.classes[f"{facts.dotted}:{cls.name}"] = (facts, cls)
            for method in cls.methods.values():
                model.functions[_function_key(
                    facts.dotted, method.qualname)] = (facts, method)

    for facts in model.modules.values():
        for func in facts.functions.values():
            _link_function(model, facts, func, None)
        for cls in facts.classes.values():
            for method in cls.methods.values():
                _link_function(model, facts, method, cls.name)

    for edge in model.edges:
        model.callers.setdefault(edge.callee, []).append(edge)
        model.callees.setdefault(edge.caller, []).append(edge)

    model.build_seconds = _time.perf_counter() - started
    return model


def _link_function(model: SemanticModel, facts: ModuleFacts,
                   func: FunctionFacts,
                   enclosing_class: str | None) -> None:
    """Add the resolved outgoing edges of one function."""
    caller_key = _function_key(facts.dotted, func.qualname)
    for site in func.calls:
        callee = _callee_key(model, facts, func, enclosing_class, site)
        if callee is None:
            continue
        model.edges.append(CallEdge(caller=caller_key, callee=callee,
                                    site=site, module=facts.relpath))


def bind_arguments(model: SemanticModel, edge: CallEdge) \
        -> list[tuple[str, ArgValue]]:
    """Map an edge's arguments onto the callee's parameter names.

    Methods (including ``__init__``) consume their leading ``self``
    parameter before positionals are assigned.
    """
    entry = model.functions.get(edge.callee)
    if entry is None:
        return []
    _, callee = entry
    names = callee.param_names()
    if names and names[0] == "self" and "." in callee.qualname:
        names = names[1:]
    bound: list[tuple[str, ArgValue]] = []
    position = 0
    for arg in edge.site.args:
        if arg.keyword is not None:
            if arg.keyword in names:
                bound.append((arg.keyword, arg))
        else:
            if position < len(names):
                bound.append((names[position], arg))
            position += 1
    return bound
