"""Per-module fact extraction for the semantic model.

One AST walk per file distills everything the whole-program layer
needs into plain, JSON-serializable :class:`ModuleFacts`: import
bindings, top-level symbols, per-function call sites (with just enough
argument structure to trace RNG streams), per-class ``__init__``
attribute inventories, event/metric declarations and uses, and every
name/attribute reference.  Facts depend only on the file's bytes, so
the model builder caches them per file exactly like per-file findings
(see :mod:`repro.analysis.model.builder`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..source import SourceModule

_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
})
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})
_METRIC_REG_METHODS = frozenset({"counter", "gauge", "histogram"})
_METRIC_GET_RECEIVERS = frozenset({"reg", "registry"})


def dotted(node: ast.AST) -> tuple[str, ...] | None:
    """The dotted parts of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def module_dotted_name(relpath: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a repo-relative path.

    A leading ``src/`` component is stripped so that
    ``src/repro/engine/stages.py`` names the importable module
    ``repro.engine.stages``.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts), is_package


@dataclass
class ImportBinding:
    """One name bound by an import statement.

    ``symbol`` is None for whole-module imports (``import repro.obs``
    binds the alias to a module, not a symbol).
    """

    alias: str
    module: str
    symbol: str | None
    line: int

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {"alias": self.alias, "module": self.module,
                "symbol": self.symbol, "line": self.line}

    @classmethod
    def from_dict(cls, d: dict) -> "ImportBinding":
        return cls(alias=d["alias"], module=d["module"],
                   symbol=d["symbol"], line=int(d["line"]))


@dataclass
class ArgValue:
    """One argument at a call site, reduced to what flow rules need.

    ``kind`` is ``"stream"`` for a direct ``*.rng("name")`` expression
    (``detail`` is the stream name), ``"name"`` for a bare local
    variable or parameter (``detail`` is the variable), or ``"other"``.
    """

    keyword: str | None
    kind: str
    detail: str
    line: int
    column: int

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {"keyword": self.keyword, "kind": self.kind,
                "detail": self.detail, "line": self.line,
                "column": self.column}

    @classmethod
    def from_dict(cls, d: dict) -> "ArgValue":
        return cls(keyword=d["keyword"], kind=d["kind"],
                   detail=d["detail"], line=int(d["line"]),
                   column=int(d["column"]))


@dataclass
class CallSite:
    """One call expression inside a function body."""

    chain: tuple[str, ...]
    line: int
    column: int
    args: list[ArgValue] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {"chain": list(self.chain), "line": self.line,
                "column": self.column,
                "args": [a.to_dict() for a in self.args]}

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        return cls(chain=tuple(d["chain"]), line=int(d["line"]),
                   column=int(d["column"]),
                   args=[ArgValue.from_dict(a) for a in d["args"]])


@dataclass
class FunctionFacts:
    """One function or method, reduced to its flow-relevant surface."""

    name: str
    qualname: str
    line: int
    params: list[tuple[str, tuple[str, ...] | None]]
    """Parameter names with their (dotted) annotation chains."""
    calls: list[CallSite] = field(default_factory=list)
    clock_calls: list[tuple[int, int, str]] = field(default_factory=list)
    """Direct wall-clock reads: (line, column, call text)."""
    local_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """Locals assigned from a constructor-looking call: var -> chain."""
    stream_locals: dict[str, tuple[str, int, int]] = field(
        default_factory=dict)
    """Locals assigned from ``*.rng("name")``: var -> (stream, ln, col)."""

    def param_names(self) -> list[str]:
        """Positional parameter names, in signature order."""
        return [name for name, _ in self.params]

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {
            "name": self.name, "qualname": self.qualname,
            "line": self.line,
            "params": [[n, list(a) if a else None]
                       for n, a in self.params],
            "calls": [c.to_dict() for c in self.calls],
            "clock_calls": [list(c) for c in self.clock_calls],
            "local_types": {k: list(v)
                            for k, v in self.local_types.items()},
            "stream_locals": {k: list(v)
                              for k, v in self.stream_locals.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionFacts":
        return cls(
            name=d["name"], qualname=d["qualname"], line=int(d["line"]),
            params=[(n, tuple(a) if a else None) for n, a in d["params"]],
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            clock_calls=[(int(a), int(b), str(c))
                         for a, b, c in d["clock_calls"]],
            local_types={k: tuple(v)
                         for k, v in d["local_types"].items()},
            stream_locals={k: (str(v[0]), int(v[1]), int(v[2]))
                           for k, v in d["stream_locals"].items()},
        )


@dataclass
class AttrFacts:
    """One ``self.<attr>`` assigned in ``__init__``."""

    name: str
    line: int
    column: int
    derived: bool
    """True when the assignment carries a ``# corlint: derived`` pragma."""

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {"name": self.name, "line": self.line,
                "column": self.column, "derived": self.derived}

    @classmethod
    def from_dict(cls, d: dict) -> "AttrFacts":
        return cls(name=d["name"], line=int(d["line"]),
                   column=int(d["column"]), derived=bool(d["derived"]))


@dataclass
class ClassFacts:
    """One class: bases, methods and checkpoint-relevant attributes."""

    name: str
    line: int
    bases: list[tuple[str, ...]]
    methods: dict[str, FunctionFacts] = field(default_factory=dict)
    init_attrs: list[AttrFacts] = field(default_factory=list)
    mutated_attrs: dict[str, str] = field(default_factory=dict)
    """attr -> first non-__init__ method that reassigns it."""
    state_refs: set[str] = field(default_factory=set)
    """Attr names / string keys referenced in state_dict/load_state."""

    @property
    def has_state_protocol(self) -> bool:
        return ("state_dict" in self.methods
                and "load_state" in self.methods)

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {
            "name": self.name, "line": self.line,
            "bases": [list(b) for b in self.bases],
            "methods": {k: v.to_dict() for k, v in self.methods.items()},
            "init_attrs": [a.to_dict() for a in self.init_attrs],
            "mutated_attrs": dict(self.mutated_attrs),
            "state_refs": sorted(self.state_refs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClassFacts":
        return cls(
            name=d["name"], line=int(d["line"]),
            bases=[tuple(b) for b in d["bases"]],
            methods={k: FunctionFacts.from_dict(v)
                     for k, v in d["methods"].items()},
            init_attrs=[AttrFacts.from_dict(a) for a in d["init_attrs"]],
            mutated_attrs=dict(d["mutated_attrs"]),
            state_refs=set(d["state_refs"]),
        )


@dataclass
class ModuleFacts:
    """Everything the whole-program layer keeps about one module."""

    relpath: str
    dotted: str
    is_package: bool
    imports: list[ImportBinding] = field(default_factory=list)
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    exports: list[str] | None = None
    """The literal ``__all__`` list, when one is declared."""
    public_defs: dict[str, int] = field(default_factory=dict)
    """Public top-level def/class names -> definition line."""
    module_assigns: set[str] = field(default_factory=set)
    """Names bound by module-level assignments (constants, tables)."""
    name_loads: set[str] = field(default_factory=set)
    attr_refs: set[tuple[str, str]] = field(default_factory=set)
    """(root name, first attribute) pairs of every attribute access."""
    emits: list[tuple[str, str, int, int]] = field(default_factory=list)
    """emit() producers: (kind 'literal'|'const', value, line, col)."""
    event_constants: dict[str, str] = field(default_factory=dict)
    event_registry: list[tuple[str, str, int, int]] | None = None
    """EVENT_NAMES elements: (kind, value, line, col); None if absent."""
    metric_regs: list[tuple[str, str, int, int]] = field(
        default_factory=list)
    """Catalog registrations: (kind, metric name, line, col)."""
    metric_gets: list[tuple[str, int, int]] = field(default_factory=list)
    dispatch_literals: set[str] = field(default_factory=set)
    """String literals used in comparisons or as dict keys."""
    const_ref_counts: dict[str, int] = field(default_factory=dict)
    """Name-load counts (for emit-vs-consume accounting of constants)."""

    def to_dict(self) -> dict:
        """JSON-serializable form (for the on-disk facts cache)."""
        return {
            "relpath": self.relpath, "dotted": self.dotted,
            "is_package": self.is_package,
            "imports": [b.to_dict() for b in self.imports],
            "functions": {k: v.to_dict()
                          for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "exports": self.exports,
            "public_defs": dict(self.public_defs),
            "module_assigns": sorted(self.module_assigns),
            "name_loads": sorted(self.name_loads),
            "attr_refs": sorted(list(pair) for pair in self.attr_refs),
            "emits": [list(e) for e in self.emits],
            "event_constants": dict(self.event_constants),
            "event_registry": ([list(e) for e in self.event_registry]
                               if self.event_registry is not None
                               else None),
            "metric_regs": [list(m) for m in self.metric_regs],
            "metric_gets": [list(m) for m in self.metric_gets],
            "dispatch_literals": sorted(self.dispatch_literals),
            "const_ref_counts": dict(self.const_ref_counts),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleFacts":
        return cls(
            relpath=d["relpath"], dotted=d["dotted"],
            is_package=bool(d["is_package"]),
            imports=[ImportBinding.from_dict(b) for b in d["imports"]],
            functions={k: FunctionFacts.from_dict(v)
                       for k, v in d["functions"].items()},
            classes={k: ClassFacts.from_dict(v)
                     for k, v in d["classes"].items()},
            exports=d["exports"],
            public_defs={k: int(v) for k, v in d["public_defs"].items()},
            module_assigns=set(d["module_assigns"]),
            name_loads=set(d["name_loads"]),
            attr_refs={(a, b) for a, b in d["attr_refs"]},
            emits=[(e[0], e[1], int(e[2]), int(e[3]))
                   for e in d["emits"]],
            event_constants=dict(d["event_constants"]),
            event_registry=([(e[0], e[1], int(e[2]), int(e[3]))
                             for e in d["event_registry"]]
                            if d["event_registry"] is not None else None),
            metric_regs=[(m[0], m[1], int(m[2]), int(m[3]))
                         for m in d["metric_regs"]],
            metric_gets=[(m[0], int(m[1]), int(m[2]))
                         for m in d["metric_gets"]],
            dispatch_literals=set(d["dispatch_literals"]),
            const_ref_counts={k: int(v)
                              for k, v in d["const_ref_counts"].items()},
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def _is_stream_call(node: ast.AST) -> tuple[str, int, int] | None:
    """``*.rng("name")`` -> (name, line, col); anything else -> None."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "rng" and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)):
        return node.args[0].value, node.lineno, node.col_offset
    return None


def _arg_value(keyword: str | None, node: ast.expr) -> ArgValue:
    """Classify one call argument for the flow rules."""
    stream = _is_stream_call(node)
    if stream is not None:
        name, line, col = stream
        return ArgValue(keyword, "stream", name, line, col)
    if isinstance(node, ast.Name):
        return ArgValue(keyword, "name", node.id,
                        node.lineno, node.col_offset)
    return ArgValue(keyword, "other", "",
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0))


def _annotation_chain(node: ast.expr | None) -> tuple[str, ...] | None:
    """A parameter annotation as a dotted chain, unwrapping Optional."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        parts = node.value.strip().split(".")
        if all(part.isidentifier() for part in parts):
            return tuple(parts)
        return None
    # X | None and Optional[X] both reduce to X for resolution purposes.
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_chain(node.left)
        return left or _annotation_chain(node.right)
    if isinstance(node, ast.Subscript):
        chain = dotted(node.value)
        if chain is not None and chain[-1] == "Optional":
            return _annotation_chain(node.slice)
        return None
    return dotted(node)


class _ClockAliases:
    """The module's import aliases for wall-clock sources."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_mods: set[str] = set()
        self.clock_funcs: set[str] = set()
        self.datetime_mods: set[str] = set()
        self.datetime_classes: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_mods.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_mods.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "time":
                        if alias.name in _CLOCK_FUNCS:
                            self.clock_funcs.add(bound)
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(bound)

    def classify(self, chain: tuple[str, ...]) -> str | None:
        """The wall-clock call text if ``chain`` reads a clock."""
        head, tail = chain[0], chain[1:]
        if ((head in self.time_mods and len(chain) == 2
                and tail[0] in _CLOCK_FUNCS)
                or (len(chain) == 1 and head in self.clock_funcs)):
            return ".".join(chain)
        if ((head in self.datetime_mods and len(chain) == 3
                and tail[0] in ("datetime", "date")
                and tail[1] in _DATETIME_METHODS)
                or (head in self.datetime_classes and len(chain) == 2
                    and tail[0] in _DATETIME_METHODS)):
            return ".".join(chain)
        return None


def _extract_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                      qualname: str,
                      clocks: _ClockAliases) -> FunctionFacts:
    """Distill one function body into :class:`FunctionFacts`."""
    params: list[tuple[str, tuple[str, ...] | None]] = []
    arg_spec = node.args
    for arg in (*arg_spec.posonlyargs, *arg_spec.args,
                *arg_spec.kwonlyargs):
        params.append((arg.arg, _annotation_chain(arg.annotation)))
    facts = FunctionFacts(name=node.name, qualname=qualname,
                          line=node.lineno, params=params)

    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and len(child.targets) == 1 \
                and isinstance(child.targets[0], ast.Name):
            target = child.targets[0].id
            stream = _is_stream_call(child.value)
            if stream is not None:
                facts.stream_locals[target] = stream
            elif isinstance(child.value, ast.Call):
                chain = dotted(child.value.func)
                if chain is not None and chain[-1][:1].isupper():
                    facts.local_types[target] = chain
        if not isinstance(child, ast.Call):
            continue
        chain = dotted(child.func)
        if chain is None:
            continue
        clock = clocks.classify(chain)
        if clock is not None:
            facts.clock_calls.append(
                (child.lineno, child.col_offset, clock))
        args = [_arg_value(None, a) for a in child.args
                if not isinstance(a, ast.Starred)]
        args += [_arg_value(kw.arg, kw.value) for kw in child.keywords
                 if kw.arg is not None]
        facts.calls.append(CallSite(chain=chain, line=child.lineno,
                                    column=child.col_offset, args=args))
    return facts


def _extract_class(node: ast.ClassDef, module: SourceModule,
                   clocks: _ClockAliases) -> ClassFacts:
    """Distill one class body into :class:`ClassFacts`."""
    bases = [chain for chain in (dotted(b) for b in node.bases)
             if chain is not None]
    facts = ClassFacts(name=node.name, line=node.lineno, bases=bases)
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        method = _extract_function(
            item, f"{node.name}.{item.name}", clocks)
        facts.methods[item.name] = method
        if item.name == "__init__":
            _collect_init_attrs(item, module, facts)
        elif item.name in ("state_dict", "load_state"):
            _collect_state_refs(item, facts)
            _collect_mutations(item, facts)
        else:
            _collect_mutations(item, facts)
    return facts


def _self_attr_targets(node: ast.AST) -> list[ast.Attribute]:
    """``self.<attr>`` targets of an assignment-like statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out = []
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            out.append(target)
    return out


def _collect_init_attrs(init: ast.AST, module: SourceModule,
                        facts: ClassFacts) -> None:
    """Record every ``self.x = ...`` in ``__init__``."""
    seen: set[str] = set()
    for node in ast.walk(init):
        for target in _self_attr_targets(node):
            if target.attr in seen:
                continue
            seen.add(target.attr)
            facts.init_attrs.append(AttrFacts(
                name=target.attr, line=target.lineno,
                column=target.col_offset,
                derived=module.is_derived(target.lineno),
            ))


def _collect_mutations(method: ast.FunctionDef | ast.AsyncFunctionDef,
                       facts: ClassFacts) -> None:
    """Record ``self.x = / += ...`` writes outside ``__init__``."""
    if method.name in ("__init__", "load_state"):
        return
    for node in ast.walk(method):
        for target in _self_attr_targets(node):
            facts.mutated_attrs.setdefault(target.attr, method.name)


def _collect_state_refs(method: ast.FunctionDef | ast.AsyncFunctionDef,
                        facts: ClassFacts) -> None:
    """Attr names and string keys touched by state_dict/load_state."""
    for node in ast.walk(method):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            facts.state_refs.add(node.attr)
        elif (isinstance(node, ast.Constant)
              and isinstance(node.value, str)):
            facts.state_refs.add(node.value)


def _collect_imports(tree: ast.Module, dotted_name: str,
                     is_package: bool) -> list[ImportBinding]:
    """Every import binding, with relative imports made absolute."""
    package_parts = dotted_name.split(".") if dotted_name else []
    if not is_package:
        package_parts = package_parts[:-1]
    bindings: list[ImportBinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                module = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                bindings.append(ImportBinding(
                    alias=bound, module=module, symbol=None,
                    line=node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                hops = node.level - 1
                anchor = (package_parts[:-hops] if hops
                          else package_parts)
                base = ".".join(
                    anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings.append(ImportBinding(
                    alias=alias.asname or alias.name, module=base,
                    symbol=alias.name, line=node.lineno))
    return bindings


def _collect_exports(tree: ast.Module) -> list[str] | None:
    """The literal ``__all__`` list, when present."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == "__all__"
                    and isinstance(value, (ast.List, ast.Tuple))):
                return [
                    el.value for el in value.elts
                    if isinstance(el, ast.Constant)
                    and isinstance(el.value, str)
                ]
    return None


def _collect_registry(tree: ast.Module, facts: ModuleFacts) -> None:
    """Module-level string constants and the EVENT_NAMES tuple."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                facts.event_constants[target.id] = value.value
            elif (target.id == "EVENT_NAMES"
                    and isinstance(value, ast.Tuple)):
                registry: list[tuple[str, str, int, int]] = []
                for el in value.elts:
                    if (isinstance(el, ast.Constant)
                            and isinstance(el.value, str)):
                        registry.append(("literal", el.value,
                                         el.lineno, el.col_offset))
                    elif isinstance(el, ast.Name):
                        registry.append(("const", el.id,
                                         el.lineno, el.col_offset))
                facts.event_registry = registry


def _collect_references(tree: ast.Module, facts: ModuleFacts) -> None:
    """Name loads, attribute pairs, dispatch literals, emit/metric uses."""
    counts: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            facts.name_loads.add(node.id)
            counts[node.id] = counts.get(node.id, 0) + 1
        elif isinstance(node, ast.Attribute):
            chain = dotted(node)
            if chain is not None and len(chain) >= 2:
                facts.attr_refs.add((chain[0], chain[1]))
        elif isinstance(node, ast.Compare):
            for comp in (node.left, *node.comparators):
                if (isinstance(comp, ast.Constant)
                        and isinstance(comp.value, str)):
                    facts.dispatch_literals.add(comp.value)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    facts.dispatch_literals.add(key.value)
        elif isinstance(node, ast.Call):
            _collect_call_uses(node, facts)
    facts.const_ref_counts = counts


def _collect_call_uses(node: ast.Call, facts: ModuleFacts) -> None:
    """emit() producers and metric registrations/lookups."""
    if isinstance(node.func, ast.Name) and \
            node.func.id in ("emit", "_emit"):
        # Helper-style producers (``_emit(bus, EVENT_X, ...)``): any
        # ALL_CAPS positional arg is the event constant being emitted.
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id.isupper():
                facts.emits.append(("const", arg.id,
                                    arg.lineno, arg.col_offset))
        return
    if not isinstance(node.func, ast.Attribute):
        return
    attr = node.func.attr
    first = node.args[0] if node.args else None
    if attr == "emit" and first is not None:
        if isinstance(first, ast.Constant) and isinstance(first.value,
                                                         str):
            facts.emits.append(("literal", first.value,
                                first.lineno, first.col_offset))
        elif isinstance(first, ast.Name):
            facts.emits.append(("const", first.id,
                                first.lineno, first.col_offset))
    elif attr in _METRIC_REG_METHODS and isinstance(first, ast.Constant) \
            and isinstance(first.value, str):
        facts.metric_regs.append((attr, first.value,
                                  first.lineno, first.col_offset))
    elif attr == "get" and isinstance(first, ast.Constant) \
            and isinstance(first.value, str):
        receiver = dotted(node.func.value)
        if receiver is not None and \
                receiver[-1] in _METRIC_GET_RECEIVERS:
            facts.metric_gets.append((first.value, first.lineno,
                                      first.col_offset))


def extract_facts(module: SourceModule) -> ModuleFacts:
    """One walk over ``module`` producing its :class:`ModuleFacts`."""
    dotted_name, is_package = module_dotted_name(module.relpath)
    facts = ModuleFacts(relpath=module.relpath, dotted=dotted_name,
                        is_package=is_package)
    clocks = _ClockAliases(module.tree)
    facts.imports = _collect_imports(module.tree, dotted_name,
                                     is_package)
    facts.exports = _collect_exports(module.tree)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions[node.name] = _extract_function(
                node, node.name, clocks)
            if not node.name.startswith("_"):
                facts.public_defs[node.name] = node.lineno
        elif isinstance(node, ast.ClassDef):
            facts.classes[node.name] = _extract_class(
                node, module, clocks)
            if not node.name.startswith("_"):
                facts.public_defs[node.name] = node.lineno
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    facts.module_assigns.add(target.id)
    _collect_registry(module.tree, facts)
    _collect_references(module.tree, facts)
    return facts
