"""Report rendering: human text and machine-stable JSON.

Both renderers are pure functions of the :class:`AnalysisReport`, emit
findings in deterministic (path, line, column, rule) order and contain
no timestamps — running corlint twice on the same tree produces
byte-identical output, which the test suite asserts.
"""

from __future__ import annotations

import json

from .engine import AnalysisReport
from .findings import Finding

JSON_REPORT_VERSION = 1


def render_text(report: AnalysisReport,
                show_baselined: bool = False) -> str:
    """The human-facing report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in report.new_findings:
        lines.append(_text_line(finding))
        if finding.line_content:
            lines.append(f"    {finding.line_content}")
    if show_baselined:
        for finding in report.baselined_findings:
            lines.append(_text_line(finding) + "  [baselined]")
    for entry in report.stale_entries:
        lines.append(
            f"{entry.path}: {entry.rule} stale-baseline: entry "
            f"{entry.fingerprint} no longer matches any finding — "
            "remove it from the baseline"
        )
    errors = sum(1 for f in report.new_findings
                 if f.severity.label == "error")
    warnings = len(report.new_findings) - errors
    lines.append(
        f"corlint: {report.files_scanned} file(s) scanned, "
        f"{len(report.new_findings)} new finding(s) "
        f"({errors} error, {warnings} warning), "
        f"{len(report.baselined_findings)} baselined, "
        f"{len(report.stale_entries)} stale baseline entr"
        f"{'y' if len(report.stale_entries) == 1 else 'ies'}"
    )
    return "\n".join(lines) + "\n"


def _text_line(finding: Finding) -> str:
    """One ``path:line:col: RULE severity: message`` report line."""
    return (f"{finding.path}:{finding.line}:{finding.column}: "
            f"{finding.rule_id} {finding.severity.label}: "
            f"{finding.message}")


def render_json(report: AnalysisReport,
                show_baselined: bool = True) -> str:
    """The machine-facing report: stable keys, sorted, no timestamps."""
    findings = []
    for finding in report.new_findings:
        findings.append({**finding.to_dict(), "baselined": False})
    if show_baselined:
        for finding in report.baselined_findings:
            findings.append({**finding.to_dict(), "baselined": True})
    findings.sort(key=lambda f: (f["path"], f["line"], f["column"],
                                 f["rule"], f["baselined"]))
    payload = {
        "version": JSON_REPORT_VERSION,
        "tool": "corlint",
        "files_scanned": report.files_scanned,
        "findings": findings,
        "stale_baseline_entries": [
            entry.to_dict() for entry in report.stale_entries
        ],
        "summary": {
            "new": len(report.new_findings),
            "baselined": len(report.baselined_findings),
            "stale": len(report.stale_entries),
            "new_by_rule": report.counts_by_rule(),
            "baselined_by_rule": report.counts_by_rule(baselined=True),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
