"""Finding and severity model shared by every corlint component.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line *number* —
only the file, the rule and the normalized source text participate — so
baselined findings survive unrelated edits that shift code up or down.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """Per-rule severity; orders findings and labels reports."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        """The lowercase name used in reports ("warning" / "error")."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        """Parse a report label back into a :class:`Severity`."""
        return cls[label.upper()]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by location then rule, which is the deterministic report
    order.  ``line_content`` is the stripped source line the finding
    anchors to; it feeds both the text report and the fingerprint.
    """

    path: str
    """Repo-root-relative posix path of the offending file."""
    line: int
    column: int
    rule_id: str
    severity: Severity
    message: str
    line_content: str

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        normalized = " ".join(self.line_content.split())
        digest = hashlib.sha256(
            f"{self.path}\x00{self.rule_id}\x00{normalized}".encode()
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> dict:
        """A JSON-ready representation (used by the cache and reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "line_content": self.line_content,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            column=int(payload["column"]),
            rule_id=payload["rule"],
            severity=Severity.from_label(payload["severity"]),
            message=payload["message"],
            line_content=payload["line_content"],
        )
