"""The corlint engine: one AST walk per file, rules ride along.

:class:`Analyzer` collects files, parses each into a
:class:`~repro.analysis.source.SourceModule`, and walks its tree
exactly once while dispatching every node to the ``visit_<NodeType>``
handlers of every applicable :class:`ModuleRule`.  Project rules then
see the whole module set for cross-file invariants.  Inline
suppressions are applied per finding, the baseline splits the survivors
into new vs grandfathered, and everything is deterministic — same tree
in, same report out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry, BaselineMatch
from .cache import FindingsCache, file_digest
from .findings import Finding, Severity
from .rules import ModuleRule, ProjectRule, Rule, default_rules
from .rules.base import ModuleContext, ProjectContext
from .source import SourceModule, collect_files, find_repo_root, load_module

PARSE_ERROR_RULE = "CL000"


@dataclass
class AnalysisReport:
    """Everything one corlint run produced."""

    new_findings: list[Finding] = field(default_factory=list)
    baselined_findings: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules: list[Rule] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        """New and baselined findings together, in report order."""
        return sorted(self.new_findings + self.baselined_findings)

    @property
    def clean(self) -> bool:
        """True when nothing fails the gate (no new, no stale)."""
        return not self.new_findings and not self.stale_entries

    def counts_by_rule(self, baselined: bool = False) -> dict[str, int]:
        """Finding counts per rule id (new or baselined population)."""
        population = (self.baselined_findings if baselined
                      else self.new_findings)
        counts: dict[str, int] = {}
        for finding in population:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


class Analyzer:
    """Runs a rule set over a file set and applies the baseline."""

    def __init__(self, rules: list[Rule] | None = None,
                 use_cache: bool = False,
                 root: Path | None = None) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.use_cache = use_cache
        self.root = root
        self._module_rules = [r for r in self.rules
                              if isinstance(r, ModuleRule)]
        self._project_rules = [r for r in self.rules
                               if isinstance(r, ProjectRule)]
        self._signature = ",".join(
            sorted(rule.rule_id for rule in self.rules)
        )

    def run(self, targets: list[Path],
            baseline: Baseline | None = None) -> AnalysisReport:
        """Analyze ``targets`` and split findings against ``baseline``."""
        files = collect_files(targets)
        root = self.root or (find_repo_root(targets[0]) if targets
                             else Path.cwd())
        cache = FindingsCache(root) if self.use_cache else None

        modules: list[SourceModule] = []
        findings: list[Finding] = []
        for path in files:
            try:
                module = load_module(path, root)
            except SyntaxError as error:
                findings.append(self._parse_error(path, root, error))
                continue
            modules.append(module)
            findings.extend(self._module_findings(module, cache))

        project_ctx = ProjectContext()
        for rule in self._project_rules:
            rule.check_project(modules, project_ctx)
        by_relpath = {module.relpath: module for module in modules}
        for finding in project_ctx.findings:
            module = by_relpath.get(finding.path)
            if module is not None and module.is_suppressed(
                    finding.line, finding.rule_id):
                continue
            findings.append(finding)

        if cache is not None:
            cache.save()

        findings.sort()
        if baseline is not None:
            # Entries for rules not in this run (e.g. under --select)
            # cannot match anything; drop them so a restricted run does
            # not report the rest of the baseline as stale.
            active = {rule.rule_id for rule in self.rules}
            scoped = Baseline(entries=[
                entry for entry in baseline.entries
                if entry.rule in active
            ])
            match = scoped.match(findings)
        else:
            match = BaselineMatch(new=findings)
        return AnalysisReport(
            new_findings=match.new,
            baselined_findings=match.baselined,
            stale_entries=match.stale,
            files_scanned=len(files),
            rules=list(self.rules),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _module_findings(self, module: SourceModule,
                         cache: FindingsCache | None) -> list[Finding]:
        """Per-module rule findings, served from cache when unchanged."""
        digest = None
        if cache is not None:
            digest = file_digest(module.source, self._signature)
            cached = cache.get(module.relpath, digest)
            if cached is not None:
                return cached

        applicable = [rule for rule in self._module_rules
                      if rule.applies_to(module)]
        ctx = ModuleContext(module)
        if applicable:
            dispatch: dict[str, list] = {}
            for rule in applicable:
                rule.begin_module(module, ctx)
                for node_type, handler in rule.handlers().items():
                    dispatch.setdefault(node_type, []).append(handler)
            self._walk(module.tree, ctx, dispatch)
            for rule in applicable:
                rule.finish_module(module, ctx)

        kept = [
            finding for finding in ctx.findings
            if not module.is_suppressed(finding.line, finding.rule_id)
        ]
        kept.sort()
        if cache is not None and digest is not None:
            cache.put(module.relpath, digest, kept)
        return kept

    def _walk(self, node: ast.AST, ctx: ModuleContext,
              dispatch: dict[str, list]) -> None:
        """Depth-first dispatch walk maintaining the ancestor stack."""
        handlers = dispatch.get(type(node).__name__)
        if handlers:
            for handler in handlers:
                handler(node, ctx)
        ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, dispatch)
        ctx.ancestors.pop()

    @staticmethod
    def _parse_error(path: Path, root: Path,
                     error: SyntaxError) -> Finding:
        """A CL000 finding for an unparseable file."""
        try:
            relpath = path.resolve().relative_to(root).as_posix()
        except ValueError:
            relpath = path.name
        return Finding(
            path=relpath,
            line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            rule_id=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            message=f"file does not parse: {error.msg}",
            line_content=(error.text or "").strip(),
        )


def run_analysis(targets: list[Path],
                 baseline_path: Path | None = None,
                 rules: list[Rule] | None = None,
                 use_cache: bool = False) -> AnalysisReport:
    """One-call API: analyze ``targets`` against an optional baseline.

    This is what the test gate and ``collect_results.py --lint`` use;
    the CLI adds argument parsing and reporting on top of it.
    """
    baseline = (Baseline.load(baseline_path)
                if baseline_path is not None else None)
    analyzer = Analyzer(rules=rules, use_cache=use_cache)
    return analyzer.run([Path(t) for t in targets], baseline=baseline)
