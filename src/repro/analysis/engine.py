"""The corlint engine: one AST walk per file, rules ride along.

:class:`Analyzer` collects files, parses each into a
:class:`~repro.analysis.source.SourceModule`, and walks its tree
exactly once while dispatching every node to the ``visit_<NodeType>``
handlers of every applicable :class:`ModuleRule`.  Project rules then
see the whole module set for cross-file invariants; when any
:class:`SemanticRule` is active the engine first compiles the
whole-program semantic model (import graph, symbol tables, approximate
call graph — cached per file like findings) and exposes it through the
:class:`ProjectContext`.  Inline suppressions are applied per finding,
the baseline splits the survivors into new vs grandfathered (entries
whose file has left the tree are *always* reported stale, and entries
for files outside the scanned targets are ignored rather than
misreported), and everything is deterministic — same tree in, same
report out.  Wall-clock timings (per rule, model build, total) ride on
the report for the benchmarks but never enter the rendered output.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry, BaselineMatch
from .cache import FindingsCache, file_digest
from .findings import Finding, Severity
from .model import SemanticModel, build_model
from .rules import ModuleRule, ProjectRule, Rule, SemanticRule, \
    default_rules
from .rules.base import ModuleContext, ProjectContext
from .source import SourceModule, collect_files, find_repo_root, load_module

PARSE_ERROR_RULE = "CL000"


@dataclass
class AnalysisReport:
    """Everything one corlint run produced."""

    new_findings: list[Finding] = field(default_factory=list)
    baselined_findings: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules: list[Rule] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    """Per-rule wall seconds plus ``model_build`` and ``total`` — for
    the benchmarks only; never rendered into reports (which must stay
    byte-identical across runs)."""
    model_stats: dict | None = None
    """Semantic-model shape statistics when a model was built."""

    @property
    def all_findings(self) -> list[Finding]:
        """New and baselined findings together, in report order."""
        return sorted(self.new_findings + self.baselined_findings)

    @property
    def clean(self) -> bool:
        """True when nothing fails the gate (no new, no stale)."""
        return not self.new_findings and not self.stale_entries

    def counts_by_rule(self, baselined: bool = False) -> dict[str, int]:
        """Finding counts per rule id (new or baselined population)."""
        population = (self.baselined_findings if baselined
                      else self.new_findings)
        counts: dict[str, int] = {}
        for finding in population:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


class Analyzer:
    """Runs a rule set over a file set and applies the baseline."""

    def __init__(self, rules: list[Rule] | None = None,
                 use_cache: bool = False,
                 root: Path | None = None,
                 partial: bool = False) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.use_cache = use_cache
        self.root = root
        self.partial = partial
        """True for diff-aware (``--changed``) or other explicit-file
        scans: the semantic model is marked non-whole-program so
        absence-of-reference rules stay silent."""
        self._module_rules = [r for r in self.rules
                              if isinstance(r, ModuleRule)]
        self._project_rules = [r for r in self.rules
                               if isinstance(r, ProjectRule)]
        self._signature = ",".join(
            sorted(rule.rule_id for rule in self.rules)
        )
        self._timings: dict[str, float] = {}

    def run(self, targets: list[Path],
            baseline: Baseline | None = None) -> AnalysisReport:
        """Analyze ``targets`` and split findings against ``baseline``."""
        started = time.perf_counter()
        self._timings = {}
        files = collect_files(targets)
        root = self.root or (find_repo_root(targets[0]) if targets
                             else Path.cwd())
        cache = FindingsCache(root) if self.use_cache else None

        modules: list[SourceModule] = []
        findings: list[Finding] = []
        for path in files:
            try:
                module = load_module(path, root)
            except SyntaxError as error:
                findings.append(self._parse_error(path, root, error))
                continue
            modules.append(module)
            findings.extend(self._module_findings(module, cache))

        model = self._build_model(modules, root)
        project_ctx = ProjectContext(model=model)
        for rule in self._project_rules:
            rule_started = time.perf_counter()
            rule.check_project(modules, project_ctx)
            self._charge(rule.rule_id,
                         time.perf_counter() - rule_started)
        by_relpath = {module.relpath: module for module in modules}
        for finding in project_ctx.findings:
            module = by_relpath.get(finding.path)
            if module is not None and module.is_suppressed(
                    finding.line, finding.rule_id):
                continue
            findings.append(finding)

        if cache is not None:
            cache.save()

        findings.sort()
        if baseline is not None:
            match = self._match_baseline(baseline, findings, root,
                                         targets, model)
        else:
            match = BaselineMatch(new=findings)
        report = AnalysisReport(
            new_findings=match.new,
            baselined_findings=match.baselined,
            stale_entries=match.stale,
            files_scanned=len(files),
            rules=list(self.rules),
            timings=dict(self._timings),
            model_stats=model.stats() if model is not None else None,
        )
        report.timings["total"] = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _charge(self, rule_id: str, seconds: float) -> None:
        """Accumulate wall time against one rule's bucket."""
        self._timings[rule_id] = self._timings.get(rule_id, 0.0) + seconds

    def _build_model(self, modules: list[SourceModule],
                     root: Path) -> SemanticModel | None:
        """Compile the semantic model if any active rule needs it."""
        if not any(isinstance(rule, SemanticRule)
                   for rule in self._project_rules):
            return None
        model = build_model(modules, root=root,
                            use_cache=self.use_cache,
                            whole_program=not self.partial)
        self._timings["model_build"] = model.build_seconds
        return model

    def _match_baseline(self, baseline: Baseline,
                        findings: list[Finding], root: Path,
                        targets: list[Path],
                        model: SemanticModel | None) -> BaselineMatch:
        """Split findings against the baseline, path- and rule-scoped.

        Three entry populations: entries whose file no longer exists
        are stale unconditionally (the finding can never fire again);
        entries for existing files *outside* the scanned targets are
        ignored (a subtree scan proves nothing about them); the rest
        participate in normal fingerprint matching, restricted to the
        rules that *effectively ran* — ``--select`` runs and partial
        scans (where whole-program rules stay silent) must not mark
        the remainder of the baseline stale.
        """
        resolved = [t.resolve() for t in targets]
        active = {
            rule.rule_id for rule in self.rules
            if not (isinstance(rule, SemanticRule)
                    and (model is None
                         or (rule.requires_whole_program
                             and not model.whole_program)))
        }
        missing: list[BaselineEntry] = []
        scoped: list[BaselineEntry] = []
        for entry in baseline.entries:
            target = root / entry.path
            if not target.is_file():
                missing.append(entry)
                continue
            target = target.resolve()
            in_scope = any(
                target == t or t in target.parents for t in resolved
            )
            if in_scope and entry.rule in active:
                scoped.append(entry)
        match = Baseline(entries=scoped).match(findings)
        match.stale.extend(missing)
        match.stale.sort(key=lambda e: (e.path, e.rule, e.fingerprint))
        return match

    def _module_findings(self, module: SourceModule,
                         cache: FindingsCache | None) -> list[Finding]:
        """Per-module rule findings, served from cache when unchanged."""
        digest = None
        if cache is not None:
            digest = file_digest(module.source, self._signature)
            cached = cache.get(module.relpath, digest)
            if cached is not None:
                return cached

        applicable = [rule for rule in self._module_rules
                      if rule.applies_to(module)]
        ctx = ModuleContext(module)
        if applicable:
            dispatch: dict[str, list] = {}
            for rule in applicable:
                rule.begin_module(module, ctx)
                for node_type, handler in rule.handlers().items():
                    dispatch.setdefault(node_type, []).append(
                        (rule.rule_id, handler))
            self._walk(module.tree, ctx, dispatch)
            for rule in applicable:
                rule.finish_module(module, ctx)

        kept = [
            finding for finding in ctx.findings
            if not module.is_suppressed(finding.line, finding.rule_id)
        ]
        kept.sort()
        if cache is not None and digest is not None:
            cache.put(module.relpath, digest, kept)
        return kept

    def _walk(self, node: ast.AST, ctx: ModuleContext,
              dispatch: dict[str, list]) -> None:
        """Depth-first dispatch walk maintaining the ancestor stack."""
        handlers = dispatch.get(type(node).__name__)
        if handlers:
            for rule_id, handler in handlers:
                handler_started = time.perf_counter()
                handler(node, ctx)
                self._charge(rule_id,
                             time.perf_counter() - handler_started)
        ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, dispatch)
        ctx.ancestors.pop()

    @staticmethod
    def _parse_error(path: Path, root: Path,
                     error: SyntaxError) -> Finding:
        """A CL000 finding for an unparseable file."""
        try:
            relpath = path.resolve().relative_to(root).as_posix()
        except ValueError:
            relpath = path.name
        return Finding(
            path=relpath,
            line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            rule_id=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            message=f"file does not parse: {error.msg}",
            line_content=(error.text or "").strip(),
        )


def run_analysis(targets: list[Path],
                 baseline_path: Path | None = None,
                 rules: list[Rule] | None = None,
                 use_cache: bool = False,
                 partial: bool = False) -> AnalysisReport:
    """One-call API: analyze ``targets`` against an optional baseline.

    This is what the test gate and ``collect_results.py --lint`` use;
    the CLI adds argument parsing and reporting on top of it.
    """
    baseline = (Baseline.load(baseline_path)
                if baseline_path is not None else None)
    analyzer = Analyzer(rules=rules, use_cache=use_cache,
                        partial=partial)
    return analyzer.run([Path(t) for t in targets], baseline=baseline)
