"""The ``python -m repro.analysis`` command line.

Exit codes: 0 — clean (every finding baselined, no stale entries);
1 — new findings or stale baseline entries; 2 — usage error.

``--changed [REF]`` turns corlint diff-aware: only Python files touched
since ``REF`` (default HEAD) are scanned, and whole-program
absence-of-reference rules (CL012, CL014) stay silent because a partial
scan cannot prove absence.  ``--check-baseline`` audits the baseline
itself: stale entries (fixed findings, or entries whose file left the
tree) fail the run even when the tree is otherwise clean.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .baseline import Baseline, DEFAULT_BASELINE_NAME, \
    baseline_from_findings
from .engine import Analyzer
from .reporters import render_json, render_text
from .rules import default_rules, rules_by_id
from .source import find_repo_root


def build_parser() -> argparse.ArgumentParser:
    """The corlint argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("corlint: AST- and call-graph-based invariant "
                     "analyzer for the Corleone reproduction "
                     "(determinism, crowd accounting, kernel parity, "
                     "checkpoint completeness, observability "
                     "consistency)"),
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--changed", nargs="?", const="HEAD",
                        default=None, metavar="REF",
                        help="analyze only Python files changed since "
                             "REF (default HEAD); whole-program rules "
                             "are skipped")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report to this file "
                             "instead of stdout")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: "
                             f"<repo root>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to absorb all "
                             "current findings (preserves existing "
                             "justifications)")
    parser.add_argument("--check-baseline", action="store_true",
                        help="audit the baseline: exit non-zero iff "
                             "it has stale entries")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RULE", dest="rule",
                        help="run only this rule (repeatable; "
                             "combines with --select)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings "
                             "(text format)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write .corlint_cache")
    parser.add_argument("--model-stats", action="store_true",
                        help="print semantic-model statistics and "
                             "per-rule timings to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _pick_rules(select: str | None, ignore: str | None) -> list:
    """Resolve --select/--rule/--ignore into a rule instance list."""
    catalog = rules_by_id()
    chosen = dict(catalog)
    if select:
        wanted = {item.strip() for item in select.split(",") if item.strip()}
        unknown = wanted - catalog.keys()
        if unknown:
            raise SystemExit(
                f"corlint: unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        chosen = {rid: rule for rid, rule in catalog.items()
                  if rid in wanted}
    if ignore:
        dropped = {item.strip() for item in ignore.split(",")}
        chosen = {rid: rule for rid, rule in chosen.items()
                  if rid not in dropped}
    return list(chosen.values())


def _changed_files(root: Path, ref: str) -> list[Path] | None:
    """Python files changed since ``ref``, or None when git fails."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref, "--"],
            cwd=root, capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    changed = []
    for line in proc.stdout.splitlines():
        candidate = root / line.strip()
        if candidate.suffix == ".py" and candidate.is_file():
            changed.append(candidate)
    return changed


def _print_model_stats(report, stream) -> None:
    """Render --model-stats output (stderr; never in the report)."""
    if report.model_stats is None:
        print("corlint: no semantic model was built "
              "(no semantic rules active)", file=stream)
    else:
        print("corlint: semantic model", file=stream)
        for key, value in sorted(report.model_stats.items()):
            print(f"  {key}: {value}", file=stream)
    timed = {k: v for k, v in report.timings.items()
             if k not in ("total",)}
    print("corlint: timings (seconds)", file=stream)
    for key in sorted(timed):
        print(f"  {key}: {timed[key]:.4f}", file=stream)
    print(f"  total: {report.timings.get('total', 0.0):.4f}",
          file=stream)


def main(argv: list[str] | None = None) -> int:
    """Run corlint; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id} [{rule.severity.label}] {rule.summary}")
        return 0

    if args.changed is not None and args.paths:
        print("corlint: --changed and explicit paths are mutually "
              "exclusive", file=sys.stderr)
        return 2

    targets = args.paths or [Path("src") / "repro"]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        print(f"corlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    root = find_repo_root(targets[0])
    partial = False
    if args.changed is not None:
        changed = _changed_files(root, args.changed)
        if changed is None:
            print(f"corlint: git diff against {args.changed!r} failed",
                  file=sys.stderr)
            return 2
        if not changed:
            print(f"corlint: no Python files changed since "
                  f"{args.changed}")
            return 0
        targets = changed
        partial = True

    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    baseline = None if args.no_baseline else Baseline.load(baseline_path)

    select = args.select
    if args.rule:
        picked = ",".join(args.rule)
        select = f"{select},{picked}" if select else picked
    try:
        rules = _pick_rules(select, args.ignore)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 2

    analyzer = Analyzer(rules=rules, use_cache=not args.no_cache,
                        root=root, partial=partial)
    report = analyzer.run(targets, baseline=baseline)

    if args.model_stats:
        _print_model_stats(report, sys.stderr)

    if args.update_baseline:
        updated = baseline_from_findings(
            report.all_findings, previous=baseline
        )
        target = updated.write(baseline_path)
        print(f"corlint: wrote {len(updated.entries)} baseline "
              f"entr{'y' if len(updated.entries) == 1 else 'ies'} "
              f"to {target}")
        return 0

    if args.check_baseline:
        if report.stale_entries:
            for entry in report.stale_entries:
                print(f"stale baseline entry: {entry.rule} "
                      f"{entry.path} ({entry.fingerprint})")
            print(f"corlint: {len(report.stale_entries)} stale "
                  f"baseline entr"
                  f"{'y' if len(report.stale_entries) == 1 else 'ies'}"
                  f" — regenerate with --update-baseline")
            return 1
        print("corlint: baseline is tight (no stale entries)")
        return 0

    if args.format == "json":
        rendered = render_json(report)
    else:
        rendered = render_text(report,
                               show_baselined=args.show_baselined)
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return 0 if report.clean else 1
