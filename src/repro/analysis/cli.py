"""The ``python -m repro.analysis`` command line.

Exit codes: 0 — clean (every finding baselined, no stale entries);
1 — new findings or stale baseline entries; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline, DEFAULT_BASELINE_NAME, \
    baseline_from_findings
from .engine import Analyzer
from .reporters import render_json, render_text
from .rules import default_rules, rules_by_id
from .source import find_repo_root


def build_parser() -> argparse.ArgumentParser:
    """The corlint argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("corlint: AST-based invariant analyzer for the "
                     "Corleone reproduction (determinism, crowd "
                     "accounting, kernel parity, numeric hygiene, "
                     "picklability)"),
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report to this file "
                             "instead of stdout")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: "
                             f"<repo root>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to absorb all "
                             "current findings (preserves existing "
                             "justifications)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings "
                             "(text format)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write .corlint_cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _pick_rules(select: str | None, ignore: str | None) -> list:
    """Resolve --select/--ignore into a rule instance list."""
    catalog = rules_by_id()
    chosen = dict(catalog)
    if select:
        wanted = {item.strip() for item in select.split(",") if item.strip()}
        unknown = wanted - catalog.keys()
        if unknown:
            raise SystemExit(
                f"corlint: unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        chosen = {rid: rule for rid, rule in catalog.items()
                  if rid in wanted}
    if ignore:
        dropped = {item.strip() for item in ignore.split(",")}
        chosen = {rid: rule for rid, rule in chosen.items()
                  if rid not in dropped}
    return list(chosen.values())


def main(argv: list[str] | None = None) -> int:
    """Run corlint; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id} [{rule.severity.label}] {rule.summary}")
        return 0

    targets = args.paths or [Path("src") / "repro"]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        print(f"corlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    root = find_repo_root(targets[0])
    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    baseline = None if args.no_baseline else Baseline.load(baseline_path)

    try:
        rules = _pick_rules(args.select, args.ignore)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 2

    analyzer = Analyzer(rules=rules, use_cache=not args.no_cache,
                        root=root)
    report = analyzer.run(targets, baseline=baseline)

    if args.update_baseline:
        updated = baseline_from_findings(
            report.all_findings, previous=baseline
        )
        target = updated.write(baseline_path)
        print(f"corlint: wrote {len(updated.entries)} baseline "
              f"entr{'y' if len(updated.entries) == 1 else 'ies'} "
              f"to {target}")
        return 0

    if args.format == "json":
        rendered = render_json(report)
    else:
        rendered = render_text(report,
                               show_baselined=args.show_baselined)
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return 0 if report.clean else 1
