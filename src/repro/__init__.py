"""Corleone: hands-off crowdsourced entity matching (SIGMOD 2014).

A from-scratch reproduction of the Corleone system of Gokhale et al.:
the crowd — not a developer — executes every step of the entity-matching
workflow: blocking, matcher training, accuracy estimation, and iterative
refinement over difficult pairs.

Quickstart::

    import numpy as np
    from repro import Corleone, SimulatedCrowd, load_dataset, scaled_config

    dataset = load_dataset("products")
    crowd = SimulatedCrowd(dataset.matches, error_rate=0.1,
                           rng=np.random.default_rng(7))
    pipeline = Corleone(scaled_config(), crowd)
    result = pipeline.run(dataset.table_a, dataset.table_b,
                          dataset.seed_labels)
    print(len(result.predicted_matches), "matches,",
          f"${result.cost.dollars:.2f} crowd cost")
"""

from .config import (
    BlockerConfig,
    CorleoneConfig,
    CrowdConfig,
    DEFAULT_CONFIG,
    EstimatorConfig,
    ForestConfig,
    LocatorConfig,
    MatcherConfig,
    scaled_config,
)
from .core.baselines import BaselineResult, developer_blocking, run_baseline
from .core.blocker import Blocker, BlockerResult
from .core.budgeting import BudgetPlan, PhaseBudgetManager
from .core.multitask import BatchOutcome, EMTask, MultiTaskRunner
from .core.reapply import DriftReport, ReapplyResult, drift_report, reapply_matcher
from .core.dedup import DedupResult, Deduplicator, cluster_duplicates
from .core.estimator import AccuracyEstimate, AccuracyEstimator
from .core.locator import DifficultPairsLocator, LocatorResult
from .core.matcher import ActiveLearningMatcher, MatcherResult
from .core.pipeline import Corleone, CorleoneResult, IterationRecord
from .crowd import (
    AdaptivePolicy,
    CostTracker,
    ErrorRateEstimator,
    HeterogeneousCrowd,
    LabelingService,
    PerfectCrowd,
    ProfilingLabelingService,
    SimulatedCrowd,
    VoteScheme,
)
from .data import (
    Attribute,
    AttrType,
    CandidateSet,
    Pair,
    Record,
    Schema,
    Table,
    read_csv_table,
    write_csv_table,
)
from .evaluation import CorleoneRunSummary, run_corleone
from .exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    CorleoneError,
    CrowdError,
    DataError,
    EstimationError,
    FeatureError,
    RuleError,
    SchemaError,
)
from .features import FeatureLibrary, build_feature_library, vectorize_pairs
from .forest import DecisionTree, RandomForest, train_forest
from .metrics import Confusion, confusion_from_sets, prf1
from .rules import Rule, extract_negative_rules, extract_positive_rules
from .synth import (
    SyntheticDataset,
    generate_citations,
    generate_products,
    generate_restaurants,
    load_dataset,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "BlockerConfig", "CorleoneConfig", "CrowdConfig", "DEFAULT_CONFIG",
    "EstimatorConfig", "ForestConfig", "LocatorConfig", "MatcherConfig",
    "scaled_config",
    # pipeline & modules
    "Corleone", "CorleoneResult", "IterationRecord",
    "Blocker", "BlockerResult",
    "ActiveLearningMatcher", "MatcherResult",
    "AccuracyEstimator", "AccuracyEstimate",
    "DifficultPairsLocator", "LocatorResult",
    "BaselineResult", "developer_blocking", "run_baseline",
    "BudgetPlan", "PhaseBudgetManager",
    "EMTask", "MultiTaskRunner", "BatchOutcome",
    "ReapplyResult", "DriftReport", "reapply_matcher", "drift_report",
    "Deduplicator", "DedupResult", "cluster_duplicates",
    # crowd
    "SimulatedCrowd", "PerfectCrowd", "HeterogeneousCrowd",
    "LabelingService", "CostTracker", "VoteScheme",
    "ProfilingLabelingService", "AdaptivePolicy", "ErrorRateEstimator",
    # data
    "Attribute", "AttrType", "CandidateSet", "Pair", "Record", "Schema",
    "Table", "read_csv_table", "write_csv_table",
    # features & learning
    "FeatureLibrary", "build_feature_library", "vectorize_pairs",
    "DecisionTree", "RandomForest", "train_forest",
    "Rule", "extract_negative_rules", "extract_positive_rules",
    # metrics & evaluation
    "Confusion", "confusion_from_sets", "prf1",
    "CorleoneRunSummary", "run_corleone",
    # datasets
    "SyntheticDataset", "load_dataset",
    "generate_restaurants", "generate_citations", "generate_products",
    # errors
    "CorleoneError", "ConfigurationError", "SchemaError", "DataError",
    "FeatureError", "RuleError", "CrowdError", "BudgetExhaustedError",
    "EstimationError",
]
