"""Explaining matcher decisions.

A hands-off system still has to answer "why did you match these two
records?" — the retailer of Example 3.1 will not ship catalog merges on
faith.  Random forests explain well: each prediction is a vote of
human-readable root-to-leaf paths over named similarity features.  This
module turns one prediction into:

* the vote split across trees;
* the decisive *path* each tree took, rendered as a rule;
* the features that contributed most (how often the paths tested them);
* a compact text rendering for logs and review UIs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import CandidateSet, Pair
from ..exceptions import DataError
from ..forest.forest import RandomForest
from ..forest.tree import DecisionTree, condition_satisfied
from ..rules.predicates import Predicate
from ..rules.rule import Rule, simplify_predicates


@dataclass(frozen=True)
class TreeVote:
    """One tree's decision on one pair."""

    tree_index: int
    label: bool
    path_rule: Rule
    """The root-to-leaf path the example followed, as a rule."""
    leaf_support: int
    """Training examples that reached the same leaf."""


@dataclass(frozen=True)
class MatchExplanation:
    """Everything the forest can say about one prediction."""

    pair: Pair
    predicted_match: bool
    votes_for: int
    votes_against: int
    confidence: float
    """1 - entropy of the vote split (Section 5.3's conf(e))."""
    tree_votes: tuple[TreeVote, ...]
    feature_usage: tuple[tuple[str, int], ...]
    """(feature name, number of deciding paths that test it), sorted."""

    def to_text(self) -> str:
        """A compact multi-line rendering for logs or review."""
        verdict = "MATCH" if self.predicted_match else "NO MATCH"
        lines = [
            f"{self.pair.a_id} vs {self.pair.b_id}: {verdict} "
            f"({self.votes_for}-{self.votes_against} votes, "
            f"confidence {self.confidence:.2f})",
            "deciding features: " + ", ".join(
                f"{name} x{count}" for name, count in self.feature_usage[:5]
            ),
        ]
        for vote in self.tree_votes:
            marker = "+" if vote.label else "-"
            lines.append(
                f"  [{marker}] tree {vote.tree_index}: {vote.path_rule} "
                f"(leaf support {vote.leaf_support})"
            )
        return "\n".join(lines)


def explain_pair(forest: RandomForest, candidates: CandidateSet,
                 pair: Pair) -> MatchExplanation:
    """Explain the forest's prediction for one candidate pair."""
    row = candidates.index_of(Pair(*pair))
    vector = candidates.features[row:row + 1]
    names = candidates.feature_names
    if forest.n_features_ != len(names):
        raise DataError("forest and candidate set disagree on features")

    tree_votes = []
    usage: dict[str, int] = {}
    for index, tree in enumerate(forest.trees):
        path = _followed_path(tree, vector[0])
        predicates = simplify_predicates([
            Predicate(
                feature_index=c.feature,
                feature_name=names[c.feature],
                le=c.le,
                threshold=c.threshold,
                nan_satisfies=c.nan_satisfies,
            )
            for c in path.conditions
        ])
        if predicates:
            rule = Rule(predicates, predicts_match=path.label,
                        source=f"tree{index}")
        else:
            # An unsplit tree: represent its vote as a tautology.
            rule = Rule(
                [Predicate(0, names[0], True, float("1e308"),
                           nan_satisfies=True)],
                predicts_match=path.label, source=f"tree{index}",
            )
        tree_votes.append(TreeVote(
            tree_index=index,
            label=path.label,
            path_rule=rule,
            leaf_support=path.n_total,
        ))
        for predicate in predicates:
            usage[predicate.feature_name] = (
                usage.get(predicate.feature_name, 0) + 1
            )

    votes_for = sum(1 for vote in tree_votes if vote.label)
    votes_against = len(tree_votes) - votes_for
    confidence = float(forest.confidence(vector)[0])
    feature_usage = tuple(sorted(
        usage.items(), key=lambda item: (-item[1], item[0])
    ))
    return MatchExplanation(
        pair=Pair(*pair),
        predicted_match=votes_for * 2 >= len(tree_votes),
        votes_for=votes_for,
        votes_against=votes_against,
        confidence=confidence,
        tree_votes=tuple(tree_votes),
        feature_usage=feature_usage,
    )


def _followed_path(tree: DecisionTree, vector: np.ndarray):
    """The unique root-to-leaf path this example satisfies."""
    for path in tree.paths():
        ok = True
        for condition in path.conditions:
            value = np.asarray([vector[condition.feature]])
            if not condition_satisfied(condition, value)[0]:
                ok = False
                break
        if ok:
            return path
    raise DataError("example satisfied no tree path (corrupt tree?)")


def explain_errors(forest: RandomForest, candidates: CandidateSet,
                   predictions: np.ndarray, gold: set[Pair],
                   limit: int = 10) -> dict[str, list[MatchExplanation]]:
    """Explanations for the worst mistakes (experimenter's error audit).

    Returns explanations for up to ``limit`` false positives and false
    negatives each, most-confident mistakes first — the places where the
    matcher is confidently wrong are the ones worth reading.
    """
    predictions = np.asarray(predictions, dtype=bool)
    confidence = forest.confidence(candidates.features)
    false_positive_rows = [
        row for row, pair in enumerate(candidates.pairs)
        if predictions[row] and Pair(*pair) not in gold
    ]
    false_negative_rows = [
        row for row, pair in enumerate(candidates.pairs)
        if not predictions[row] and Pair(*pair) in gold
    ]

    def worst(rows: list[int]) -> list[MatchExplanation]:
        ranked = sorted(rows, key=lambda r: -confidence[r])[:limit]
        return [
            explain_pair(forest, candidates, candidates.pairs[row])
            for row in ranked
        ]

    return {
        "false_positives": worst(false_positive_rows),
        "false_negatives": worst(false_negative_rows),
    }
