"""Experiment harness: run Corleone/baselines against gold and format tables."""

from .experiment import (
    CorleoneRunSummary,
    evaluate_result,
    run_corleone,
    score_iteration,
)
from .explain import MatchExplanation, TreeVote, explain_errors, explain_pair
from .plotting import line_plot, multi_series_table, sparkline
from .reporting import format_table, pct

__all__ = [
    "CorleoneRunSummary",
    "evaluate_result",
    "run_corleone",
    "score_iteration",
    "format_table",
    "pct",
    "MatchExplanation",
    "TreeVote",
    "explain_errors",
    "explain_pair",
    "line_plot",
    "multi_series_table",
    "sparkline",
]
