"""Running Corleone on a synthetic dataset and scoring against gold.

The pipeline itself never sees ground truth (it is hands-off); this module
is the experimenter's harness that wires a simulated crowd to the gold
labels, runs the pipeline, and computes the *true* accuracy numbers that
the paper's tables report next to the crowd-estimated ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CorleoneConfig
from ..core.pipeline import Corleone, CorleoneResult, IterationRecord
from ..crowd.simulated import SimulatedCrowd
from ..metrics import Confusion, blocking_recall, confusion_from_sets
from ..synth.base import SyntheticDataset


@dataclass
class CorleoneRunSummary:
    """A full run plus its gold-truth scoring."""

    dataset: SyntheticDataset
    result: CorleoneResult
    confusion: Confusion
    """True confusion of the final predicted matches against gold."""

    @property
    def precision(self) -> float:
        return self.confusion.precision

    @property
    def recall(self) -> float:
        return self.confusion.recall

    @property
    def f1(self) -> float:
        return self.confusion.f1

    @property
    def blocking_recall(self) -> float:
        """Fraction of gold matches that survived blocking (Table 3)."""
        return blocking_recall(
            self.result.blocker.candidate_pairs, self.dataset.matches
        )

    @property
    def dollars(self) -> float:
        return self.result.cost.dollars

    @property
    def pairs_labeled(self) -> int:
        return self.result.cost.pairs_labeled


def run_corleone(dataset: SyntheticDataset, config: CorleoneConfig,
                 error_rate: float = 0.0, seed: int = 0,
                 mode: str = "full") -> CorleoneRunSummary:
    """Run the hands-off pipeline with a simulated crowd and score it."""
    crowd_rng = np.random.default_rng(seed + 10_000)
    pipeline_rng = np.random.default_rng(seed)
    crowd = SimulatedCrowd(dataset.matches, error_rate=error_rate,
                           rng=crowd_rng)
    pipeline = Corleone(config, crowd, rng=pipeline_rng)
    result = pipeline.run(
        dataset.table_a, dataset.table_b, dataset.seed_labels, mode=mode
    )
    return CorleoneRunSummary(
        dataset=dataset,
        result=result,
        confusion=evaluate_result(result, dataset),
    )


def evaluate_result(result: CorleoneResult,
                    dataset: SyntheticDataset) -> Confusion:
    """True confusion of a run's final predictions against gold.

    Gold matches eliminated by blocking count as false negatives: the
    system can never predict them, and the paper scores them as misses.
    """
    return confusion_from_sets(result.predicted_matches, dataset.matches)


def score_iteration(record: IterationRecord,
                    dataset: SyntheticDataset) -> Confusion:
    """True confusion of one iteration's combined predictions (Table 4)."""
    return confusion_from_sets(record.predicted_pairs, dataset.matches)
