"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence


def pct(value: float, digits: int = 1) -> str:
    """Format a [0, 1] ratio as a percentage string, e.g. 0.965 -> '96.5'."""
    return f"{100.0 * value:.{digits}f}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a header separator."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [
        max(len(row[col]) for row in cells)
        for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(value.ljust(width)
                         for value, width in zip(row, widths))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
