"""Dependency-free text plots for benchmark artifacts.

The benchmark suite regenerates the paper's *figures* as well as its
tables; these helpers render line series (e.g. Figure 3's conf(V)
trajectories) as ASCII plots that live happily in a results .txt file or
a terminal.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import DataError

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], low: float | None = None,
              high: float | None = None) -> str:
    """A one-line unicode sparkline of a series.

    ``low``/``high`` fix the scale (default: the series' own range).
    """
    if not values:
        raise DataError("cannot plot an empty series")
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    if hi <= lo:
        return _BLOCKS[-1] * len(values)
    span = hi - lo
    out = []
    for value in values:
        clipped = min(max(value, lo), hi)
        index = int((clipped - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def line_plot(values: Sequence[float], width: int = 64, height: int = 12,
              title: str = "", y_low: float | None = None,
              y_high: float | None = None) -> str:
    """A multi-line ASCII plot of one series.

    The series is resampled to ``width`` columns; the y-axis is labelled
    with the scale bounds.  Good enough to *see* a confidence plateau or
    a degradation without matplotlib.
    """
    if not values:
        raise DataError("cannot plot an empty series")
    if width < 2 or height < 2:
        raise DataError("plot must be at least 2x2")

    lo = min(values) if y_low is None else y_low
    hi = max(values) if y_high is None else y_high
    if hi <= lo:
        hi = lo + 1.0

    # Resample by bucket-averaging onto the plot width.
    resampled: list[float] = []
    n = len(values)
    for col in range(min(width, n)):
        start = col * n // min(width, n)
        stop = max(start + 1, (col + 1) * n // min(width, n))
        bucket = values[start:stop]
        resampled.append(sum(bucket) / len(bucket))

    rows = []
    grid = [[" "] * len(resampled) for _ in range(height)]
    for col, value in enumerate(resampled):
        clipped = min(max(value, lo), hi)
        level = int((clipped - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - level][col] = "*"

    label_hi = f"{hi:.2f}"
    label_lo = f"{lo:.2f}"
    gutter = max(len(label_hi), len(label_lo))
    for i, row in enumerate(grid):
        if i == 0:
            label = label_hi
        elif i == height - 1:
            label = label_lo
        else:
            label = ""
        rows.append(f"{label:>{gutter}} |{''.join(row)}")
    rows.append(f"{'':>{gutter}} +{'-' * len(resampled)}")
    rows.append(
        f"{'':>{gutter}}  iteration 1 .. {len(values)}"
    )
    if title:
        rows.insert(0, title)
    return "\n".join(rows)


def multi_series_table(series: dict[str, Sequence[float]],
                       low: float | None = None,
                       high: float | None = None) -> str:
    """Aligned sparklines for several named series on a shared scale."""
    if not series:
        raise DataError("no series to plot")
    if low is None:
        low = min(min(values) for values in series.values())
    if high is None:
        high = max(max(values) for values in series.values())
    name_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        spark = sparkline(values, low=low, high=high)
        lines.append(
            f"{name:<{name_width}}  {spark}  "
            f"[{values[0]:.2f} -> {values[-1]:.2f}, n={len(values)}]"
        )
    return "\n".join(lines)
