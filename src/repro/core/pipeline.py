"""The Corleone orchestrator (Figure 1), as a thin engine driver.

The hands-off loop — block A x B, train a matcher with the crowd,
estimate its accuracy, locate the difficult pairs, reduce, repeat — is
implemented as five stages executed by the staged engine
(:mod:`repro.engine`).  This module supplies only the public
entry points: build the run context, seed the
:class:`~repro.engine.state.RunState`, drive it to completion, and
package (possibly partial) results.  With a ``run_dir``, every stage
boundary and matcher iteration is checkpointed, and
:meth:`Corleone.resume` continues a killed run to a bit-identical
result.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..config import CorleoneConfig
from ..crowd.base import CrowdPlatform
from ..data.pairs import CandidateSet, Pair
from ..data.table import Table
from ..engine.checkpoint import (
    CANDIDATES_FILE,
    TRACE_FILE,
    Checkpointer,
    load_checkpoint,
    load_run_inputs,
)
from ..engine.context import RunContext
from ..engine.events import EVENT_TRACE_TORN, EventBus, JsonlTraceSink
from ..engine.runner import StagedEngine
from ..engine.state import RunState
from ..exceptions import (
    BudgetExhaustedError,
    CrowdUnavailableError,
    DataError,
)
from ..features.library import build_feature_library
from ..obs.progress import ProgressHeartbeat
from ..persistence import load_candidates
from ..storage.recovery import (
    RecoveryLog,
    cleanup_stale_tmp,
    quarantine_artifact,
    repair_trace,
    verify_artifact,
)
from .blocker import Blocker, BlockerResult
from .budgeting import BudgetPlan, PhaseBudgetManager
from .estimator import AccuracyEstimate, AccuracyEstimator
from .locator import DifficultPairsLocator, LocatorResult
from .matcher import ActiveLearningMatcher, MatcherResult
from .results import CorleoneResult, IterationRecord

__all__ = [
    "ActiveLearningMatcher",
    "AccuracyEstimate",
    "AccuracyEstimator",
    "Blocker",
    "BlockerResult",
    "Corleone",
    "CorleoneResult",
    "DifficultPairsLocator",
    "IterationRecord",
    "LocatorResult",
    "MatcherResult",
]


class Corleone:
    """The hands-off crowdsourced EM pipeline.

    The user supplies only what the paper's Section 3 asks for: the two
    tables, a matching instruction (carried in the dataset object; shown
    to real crowds, unused by simulated ones) and four labelled seed
    pairs.  Everything else — blocking rules, training data, accuracy
    estimates, iteration — comes from the crowd.

    ``seed`` (or a back-compat ``rng``) fixes the run's root seed
    sequence, from which each stage derives its own independent RNG
    stream.  ``run_dir`` enables checkpointing: the run writes its
    inputs, candidate set, event trace and a resumable checkpoint into
    that directory.
    """

    def __init__(self, config: CorleoneConfig, platform: CrowdPlatform,
                 rng: np.random.Generator | None = None,
                 seed: int | np.random.SeedSequence | None = None,
                 run_dir: str | Path | None = None,
                 bus: EventBus | None = None,
                 telemetry: bool = True) -> None:
        self.config = config
        self.platform = platform
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self._ctx = RunContext(config, platform, seed=seed, rng=rng,
                               bus=bus, telemetry=telemetry)
        self.service = self._ctx.service
        self.tracker = self._ctx.tracker
        self.bus = self._ctx.bus

    @property
    def context(self) -> RunContext:
        """The run context (RNG streams, services, event bus)."""
        return self._ctx

    def run(self, table_a: Table, table_b: Table,
            seed_labels: dict[Pair, bool],
            mode: str = "full",
            budget_plan: BudgetPlan | None = None) -> CorleoneResult:
        """Execute the pipeline.

        ``mode`` selects how much of the workflow runs:

        * ``"full"`` — iterate until estimated accuracy stops improving;
        * ``"one_iteration"`` — block, match, estimate once;
        * ``"blocker_matcher"`` — block and match only (no estimate).

        ``budget_plan`` optionally allocates dollars per phase (blocking
        / matching / estimation / reduction); a phase that exhausts its
        allocation wraps up with the labels it has instead of aborting
        the run.
        """
        if mode not in ("full", "one_iteration", "blocker_matcher"):
            raise DataError(f"unknown run mode {mode!r}")
        self._check_seeds(seed_labels)
        library = build_feature_library(table_a, table_b)

        ctx = self._ctx
        ctx.manager = (PhaseBudgetManager(budget_plan, ctx.tracker)
                       if budget_plan is not None else None)
        state = RunState(mode=mode, seed_labels=dict(seed_labels))
        state.attach(table_a, table_b, library)

        checkpointer = None
        if self.run_dir is not None:
            checkpointer = Checkpointer(self.run_dir)
            checkpointer.write_inputs(state, ctx, budget_plan)
        return self._execute(state, checkpointer)

    @classmethod
    def resume(cls, run_dir: str | Path,
               platform: CrowdPlatform) -> CorleoneResult:
        """Continue a checkpointed run to its (bit-identical) result.

        Everything mutable — run state, label cache, cost ledger, phase
        budgets, platform answer stream, RNG stream states — is restored
        from the directory's latest checkpoint, so the resumed run
        produces exactly the result the uninterrupted run would have.
        ``platform`` must be constructed the same way as the original
        run's (its internal state is then fast-forwarded from the
        checkpoint when it supports ``load_state``).
        """
        run_dir = Path(run_dir)
        # Heal the directory before reading anything from it: drop
        # stale ``*.tmp`` leftovers of interrupted atomic writes and
        # truncate a torn trace tail (a kill mid-append can leave a
        # partial final line).  What was repaired is remembered in a
        # recovery log and replayed onto the event bus once it exists,
        # so the resumed run's trace and telemetry account for it.
        recovery = RecoveryLog()
        cleanup_stale_tmp(run_dir)
        trace_path = run_dir / TRACE_FILE
        if trace_path.is_file():
            torn = repair_trace(trace_path)
            if torn:
                recovery.emit(EVENT_TRACE_TORN, bytes_truncated=torn)
        inputs = load_run_inputs(run_dir)
        checkpoint = load_checkpoint(run_dir, recovery=recovery)

        pipeline = cls(inputs["config"], platform,
                       seed=inputs["root_seed"], run_dir=run_dir)
        ctx = pipeline._ctx
        plan = inputs["budget_plan"]
        ctx.manager = (PhaseBudgetManager(plan, ctx.tracker)
                       if plan is not None else None)
        table_a, table_b = inputs["table_a"], inputs["table_b"]
        library = build_feature_library(table_a, table_b)

        if checkpoint is None:
            # The run died before reaching its first stage boundary
            # (e.g. the crowd went away mid-blocking).  There is nothing
            # mutable to restore, so restart deterministically from the
            # persisted inputs — the run seed makes this equivalent.
            state = RunState(mode=inputs["mode"],
                             seed_labels=dict(inputs["seed_labels"]))
            state.attach(table_a, table_b, library)
            return pipeline._execute(state, Checkpointer(run_dir),
                                     recovery=recovery)

        ctx.tracker.load_state(checkpoint["tracker"])
        if ctx.manager is not None and checkpoint["manager"] is not None:
            ctx.manager.load_state(checkpoint["manager"])
        ctx.service.restore_cache(checkpoint["service_cache"])
        ctx.restore_rng_states(checkpoint["rng"])
        telemetry_state = checkpoint.get("telemetry")
        if ctx.telemetry is not None and telemetry_state is not None:
            ctx.telemetry.load_state(telemetry_state)
        if (checkpoint["platform"] is not None
                and hasattr(platform, "load_state")):
            platform.load_state(checkpoint["platform"])
        ctx.bus.restore_sequence(checkpoint["sequence"])

        candidates = None
        candidates_path = run_dir / CANDIDATES_FILE
        if candidates_path.is_file():
            verdict, actual, expected = verify_artifact(run_dir,
                                                        candidates_path)
            if verdict is False:
                # The candidate set has no older generation to fall
                # back to — it is written once and never rewritten —
                # so corruption here is unrecoverable.  Quarantine the
                # bytes for inspection and say exactly what mismatched.
                quarantined = quarantine_artifact(run_dir,
                                                  candidates_path)
                raise DataError(
                    f"{candidates_path}: corrupt beyond recovery — "
                    f"sha256 {actual} does not match the manifest's "
                    f"recorded {expected} (bytes preserved at "
                    f"{quarantined})"
                )
            candidates = load_candidates(candidates_path)
        state = RunState.from_dict(checkpoint["state"], candidates)
        state.attach(table_a, table_b, library)
        return pipeline._execute(state, Checkpointer(run_dir),
                                 recovery=recovery)

    # ------------------------------------------------------------------

    def _execute(self, state: RunState,
                 checkpointer: Checkpointer | None,
                 recovery: RecoveryLog | None = None) -> CorleoneResult:
        """Drive ``state`` through the engine and package the result."""
        ctx = self._ctx
        engine = StagedEngine(ctx, checkpointer=checkpointer)
        sink = None
        heartbeat = None
        if checkpointer is not None:
            sink = JsonlTraceSink(checkpointer.run_dir / TRACE_FILE)
            ctx.bus.subscribe(sink)
            # The live-monitor heartbeat: an atomic progress.json kept
            # fresh at checkpoint/shard/stage boundaries for `python -m
            # repro.obs serve|watch|report` (docs/observability.md).
            heartbeat = ProgressHeartbeat(checkpointer.run_dir,
                                          budget=ctx.tracker.budget)
            ctx.bus.subscribe(heartbeat)
        if recovery is not None:
            # Recovery findings (torn trace tail, quarantined
            # checkpoints, generation fallback) were collected before
            # the bus existed; emit them now so they land in the trace
            # and telemetry like any other event.
            recovery.replay(ctx.bus)
        try:
            engine.run(state)
        except BudgetExhaustedError:
            return self._partial_result(state)
        except CrowdUnavailableError as error:
            # Graceful degradation: the engine checkpointed at the last
            # stage boundary, so ``resume`` can continue this run once
            # the platform recovers.  Attach what the run accumulated
            # and hand the typed error to the caller.
            state.stop_reason = "crowd_unavailable"
            error.partial = self._partial_result(
                state, stop_reason="crowd_unavailable"
            )
            raise
        finally:
            if sink is not None:
                ctx.bus.unsubscribe(sink)
                sink.close()
            if heartbeat is not None:
                ctx.bus.unsubscribe(heartbeat)
                heartbeat.flush()
            if checkpointer is not None and ctx.telemetry is not None:
                # Final telemetry artifacts: the metric snapshot and
                # span tree (deterministic) plus the wall-clock profile
                # (explicitly not) land next to trace.jsonl even when
                # the run aborted mid-stage.  This is the one durable,
                # manifested export — mid-run snapshots are volatile —
                # so the manifest checksums describe the final bytes.
                with checkpointer.writer.batch():
                    ctx.telemetry.export(checkpointer.run_dir,
                                         include_profile=True,
                                         writer=checkpointer.writer)
            ctx.checkpoint = None
        return state.to_result(ctx.tracker)

    def _partial_result(self, state: RunState,
                        stop_reason: str = "budget_exhausted",
                        ) -> CorleoneResult:
        """Package what an interrupted run actually accumulated.

        The real blocker result, candidate set and completed iterations
        are reported — not fabricated empties — so callers can inspect
        how far the run got.
        """
        if state.best_predictions:
            predicted = state.best_predictions
        elif state.iterations:
            predicted = state.iterations[-1].predicted_pairs
        else:
            predicted = frozenset(self.service.positive_pairs())
        return CorleoneResult(
            predicted_matches=predicted,
            candidates=(state.candidates
                        if state.candidates is not None
                        else CandidateSet.empty(state.library.names)),
            blocker=(state.blocker
                     if state.blocker is not None
                     else BlockerResult(triggered=False,
                                        candidate_pairs=[],
                                        cartesian=0)),
            iterations=state.iterations,
            estimate=state.best_estimate,
            cost=self.tracker.snapshot(),
            stop_reason=stop_reason,
        )

    @staticmethod
    def _check_seeds(seed_labels: dict[Pair, bool]) -> None:
        """Validate the user's seed examples (>= 1 of each polarity)."""
        positives = sum(1 for label in seed_labels.values() if label)
        negatives = len(seed_labels) - positives
        if positives < 1 or negatives < 1:
            raise DataError(
                "seed examples must include at least one positive and one "
                "negative pair (the paper asks for two of each)"
            )
