"""The Corleone orchestrator (Figure 1).

Wires the Blocker, Matcher, Accuracy Estimator and Difficult Pairs'
Locator into the hands-off loop: block A x B, train a matcher with the
crowd, estimate its accuracy, locate the difficult pairs, train a new
matcher for those, and repeat until the estimated accuracy stops
improving (or a budget/iteration cap is hit).  The final prediction is an
ensemble: each pair is decided by the matcher of the iteration in which
it left the difficult set (Section 7, step 3).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.base import CrowdPlatform
from ..crowd.cost import CostSnapshot, CostTracker
from ..crowd.service import LabelingService
from ..data.pairs import CandidateSet, Pair
from ..data.table import Table
from ..exceptions import BudgetExhaustedError, DataError
from ..features.library import FeatureLibrary, build_feature_library
from ..features.vectorize import vectorize_pairs
from .budgeting import BudgetPlan, PhaseBudgetManager
from .blocker import Blocker, BlockerResult
from .estimator import AccuracyEstimate, AccuracyEstimator
from .locator import DifficultPairsLocator, LocatorResult
from .matcher import ActiveLearningMatcher, MatcherResult


@dataclass
class IterationRecord:
    """Telemetry for one matching iteration (one row group of Table 4)."""

    index: int
    matcher: MatcherResult
    matcher_pairs_labeled: int
    predicted_pairs: frozenset[Pair]
    """Combined (ensemble) predicted matches over C after this iteration."""
    estimate: AccuracyEstimate | None = None
    estimation_pairs_labeled: int = 0
    locator: LocatorResult | None = None
    reduction_pairs_labeled: int = 0
    difficult_size: int | None = None


@dataclass
class CorleoneResult:
    """The hands-off run's complete output."""

    predicted_matches: frozenset[Pair]
    candidates: CandidateSet
    blocker: BlockerResult
    iterations: list[IterationRecord] = field(default_factory=list)
    estimate: AccuracyEstimate | None = None
    cost: CostSnapshot = field(default_factory=CostSnapshot)
    stop_reason: str = ""

    @property
    def total_pairs_labeled(self) -> int:
        return self.cost.pairs_labeled

    @property
    def total_dollars(self) -> float:
        return self.cost.dollars


@dataclass
class _RunProgress:
    """State ``_run`` has accumulated so far, readable if it aborts.

    ``run`` hands an instance to ``_run``, which writes each milestone
    into it as soon as it exists — so a :class:`BudgetExhaustedError`
    escaping mid-run still leaves the real blocker result, candidate set
    and completed iterations available to report, instead of fabricated
    empties.
    """

    blocker: BlockerResult | None = None
    candidates: CandidateSet | None = None
    iterations: list[IterationRecord] = field(default_factory=list)
    best_predictions: frozenset[Pair] = frozenset()
    best_estimate: AccuracyEstimate | None = None


class Corleone:
    """The hands-off crowdsourced EM pipeline.

    The user supplies only what the paper's Section 3 asks for: the two
    tables, a matching instruction (carried in the dataset object; shown
    to real crowds, unused by simulated ones) and four labelled seed
    pairs.  Everything else — blocking rules, training data, accuracy
    estimates, iteration — comes from the crowd.
    """

    def __init__(self, config: CorleoneConfig, platform: CrowdPlatform,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config
        self.platform = platform
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.tracker = CostTracker(
            price_per_question=config.crowd.price_per_question,
            budget=config.budget,
        )
        self.service = LabelingService(platform, config.crowd, self.tracker)

    def run(self, table_a: Table, table_b: Table,
            seed_labels: dict[Pair, bool],
            mode: str = "full",
            budget_plan: BudgetPlan | None = None) -> CorleoneResult:
        """Execute the pipeline.

        ``mode`` selects how much of the workflow runs:

        * ``"full"`` — iterate until estimated accuracy stops improving;
        * ``"one_iteration"`` — block, match, estimate once;
        * ``"blocker_matcher"`` — block and match only (no estimate).

        ``budget_plan`` optionally allocates dollars per phase (blocking
        / matching / estimation / reduction); a phase that exhausts its
        allocation wraps up with the labels it has instead of aborting
        the run.
        """
        if mode not in ("full", "one_iteration", "blocker_matcher"):
            raise DataError(f"unknown run mode {mode!r}")
        self._check_seeds(seed_labels)
        library = build_feature_library(table_a, table_b)

        progress = _RunProgress()
        try:
            return self._run(table_a, table_b, seed_labels, library, mode,
                             budget_plan, progress)
        except BudgetExhaustedError:
            # Return the state the partial run actually accumulated — the
            # real blocker result, candidate set and completed iterations
            # — so callers can still inspect how far the run got.
            if progress.best_predictions:
                predicted = progress.best_predictions
            elif progress.iterations:
                predicted = progress.iterations[-1].predicted_pairs
            else:
                predicted = frozenset(self.service.positive_pairs())
            return CorleoneResult(
                predicted_matches=predicted,
                candidates=(progress.candidates
                            if progress.candidates is not None
                            else CandidateSet.empty(library.names)),
                blocker=(progress.blocker
                         if progress.blocker is not None
                         else BlockerResult(triggered=False,
                                            candidate_pairs=[],
                                            cartesian=0)),
                iterations=progress.iterations,
                estimate=progress.best_estimate,
                cost=self.tracker.snapshot(),
                stop_reason="budget_exhausted",
            )

    # ------------------------------------------------------------------

    def _run(self, table_a: Table, table_b: Table,
             seed_labels: dict[Pair, bool], library: FeatureLibrary,
             mode: str, budget_plan: BudgetPlan | None,
             progress: _RunProgress) -> CorleoneResult:
        manager = (PhaseBudgetManager(budget_plan, self.tracker)
                   if budget_plan is not None else None)

        def phase(name: str):
            if manager is None:
                return nullcontext()
            return manager.phase(name)

        blocker = Blocker(self.config, self.service, self.rng)
        with phase("blocking"):
            blocker_result = blocker.run(table_a, table_b, library,
                                         seed_labels)
        progress.blocker = blocker_result
        candidates = vectorize_pairs(
            table_a, table_b, blocker_result.candidate_pairs, library
        )
        progress.candidates = candidates
        if len(candidates) == 0:
            return CorleoneResult(
                predicted_matches=frozenset(),
                candidates=candidates,
                blocker=blocker_result,
                cost=self.tracker.snapshot(),
                stop_reason="empty_candidate_set",
            )

        # Seed pairs may sit outside the umbrella set; vectorize them
        # separately so every matcher still trains on them.
        seed_items = sorted(seed_labels.items())
        seed_vectors = vectorize_pairs(
            table_a, table_b, [pair for pair, _ in seed_items], library
        ).features
        seed_flags = np.array([label for _, label in seed_items], dtype=bool)

        matcher = ActiveLearningMatcher(self.config, self.service, self.rng)
        estimator = AccuracyEstimator(self.config, self.service, self.rng)
        locator = DifficultPairsLocator(self.config, self.service, self.rng)

        predictions_by_pair: dict[Pair, bool] = {}
        iterations = progress.iterations
        certified_reductions: list = []
        working = candidates
        best_f1 = -1.0
        best_predictions: frozenset[Pair] = frozenset()
        best_estimate: AccuracyEstimate | None = None
        stop_reason = "max_iterations"

        max_rounds = (1 if mode in ("one_iteration", "blocker_matcher")
                      else self.config.max_pipeline_iterations)

        for index in range(1, max_rounds + 1):
            initial = {
                pair: label
                for pair, label in self.service.labeled_pairs().items()
                if pair in working
            }
            with phase("matching"):
                matcher_result = matcher.train(
                    working, initial,
                    extra_vectors=seed_vectors, extra_labels=seed_flags,
                )
            for row, pair in enumerate(working.pairs):
                predictions_by_pair[pair] = bool(
                    matcher_result.predictions[row]
                )
            combined = np.array([
                predictions_by_pair.get(pair, False)
                for pair in candidates.pairs
            ], dtype=bool)
            record = IterationRecord(
                index=index,
                matcher=matcher_result,
                matcher_pairs_labeled=matcher_result.pairs_labeled,
                predicted_pairs=frozenset(
                    pair for pair, hit in zip(candidates.pairs, combined)
                    if hit
                ),
            )
            iterations.append(record)

            if mode == "blocker_matcher":
                best_predictions = record.predicted_pairs
                progress.best_predictions = best_predictions
                stop_reason = "blocker_matcher_mode"
                break

            est_before = self.tracker.snapshot()
            with phase("estimation"):
                estimate = estimator.estimate(
                    candidates, combined, matcher_result.forest,
                    certified=certified_reductions,
                )
            certified_reductions.extend(
                ev for ev in estimate.rule_evaluations if ev.accepted
            )
            record.estimate = estimate
            record.estimation_pairs_labeled = (
                self.tracker.snapshot().minus(est_before).pairs_labeled
            )

            if estimate.f1 <= best_f1:
                stop_reason = "no_improvement"
                break
            best_f1 = estimate.f1
            best_predictions = record.predicted_pairs
            best_estimate = estimate
            progress.best_predictions = best_predictions
            progress.best_estimate = best_estimate

            if mode == "one_iteration":
                stop_reason = "one_iteration_mode"
                break
            if index == max_rounds:
                stop_reason = "max_iterations"
                break

            loc_before = self.tracker.snapshot()
            with phase("reduction"):
                locator_result = locator.locate(working,
                                                matcher_result.forest)
            record.locator = locator_result
            record.reduction_pairs_labeled = (
                self.tracker.snapshot().minus(loc_before).pairs_labeled
            )
            if not locator_result.should_continue:
                stop_reason = f"locator_{locator_result.stop_reason}"
                break
            working = locator_result.difficult
            record.difficult_size = len(working)

        return CorleoneResult(
            predicted_matches=best_predictions,
            candidates=candidates,
            blocker=blocker_result,
            iterations=iterations,
            estimate=best_estimate,
            cost=self.tracker.snapshot(),
            stop_reason=stop_reason,
        )

    @staticmethod
    def _check_seeds(seed_labels: dict[Pair, bool]) -> None:
        positives = sum(1 for label in seed_labels.values() if label)
        negatives = len(seed_labels) - positives
        if positives < 1 or negatives < 1:
            raise DataError(
                "seed examples must include at least one positive and one "
                "negative pair (the paper asks for two of each)"
            )
