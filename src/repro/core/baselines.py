"""Traditional (developer-driven) baselines of Section 9.1.

Baseline 1: a developer writes blocking rules by hand, then trains a
random forest on a *random* sample of labelled pairs the same size as the
number Corleone's crowd labelled.  Baseline 2 is identical but trains on
20% of the post-blocking candidate set — an intentionally very strong
baseline.  Both baselines get perfect (developer) labels; what they lack
is Corleone's active selection of informative examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CorleoneConfig
from ..data.pairs import CandidateSet, Pair
from ..data.table import AttrType, Table
from ..exceptions import DataError
from ..features.library import build_feature_library
from ..features.tokenize import normalize, word_tokens
from ..features.vectorize import vectorize_pairs
from ..forest.forest import train_forest
from ..metrics import Confusion, confusion_from_sets
from ..synth.base import SyntheticDataset


@dataclass(frozen=True)
class BaselineResult:
    """Accuracy of one baseline run (one Table 2 column group)."""

    name: str
    confusion: Confusion
    n_train: int
    n_candidates: int

    @property
    def precision(self) -> float:
        return self.confusion.precision

    @property
    def recall(self) -> float:
        return self.confusion.recall

    @property
    def f1(self) -> float:
        return self.confusion.f1


def developer_blocking(dataset: SyntheticDataset) -> list[Pair]:
    """Hand-written blocking heuristics, one per dataset family.

    * restaurants — no blocking (the product is small);
    * citations — keep pairs sharing at least two title tokens;
    * products — keep pairs with the same brand sharing a name token;
    * anything else — keep pairs sharing a token on the first textual
      attribute.
    """
    if dataset.name == "restaurants":
        return [
            Pair(a.record_id, b.record_id)
            for a in dataset.table_a for b in dataset.table_b
        ]
    if dataset.name == "citations":
        return _shared_token_pairs(
            dataset.table_a, dataset.table_b, "title", min_shared=2
        )
    if dataset.name == "products":
        pairs = _shared_token_pairs(
            dataset.table_a, dataset.table_b, "name", min_shared=1
        )
        return [
            pair for pair in pairs
            if _same_value(dataset.table_a[pair.a_id],
                           dataset.table_b[pair.b_id], "brand")
        ]
    attribute = _first_text_attribute(dataset.table_a)
    return _shared_token_pairs(
        dataset.table_a, dataset.table_b, attribute, min_shared=1
    )


def run_baseline(dataset: SyntheticDataset, n_train: int,
                 config: CorleoneConfig,
                 candidates: CandidateSet | None = None,
                 seed: int = 0,
                 name: str = "baseline") -> BaselineResult:
    """Train a forest on ``n_train`` perfectly labelled random pairs.

    ``candidates`` (post developer-blocking, vectorized) can be passed in
    to share the expensive vectorization between Baseline 1 and 2; when
    omitted it is built here.  Recall is computed against *all* gold
    matches, so matches lost to developer blocking count as misses —
    exactly how the paper scores the baselines.
    """
    if candidates is None:
        candidates = build_baseline_candidates(dataset)
    if len(candidates) == 0:
        raise DataError("developer blocking produced no candidate pairs")
    rng = np.random.default_rng(seed)

    n_train = min(n_train, len(candidates))
    rows = rng.choice(len(candidates), size=n_train, replace=False)
    y = np.array(
        [dataset.is_match(candidates.pairs[int(row)]) for row in rows],
        dtype=bool,
    )
    forest = train_forest(
        candidates.features[rows], y, config.forest, rng
    )
    predictions = forest.predict(candidates.features)
    predicted = {
        candidates.pairs[row] for row in np.flatnonzero(predictions)
    }
    confusion = confusion_from_sets(predicted, dataset.matches)
    return BaselineResult(
        name=name,
        confusion=confusion,
        n_train=n_train,
        n_candidates=len(candidates),
    )


def build_baseline_candidates(dataset: SyntheticDataset) -> CandidateSet:
    """Developer blocking + vectorization, shared by both baselines."""
    pairs = developer_blocking(dataset)
    library = build_feature_library(dataset.table_a, dataset.table_b)
    return vectorize_pairs(dataset.table_a, dataset.table_b, pairs, library)


# ----------------------------------------------------------------------
# Blocking helpers
# ----------------------------------------------------------------------

def _shared_token_pairs(table_a: Table, table_b: Table, attribute: str,
                        min_shared: int) -> list[Pair]:
    """Pairs sharing >= min_shared tokens, via an inverted index on B."""
    index: dict[str, list[str]] = {}
    for record in table_b:
        value = record.get(attribute)
        if value is None:
            continue
        for token in set(word_tokens(str(value))):
            index.setdefault(token, []).append(record.record_id)

    pairs: list[Pair] = []
    for record in table_a:
        value = record.get(attribute)
        if value is None:
            continue
        counts: dict[str, int] = {}
        for token in set(word_tokens(str(value))):
            for b_id in index.get(token, ()):
                counts[b_id] = counts.get(b_id, 0) + 1
        pairs.extend(
            Pair(record.record_id, b_id)
            for b_id, shared in counts.items()
            if shared >= min_shared
        )
    return pairs


def _same_value(record_a: object, record_b: object, attribute: str) -> bool:
    value_a = record_a.get(attribute)  # type: ignore[attr-defined]
    value_b = record_b.get(attribute)  # type: ignore[attr-defined]
    if value_a is None or value_b is None:
        return False
    return normalize(str(value_a)) == normalize(str(value_b))


def _first_text_attribute(table: Table) -> str:
    for attr in table.schema:
        if attr.attr_type is not AttrType.NUMERIC:
            return attr.name
    raise DataError("no textual attribute available for generic blocking")
