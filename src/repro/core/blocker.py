"""Crowdsourced blocking (Section 4).

The Blocker decides whether |A x B| is too large to match directly; if so
it learns a random forest over a density-aware sample S via crowdsourced
active learning, extracts candidate blocking rules from the forest's
"no"-leaf paths, has the crowd certify the top-k rules' precision, picks a
rule subset greedily by (precision, coverage, tuple cost) with re-ranking
after every pick, and streams the chosen rules over the full Cartesian
product to produce the umbrella set.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.service import LabelingService
from ..data.pairs import CandidateSet, Pair
from ..data.sampling import (
    blocker_sample,
    cartesian_size,
    iter_cartesian,
    weighted_blocker_sample,
)
from ..data.table import Table
from ..features.batch import table_cache
from ..features.library import FeatureLibrary
from ..features.vectorize import vectorize_pairs
from ..obs.profiling import profile_section
from ..rules.evaluation import RuleEvaluation, evaluate_rules
from ..rules.extraction import extract_negative_rules
from ..rules.rule import Rule
from ..rules.selection import select_top_k
from .matcher import ActiveLearningMatcher, MatcherResult

_STREAM_CHUNK = 8192
"""Pairs per chunk when applying rules over A x B."""


class ChunkEvaluator:
    """Evaluates blocking rules over aligned chunks of record pairs.

    The shared core of every executor (streaming, parallel, sharded):
    it owns the rule set, the needed-feature projection and the
    per-table prepared-column caches, and turns a chunk of aligned
    ``(records_a, records_b)`` pairs into a boolean *blocked* mask.
    Because each batch kernel is bit-exact regardless of chunk
    boundaries, any executor that feeds pairs through this class in A x B
    stream order produces bit-identical survivors.

    Missing-value semantics (the blocking NaN contract): a missing
    attribute value surfaces as ``np.nan`` in the feature matrix, and a
    predicate comparison against NaN evaluates **falsy** unless the
    predicate was extracted with ``nan_satisfies`` — so *NaN never
    blocks*: a pair with missing evidence survives to the matcher
    rather than being silently discarded, matching the scalar
    ``Feature.compute`` path.  ``blocked_mask`` enforces this with an
    explicit guard instead of leaving it to the predicate kernels.
    """

    def __init__(self, table_a: Table, table_b: Table,
                 rules: list[Rule], library: FeatureLibrary) -> None:
        self.table_a = table_a
        self.table_b = table_b
        self.rules = rules
        # Only the features the rules reference are computed — the
        # per-pair cost the greedy selector optimized for.
        self.needed = sorted({
            index for rule in rules for index in rule.feature_indices
        })
        self.needed_features = [library.features[i] for i in self.needed]
        self.width = len(library)
        self.cache_a = table_cache(table_a)
        self.cache_b = table_cache(table_b)
        # A rule whose predicates ALL tolerate NaN can legitimately
        # block a fully-missing row; any other rule cannot, and the
        # guard below makes that invariant explicit.
        self.nan_can_block = any(
            all(p.nan_satisfies for p in rule.predicates)
            for rule in rules
        )

    def blocked_mask(self, records_a: list, records_b: list) -> np.ndarray:
        """Boolean mask: True where some rule blocks the aligned pair."""
        # Fill only the needed columns of a full-width matrix so
        # predicate indices line up; the rest stays NaN and is never
        # read (no predicate references an unfilled column).
        matrix = np.full((len(records_a), self.width), np.nan)
        for index, feature in zip(self.needed, self.needed_features):
            matrix[:, index] = feature.batch_value(
                records_a, records_b, self.cache_a, self.cache_b
            )
        blocked = np.zeros(len(records_a), dtype=bool)
        for rule in self.rules:
            blocked |= rule.applies(matrix)
            if blocked.all():
                break
        if not self.nan_can_block and self.needed and blocked.any():
            # NaN-never-blocks guard: a pair whose needed features are
            # all missing carries no blocking evidence, so it must
            # survive.  Predicate.evaluate already returns False on NaN
            # (absent nan_satisfies), making this a provable no-op —
            # kept explicit so the missing-value contract is enforced
            # here rather than implied by kernel internals.
            all_missing = np.isnan(matrix[:, self.needed]).all(axis=1)
            blocked &= ~all_missing
        return blocked

    def survivors(self, pairs: list[Pair]) -> list[Pair]:
        """The subset of ``pairs`` no rule blocks, in input order."""
        if not pairs:
            return []
        records_a = [self.table_a[pair.a_id] for pair in pairs]
        records_b = [self.table_b[pair.b_id] for pair in pairs]
        blocked = self.blocked_mask(records_a, records_b)
        return [
            pair for pair, is_blocked in zip(pairs, blocked)
            if not is_blocked
        ]


@dataclass
class BlockerResult:
    """The Blocker's output: the umbrella set plus full telemetry."""

    triggered: bool
    """False when |A x B| <= t_B and blocking was skipped."""

    candidate_pairs: list[Pair]
    """The umbrella set: pairs surviving the applied blocking rules."""

    cartesian: int
    sample_size: int = 0
    applied_rules: list[Rule] = field(default_factory=list)
    evaluations: list[RuleEvaluation] = field(default_factory=list)
    n_candidate_rules: int = 0
    matcher_result: MatcherResult | None = None
    pairs_labeled: int = 0
    dollars: float = 0.0
    plan_stats: dict | None = None
    """Plan-engine cell accounting (``PlanStats.as_dict()``), when the
    plan engine applied the rules.  Like ``matcher_result``, this is
    run-time telemetry and is not serialized by ``persistence``."""

    @property
    def umbrella_size(self) -> int:
        return len(self.candidate_pairs)

    @property
    def reduction_ratio(self) -> float:
        """Umbrella size as a fraction of the Cartesian product."""
        if self.cartesian == 0:
            return 0.0
        return self.umbrella_size / self.cartesian


class Blocker:
    """Generates, certifies and applies blocking rules with the crowd."""

    def __init__(self, config: CorleoneConfig, service: LabelingService,
                 rng: np.random.Generator, bus=None,
                 shard_dir=None) -> None:
        self.config = config
        self.service = service
        self.rng = rng
        self.bus = bus
        """Optional engine EventBus for shard-lifecycle/fallback events."""
        self.shard_dir = shard_dir
        """Optional directory for the sharded executor's resume files."""
        self._plan_stats: dict | None = None
        """Cell accounting from the last plan-engine rule application."""

    def run(self, table_a: Table, table_b: Table, library: FeatureLibrary,
            seed_labels: dict[Pair, bool]) -> BlockerResult:
        """Execute the full Section 4 workflow.

        ``seed_labels`` are the user's four examples; they are injected
        into the label cache as trusted labels and added to the sample.
        """
        total = cartesian_size(table_a, table_b)
        before = self.service.tracker.snapshot()
        self.service.seed(seed_labels)

        if total <= self.config.blocker.t_b:
            # Small product: skip blocking entirely (Restaurants' path).
            return BlockerResult(
                triggered=False,
                candidate_pairs=list(iter_cartesian(table_a, table_b)),
                cartesian=total,
            )

        if self.config.blocker.sampling_strategy == "weighted":
            sample_pairs = weighted_blocker_sample(
                table_a, table_b, self.config.blocker.t_b, self.rng,
                attribute=self.config.blocker.sampling_attribute,
                seed_pairs=seed_labels.keys(),
            )
        else:
            sample_pairs = blocker_sample(
                table_a, table_b, self.config.blocker.t_b, self.rng,
                seed_pairs=seed_labels.keys(),
            )
        sample = vectorize_pairs(table_a, table_b, sample_pairs, library)

        # The blocking forest grows to pure leaves (min_samples_leaf=1):
        # rule extraction wants sharp, specific paths, and the crowd
        # certification step already rejects imprecise rules, so the
        # matcher's noise regularization would only blunt the rules.
        blocking_config = self.config.replace(
            forest=dataclasses.replace(self.config.forest,
                                       min_samples_leaf=1)
        )
        matcher = ActiveLearningMatcher(blocking_config, self.service,
                                        self.rng)
        matcher_result = matcher.train(sample, seed_labels)

        candidates = extract_negative_rules(
            matcher_result.forest, library.names, library.costs
        )
        ranked = select_top_k(
            candidates, sample.features,
            matcher_result.labeled_rows, self.config.blocker.top_k_rules,
        )
        evaluations = evaluate_rules(
            [r.rule for r in ranked], sample, self.service, self.rng,
            batch_size=self.config.blocker.eval_batch_size,
            min_precision=self.config.blocker.min_precision,
            max_error_margin=self.config.blocker.max_error_margin,
            confidence=self.config.blocker.confidence,
            max_labels_per_rule=self.config.blocker.max_labels_per_rule,
        )
        accepted = [ev.rule for ev in evaluations if ev.accepted]

        chosen = self.select_rule_subset(accepted, sample, total)
        self._plan_stats = None
        if chosen:
            survivors = self._apply_rules(table_a, table_b, chosen, library)
        else:
            survivors = list(iter_cartesian(table_a, table_b))

        spent = self.service.tracker.snapshot().minus(before)
        return BlockerResult(
            triggered=True,
            candidate_pairs=survivors,
            cartesian=total,
            sample_size=len(sample_pairs),
            applied_rules=chosen,
            evaluations=evaluations,
            n_candidate_rules=len(candidates),
            matcher_result=matcher_result,
            pairs_labeled=spent.pairs_labeled,
            dollars=spent.dollars,
            plan_stats=self._plan_stats,
        )

    def select_rule_subset(self, rules: list[Rule], sample: CandidateSet,
                           cartesian: int) -> list[Rule]:
        """Greedy subset selection with re-ranking (Section 4.3).

        Rules are repeatedly ranked on the *current* reduced sample by
        precision upper bound (desc), coverage (desc) and tuple cost
        (asc); the best is applied to the sample and the rest re-ranked,
        until the sample has shrunk to |S| * t_B / |A x B| or rules run
        out.
        """
        if not rules:
            return []
        target = len(sample) * (self.config.blocker.t_b / cartesian)
        known = self._known_labels(sample)

        remaining = list(rules)
        chosen: list[Rule] = []
        active_rows = np.arange(len(sample))
        features = sample.features

        while remaining and active_rows.size > target:
            scored = []
            for rule in remaining:
                mask = rule.applies(features[active_rows])
                coverage = int(mask.sum())
                if coverage == 0:
                    continue
                contrary = sum(
                    1 for i, row in enumerate(active_rows)
                    if mask[i] and known.get(int(row)) is True
                )
                precision = (coverage - contrary) / coverage
                scored.append((precision, coverage, -rule.cost, rule, mask))
            if not scored:
                break
            scored.sort(key=lambda item: item[:3], reverse=True)
            _, _, _, best_rule, best_mask = scored[0]
            chosen.append(best_rule)
            remaining.remove(best_rule)
            active_rows = active_rows[~best_mask]
        return chosen

    def _apply_rules(self, table_a: Table, table_b: Table,
                     rules: list[Rule],
                     library: FeatureLibrary) -> list[Pair]:
        """Apply chosen rules via the configured executor.

        All executors return bit-identical survivor lists; the config
        only chooses the execution substrate.  ``plan.enabled`` swaps
        the per-chunk evaluation strategy for the compiled plan engine
        (:mod:`repro.plan`) — cheapest-rule-first with predicate
        pushdown — without changing the survivor set; under the
        sharded executor the plan runs per shard against the
        fork-shared caches.  The plan engine supersedes the legacy
        ``parallel`` pool (which rebuilds libraries per worker); with
        ``plan.enabled`` the ``parallel`` setting falls through to the
        single-process plan path.
        """
        blocker_cfg = self.config.blocker
        plan_cfg = self.config.plan
        if blocker_cfg.executor == "sharded":
            from ..exec import apply_rules_sharded

            if plan_cfg.enabled:
                from ..plan import PlanStats

                stats = PlanStats()
                survivors = apply_rules_sharded(
                    table_a, table_b, rules, library,
                    n_workers=blocker_cfg.n_workers,
                    shard_size=blocker_cfg.shard_size,
                    shard_dir=self.shard_dir,
                    bus=self.bus,
                    engine="plan",
                    stats=stats,
                )
                self._plan_stats = stats.as_dict()
                return survivors
            return apply_rules_sharded(
                table_a, table_b, rules, library,
                n_workers=blocker_cfg.n_workers,
                shard_size=blocker_cfg.shard_size,
                shard_dir=self.shard_dir,
                bus=self.bus,
            )
        if plan_cfg.enabled:
            from ..plan import PlanStats, apply_rules_plan

            stats = PlanStats()
            survivors = apply_rules_plan(table_a, table_b, rules, library,
                                         stats=stats)
            self._plan_stats = stats.as_dict()
            return survivors
        if blocker_cfg.executor == "parallel":
            return apply_rules_parallel(
                table_a, table_b, rules, library,
                n_workers=blocker_cfg.n_workers,
                on_fallback=self._emit_fallback,
            )
        return apply_rules_streaming(table_a, table_b, rules, library)

    def _emit_fallback(self, reason: str, detail: str) -> None:
        """Surface lost parallelism on the engine bus (if attached)."""
        if self.bus is None:
            return
        from ..engine.events import EVENT_BLOCKER_FALLBACK

        self.bus.emit(EVENT_BLOCKER_FALLBACK, reason=reason, detail=detail)

    def _known_labels(self, sample: CandidateSet) -> dict[int, bool]:
        """Sample row -> crowd label, for rows the cache knows."""
        cached = self.service.labeled_pairs()
        return {
            row: cached[pair]
            for row, pair in enumerate(sample.pairs)
            if pair in cached
        }


def apply_rules_parallel(table_a: Table, table_b: Table,
                         rules: list[Rule], library: FeatureLibrary,
                         n_workers: int = 2,
                         chunk_size: int = _STREAM_CHUNK,
                         on_fallback=None) -> list[Pair]:
    """Apply blocking rules over A x B across worker processes (legacy).

    The original multi-core stand-in for the paper's Hadoop job: A is
    broadcast to every worker and the rows of A are sharded, each worker
    streaming its shard's slice of A x B through
    :func:`apply_rules_streaming`.  Survivor order matches the
    sequential function (shards are concatenated in A order), so the
    two are interchangeable.  :func:`repro.exec.apply_rules_sharded`
    supersedes this path — it shares the prepared-column caches via
    fork copy-on-write instead of pickling tables per job, shards TF/IDF
    features safely, and can checkpoint/resume — but this function is
    kept for its pickling workers, which also run under spawn-only
    platforms.

    Feature closures cannot cross process boundaries, so workers rebuild
    the library from the tables (cheap relative to pair scoring).  That
    makes corpus-dependent features unsafe to shard — a worker's TF/IDF
    weights would differ from the full corpus — so rules touching a
    ``cosine_tfidf`` feature force the sequential path.  Each worker
    verifies its rebuilt library against the parent's feature names
    (shipped in the job payload) — any mismatch aborts the pool and
    falls back to sequential application with a warning, since rule
    indices into a misaligned library would score the wrong features.
    Also falls back when ``n_workers <= 1`` or A is tiny.

    Lost parallelism is no longer silent: ``on_fallback(reason,
    detail)`` is invoked (when provided) with ``"corpus_dependent"`` or
    ``"library_mismatch"`` before falling back, so callers can emit the
    ``blocker_parallel_fallback`` engine event / obs counter.  The
    ``n_workers <= 1`` and tiny-A cases are deliberate sizing choices,
    not lost parallelism, and are not reported.
    """
    corpus_dependent = any(
        library.features[index].measure == "cosine_tfidf"
        for rule in rules for index in rule.feature_indices
    )
    if corpus_dependent:
        if on_fallback is not None:
            on_fallback(
                "corpus_dependent",
                "rules reference cosine_tfidf features whose corpus "
                "statistics cannot be rebuilt per shard; use the "
                "sharded executor to parallelize them",
            )
        return apply_rules_streaming(table_a, table_b, rules, library,
                                     chunk_size)
    if n_workers <= 1 or len(table_a) < 2 * n_workers:
        return apply_rules_streaming(table_a, table_b, rules, library,
                                     chunk_size)
    import multiprocessing

    from ..exec.sharding import plan_shards

    a_ids = table_a.record_ids
    shard_size = -(-len(a_ids) // n_workers)
    # plan_shards partitions range(len(a_ids)) into non-empty slices by
    # construction — the previous ceil-division slicing could enumerate
    # an empty trailing shard, which would dispatch a no-op job whose
    # empty subset table breaks library rebuilding in the worker.
    shards = [
        a_ids[shard.start:shard.stop]
        for shard in plan_shards(len(a_ids), shard_size)
    ]
    rule_payload = [_rule_payload(rule) for rule in rules]
    jobs = [
        (table_a.subset(shard, name=f"shard{i}"), table_b,
         rule_payload, library.names, chunk_size)
        for i, shard in enumerate(shards)
    ]
    context = multiprocessing.get_context("fork")
    try:
        with context.Pool(processes=min(n_workers, len(jobs))) as pool:
            results = pool.map(_apply_shard, jobs)
    except LibraryMismatchError as error:
        # A worker's rebuilt library did not reproduce the parent's
        # feature order, so the rules' feature indices would have read
        # the wrong columns.  Fall back to the (correct) sequential path.
        import warnings

        if on_fallback is not None:
            on_fallback("library_mismatch", str(error))
        warnings.warn(
            f"parallel blocking disabled: {error}; "
            "falling back to sequential rule application",
            RuntimeWarning, stacklevel=2,
        )
        return apply_rules_streaming(table_a, table_b, rules, library,
                                     chunk_size)
    survivors: list[Pair] = []
    for part in results:
        survivors.extend(Pair(a, b) for a, b in part)
    return survivors


class LibraryMismatchError(Exception):
    """A worker's rebuilt feature library disagrees with the parent's.

    Raised (module-level, so it pickles across the process boundary) when
    a shard's :func:`build_feature_library` output has different feature
    names/order than the parent library the rules were extracted from —
    rule predicate indices would silently score the wrong features.
    """


def _rule_payload(rule: Rule) -> dict:
    """A picklable description of a rule (predicates carry no closures)."""
    return {
        "predicts_match": rule.predicts_match,
        "cost": rule.cost,
        "source": rule.source,
        "predicates": [
            (p.feature_index, p.feature_name, p.le, p.threshold,
             p.nan_satisfies)
            for p in rule.predicates
        ],
    }


def _rule_from_payload(payload: dict) -> Rule:
    from ..rules.predicates import Predicate

    return Rule(
        [Predicate(*fields) for fields in payload["predicates"]],
        predicts_match=payload["predicts_match"],
        cost=payload["cost"],
        source=payload["source"],
    )


def _apply_shard(job: tuple) -> list[tuple[str, str]]:
    """Worker body: rebuild the library, stream one shard of A x B."""
    shard_a, table_b, rule_payload, expected_names, chunk_size = job
    from ..features.library import build_feature_library

    library = build_feature_library(shard_a, table_b)
    if library.names != tuple(expected_names):
        raise LibraryMismatchError(
            f"worker library for shard {shard_a.name!r} has features "
            f"{library.names!r}, parent expected {tuple(expected_names)!r}"
        )
    rules = [_rule_from_payload(payload) for payload in rule_payload]
    survivors = apply_rules_streaming(shard_a, table_b, rules, library,
                                      chunk_size)
    return [(pair.a_id, pair.b_id) for pair in survivors]


def apply_rules_streaming(table_a: Table, table_b: Table,
                          rules: list[Rule], library: FeatureLibrary,
                          chunk_size: int = _STREAM_CHUNK) -> list[Pair]:
    """Apply blocking rules over A x B in chunks; return the survivors.

    Only the features the rules actually reference are computed — the
    per-pair cost the greedy selector optimized for — and each chunk is
    evaluated through a shared :class:`ChunkEvaluator` (which also
    defines the missing-value semantics: NaN never blocks).  This is
    the single-process baseline; :func:`repro.exec.apply_rules_sharded`
    is the multi-core equivalent and is bit-identical to it.
    """
    evaluator = ChunkEvaluator(table_a, table_b, rules, library)
    survivors: list[Pair] = []
    chunk: list[Pair] = []

    def flush() -> None:
        if not chunk:
            return
        with profile_section("blocker.stream_flush"):
            survivors.extend(evaluator.survivors(chunk))
            chunk.clear()

    for pair in iter_cartesian(table_a, table_b):
        chunk.append(pair)
        if len(chunk) >= chunk_size:
            flush()
    flush()
    return survivors
