"""Re-applying a trained matcher to fresh data — no crowd needed.

Example 3.1 observes that once an EM solution is created and trained it
"can be automatically applied to match future toy products, without
using a developer" (or, here, a crowd).  This module is that path: take
the artifacts a hands-off run produced — certified blocking rules and
the trained forest, both JSON-persistable via :mod:`repro.persistence` —
and match a *new* batch of records for free.

The catch the paper also names: the solution does not transfer across
categories, and it decays as the data drifts.  :func:`drift_report`
quantifies exactly that, comparing the forest's confidence profile on
the new candidates against the profile recorded at training time, so an
operator knows when it is time to pay the crowd for a refresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.pairs import CandidateSet, Pair
from ..data.table import Table
from ..exceptions import DataError
from ..features.library import FeatureLibrary
from ..features.vectorize import vectorize_pairs
from ..forest.forest import RandomForest
from ..rules.rule import Rule
from .blocker import apply_rules_streaming


@dataclass
class ReapplyResult:
    """Output of a crowd-free re-application run."""

    predicted_matches: frozenset[Pair]
    candidates: CandidateSet
    cartesian: int
    confidence: np.ndarray = field(repr=False, default=None)
    """Per-candidate forest confidence, aligned to ``candidates``."""

    @property
    def umbrella_size(self) -> int:
        return len(self.candidates)

    @property
    def mean_confidence(self) -> float:
        if self.confidence is None or len(self.confidence) == 0:
            return 1.0
        return float(self.confidence.mean())


def reapply_matcher(table_a: Table, table_b: Table,
                    library: FeatureLibrary,
                    blocking_rules: list[Rule],
                    forest: RandomForest) -> ReapplyResult:
    """Match two tables using previously learned artifacts only.

    ``library`` must be built over schemas matching the training run
    (feature order defines what the rule/forest indices mean — persist
    the feature names next to the forest and verify before calling).
    """
    if forest.n_features_ != len(library):
        raise DataError(
            f"forest expects {forest.n_features_} features but the "
            f"library provides {len(library)}"
        )
    for rule in blocking_rules:
        top = max(rule.feature_indices, default=-1)
        if top >= len(library):
            raise DataError(
                f"blocking rule references feature {top} outside the "
                f"library ({len(library)} features)"
            )

    survivors = apply_rules_streaming(
        table_a, table_b, blocking_rules, library
    )
    candidates = vectorize_pairs(table_a, table_b, survivors, library)
    if len(candidates) == 0:
        return ReapplyResult(
            predicted_matches=frozenset(),
            candidates=candidates,
            cartesian=len(table_a) * len(table_b),
            confidence=np.empty(0),
        )
    predictions = forest.predict(candidates.features)
    confidence = forest.confidence(candidates.features)
    matches = frozenset(
        candidates.pairs[row] for row in np.flatnonzero(predictions)
    )
    return ReapplyResult(
        predicted_matches=matches,
        candidates=candidates,
        cartesian=len(table_a) * len(table_b),
        confidence=confidence,
    )


@dataclass(frozen=True)
class DriftReport:
    """How far the new data sits from the matcher's training regime."""

    training_mean_confidence: float
    current_mean_confidence: float
    low_confidence_fraction: float
    """Share of new candidates with confidence below the threshold."""
    refresh_recommended: bool

    @property
    def confidence_drop(self) -> float:
        return self.training_mean_confidence - self.current_mean_confidence


def drift_report(result: ReapplyResult,
                 training_mean_confidence: float,
                 low_confidence_threshold: float = 0.7,
                 max_drop: float = 0.1,
                 max_low_fraction: float = 0.2) -> DriftReport:
    """Decide whether the saved matcher still fits the data.

    Two triggers, either of which recommends a crowd refresh: the mean
    forest confidence dropped by more than ``max_drop`` versus training,
    or more than ``max_low_fraction`` of new candidates fall below
    ``low_confidence_threshold`` (the forest is guessing on them).
    """
    if not 0.0 <= training_mean_confidence <= 1.0:
        raise DataError("training_mean_confidence must be in [0, 1]")
    current = result.mean_confidence
    if result.confidence is not None and len(result.confidence):
        low_fraction = float(
            (result.confidence < low_confidence_threshold).mean()
        )
    else:
        low_fraction = 0.0
    drop = training_mean_confidence - current
    return DriftReport(
        training_mean_confidence=training_mean_confidence,
        current_mean_confidence=current,
        low_confidence_fraction=low_fraction,
        refresh_recommended=(drop > max_drop
                             or low_fraction > max_low_fraction),
    )
