"""Many EM tasks, one crowd (the paper's Example 3.1).

The retailer of Example 3.1 has 500+ product categories, each its own EM
problem — the scenario hands-off crowdsourcing exists for: no developer
could configure 500 pipelines, but one crowd can run them all.
:class:`MultiTaskRunner` executes a batch of EM tasks sequentially
against a shared crowd platform, giving each task its own label cache
and cost tracker (labels must not leak across unrelated categories)
while aggregating cost and outcome reporting, and optionally splitting
one overall budget across tasks proportionally to their Cartesian sizes
(bigger categories get more money, mirroring where labels are needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.base import CrowdPlatform
from ..data.pairs import Pair
from ..data.table import Table
from ..exceptions import ConfigurationError, DataError
from .pipeline import Corleone, CorleoneResult


@dataclass(frozen=True)
class EMTask:
    """One entity-matching problem: two tables plus the user's seeds."""

    name: str
    table_a: Table
    table_b: Table
    seed_labels: dict[Pair, bool]

    def __post_init__(self) -> None:
        if not self.name:
            raise DataError("task name must be non-empty")

    @property
    def cartesian(self) -> int:
        return len(self.table_a) * len(self.table_b)


@dataclass
class TaskOutcome:
    """Result of one task within a batch run."""

    task: EMTask
    result: CorleoneResult

    @property
    def dollars(self) -> float:
        return self.result.cost.dollars

    @property
    def predicted_matches(self) -> frozenset[Pair]:
        return self.result.predicted_matches


@dataclass
class BatchOutcome:
    """Everything a batch run produced."""

    outcomes: list[TaskOutcome] = field(default_factory=list)

    @property
    def total_dollars(self) -> float:
        return sum(outcome.dollars for outcome in self.outcomes)

    @property
    def total_pairs_labeled(self) -> int:
        return sum(
            outcome.result.cost.pairs_labeled for outcome in self.outcomes
        )

    @property
    def total_matches(self) -> int:
        return sum(
            len(outcome.predicted_matches) for outcome in self.outcomes
        )

    def by_name(self, name: str) -> TaskOutcome:
        """The outcome of the task called ``name``."""
        for outcome in self.outcomes:
            if outcome.task.name == name:
                return outcome
        raise DataError(f"no task named {name!r} in this batch")


class MultiTaskRunner:
    """Runs a batch of EM tasks against one crowd platform.

    Tasks run sequentially (a crowd answers one HIT at a time anyway);
    each gets a fresh :class:`Corleone` pipeline — schemas differ across
    categories, so neither feature libraries nor label caches are
    shareable — but the platform object is shared, so simulated crowds
    preserve their worker-statistics across tasks.
    """

    def __init__(self, config: CorleoneConfig, platform: CrowdPlatform,
                 seed: int = 0) -> None:
        self.config = config
        self.platform = platform
        self.seed = seed

    def run(self, tasks: list[EMTask], total_budget: float | None = None,
            mode: str = "full") -> BatchOutcome:
        """Run every task; optionally split ``total_budget`` across them.

        Budget split is proportional to each task's Cartesian-product
        size (the driver of labelling need).  Unspent budget from a task
        rolls into the remaining tasks' pool.
        """
        if not tasks:
            raise DataError("task batch must not be empty")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise DataError("task names must be unique within a batch")
        if total_budget is not None and total_budget <= 0:
            raise ConfigurationError("total_budget must be positive")

        outcomes: list[TaskOutcome] = []
        remaining_budget = total_budget
        remaining_weight = sum(task.cartesian for task in tasks)

        for index, task in enumerate(tasks):
            config = self.config
            if remaining_budget is not None:
                share = (task.cartesian / remaining_weight
                         if remaining_weight else 1.0 / (len(tasks) - index))
                config = config.replace(
                    budget=max(0.01, remaining_budget * share)
                )
            # Each task gets its own root seed (and so its own engine
            # RNG streams): task index offsets the runner's base seed.
            pipeline = Corleone(config, self.platform,
                                seed=self.seed + index)
            result = pipeline.run(task.table_a, task.table_b,
                                  task.seed_labels, mode=mode)
            outcomes.append(TaskOutcome(task=task, result=result))
            if remaining_budget is not None:
                remaining_budget = max(0.0,
                                       remaining_budget - result.cost.dollars)
                remaining_weight -= task.cartesian
        return BatchOutcome(outcomes=outcomes)
