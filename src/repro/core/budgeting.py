"""Phase-level budget allocation (Section 10 future work).

The paper asks: *given a monetary budget constraint, how to best
allocate it among the blocking, matching, and accuracy estimation
steps?*  This module implements a practical answer:

* :class:`BudgetPlan` — dollar allocations for the four crowd-consuming
  phases.  :meth:`BudgetPlan.from_total` splits a total using default
  shares derived from the paper's cost breakdowns (blocking is cheap,
  matching dominates, estimation next, reduction a sliver — Tables 2-4).
* :class:`PhaseBudgetManager` — clamps a shared
  :class:`~repro.crowd.cost.CostTracker`'s budget to the entering
  phase's remaining allocation.  When a phase overruns, the module
  running it sees :class:`~repro.exceptions.BudgetExhaustedError` from
  the labelling service and wraps up gracefully with the labels it has;
  the next phase then starts with its own allocation intact.

Unspent allocation rolls forward: the manager caps each phase at
``allocation(phase) - already spent in that phase`` plus any global
headroom, never letting total spend exceed the plan's total.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crowd.cost import CostTracker
from ..exceptions import ConfigurationError

PHASES = ("blocking", "matching", "estimation", "reduction")

DEFAULT_SHARES = {
    # Paper-derived: blocking cost was $7-22 of $9-257 totals; matching
    # dominates; estimation substantial; reduction 3-10% (Section 9.2).
    "blocking": 0.15,
    "matching": 0.45,
    "estimation": 0.30,
    "reduction": 0.10,
}


@dataclass(frozen=True)
class BudgetPlan:
    """Dollar allocations per pipeline phase."""

    blocking: float
    matching: float
    estimation: float
    reduction: float

    def __post_init__(self) -> None:
        for phase in PHASES:
            if getattr(self, phase) < 0:
                raise ConfigurationError(
                    f"budget allocation for {phase} must be >= 0"
                )
        if self.total <= 0:
            raise ConfigurationError("budget plan total must be positive")

    @property
    def total(self) -> float:
        return self.blocking + self.matching + self.estimation + self.reduction

    def allocation(self, phase: str) -> float:
        """The dollars this plan assigns to ``phase``."""
        if phase not in PHASES:
            raise ConfigurationError(f"unknown phase {phase!r}")
        return float(getattr(self, phase))

    @classmethod
    def from_total(cls, total: float,
                   shares: dict[str, float] | None = None) -> "BudgetPlan":
        """Split ``total`` dollars using ``shares`` (default: paper mix).

        Shares must cover exactly the four phases and sum to 1 (within
        rounding).
        """
        if total <= 0:
            raise ConfigurationError("total budget must be positive")
        shares = dict(DEFAULT_SHARES if shares is None else shares)
        if set(shares) != set(PHASES):
            raise ConfigurationError(
                f"shares must name exactly the phases {PHASES}"
            )
        weight = sum(shares.values())
        if not 0.999 <= weight <= 1.001:
            raise ConfigurationError("shares must sum to 1")
        return cls(**{
            phase: total * share / weight
            for phase, share in shares.items()
        })


class PhaseBudgetManager:
    """Applies a :class:`BudgetPlan` to a shared cost tracker.

    Usage::

        manager = PhaseBudgetManager(plan, tracker)
        with manager.phase("matching"):
            ...  # labelling beyond the matching allocation raises
    """

    def __init__(self, plan: BudgetPlan, tracker: CostTracker) -> None:
        self.plan = plan
        self.tracker = tracker
        self._spent: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        self._baseline = tracker.dollars
        """Dollars already on the tracker before the plan took effect."""
        self._active: tuple[str, float] | None = None
        """(phase, entry dollars) while a phase context is open."""

    def spent(self, phase: str) -> float:
        """Dollars consumed by ``phase`` so far."""
        if phase not in PHASES:
            raise ConfigurationError(f"unknown phase {phase!r}")
        return self._spent[phase]

    def state_dict(self) -> dict:
        """Per-phase spend as a JSON-compatible dict (checkpointing).

        Spend of a currently *open* phase context is folded into that
        phase's total, so a run resumed from a mid-phase checkpoint
        re-enters the phase with exactly the remaining allocation the
        uninterrupted run had at that point — the invariant behind
        bit-identical resume under a budget plan.
        """
        spent = dict(self._spent)
        if self._active is not None:
            phase, entry_dollars = self._active
            spent[phase] += self.tracker.dollars - entry_dollars
        return {"spent": spent, "baseline": self._baseline}

    def load_state(self, state: dict) -> None:
        """Restore spend captured by :meth:`state_dict`."""
        self._spent = {
            phase: float(state["spent"].get(phase, 0.0)) for phase in PHASES
        }
        self._baseline = float(state.get("baseline", 0.0))
        self._active = None

    def remaining(self, phase: str) -> float:
        """Allocation left for ``phase`` (rollover not included)."""
        return max(0.0, self.plan.allocation(phase) - self._spent[phase])

    @property
    def total_remaining(self) -> float:
        """Unspent dollars across the whole plan."""
        spent = sum(self._spent.values())
        return max(0.0, self.plan.total - spent)

    def cap(self, phase: str) -> float:
        """Dollars ``phase`` may spend right now.

        Everything unspent so far is available except the remaining
        allocations *reserved* for phases that come later in the
        pipeline order — so underspend in early phases rolls forward,
        while later phases keep their guaranteed minimum.
        """
        if phase not in PHASES:
            raise ConfigurationError(f"unknown phase {phase!r}")
        index = PHASES.index(phase)
        reserved = sum(self.remaining(later) for later in PHASES[index + 1:])
        return max(0.0, self.total_remaining - reserved)

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager scoping the tracker's budget to one phase."""
        if name not in PHASES:
            raise ConfigurationError(f"unknown phase {name!r}")
        return _PhaseContext(self, name)


class _PhaseContext:
    def __init__(self, manager: PhaseBudgetManager, phase: str) -> None:
        self._manager = manager
        self._phase = phase
        self._entry_dollars = 0.0
        self._saved_budget: float | None = None

    def __enter__(self) -> "_PhaseContext":
        manager = self._manager
        tracker = manager.tracker
        self._entry_dollars = tracker.dollars
        self._saved_budget = tracker.budget
        tracker.budget = tracker.dollars + manager.cap(self._phase)
        manager._active = (self._phase, self._entry_dollars)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        manager = self._manager
        tracker = manager.tracker
        manager._spent[self._phase] += tracker.dollars - self._entry_dollars
        tracker.budget = self._saved_budget
        manager._active = None
