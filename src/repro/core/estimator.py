"""Crowdsourced accuracy estimation (Section 6).

Naive estimation of precision/recall by random sampling needs tens of
thousands of labels when matches are rare (Section 6.1's skew problem).
Corleone instead interleaves *probing* (label a small uniform sample) with
*reduction* (apply crowd-certified negative rules, extracted from the
matcher's own forest, to strip away sure negatives and concentrate the
positives), re-optimizing after every step, until the precision and
recall margins of Eqs. 2-3 fall under epsilon_max.

Statistical notes on the implementation:

* Estimation statistics are computed only over the *uniformly sampled*
  rows — labels gathered during active learning are biased toward hard
  examples and are deliberately excluded (they still serve for free via
  the cache when the uniform sampler happens to draw them).
* A uniform sample of C restricted to the survivors of a deterministic
  reduction rule is still a uniform sample of the reduced set, so probe
  labels carry over across reductions.
* The paper assumes certified rules are (near-)100% precise, so that
  reduction removes no actual positives and recall transfers from the
  reduced set to C unchanged.  "Precise" is not "perfect", and the
  residue matters when matches are rare — so instead of assuming, the
  estimator *audits* the removed region with two small stratified
  samples (removed predicted-positives and predicted-negatives, capped
  at ``removed_audit_cap`` labels each) and folds the measured match
  rates back into the precision numerator and recall denominator.
* Rules certified by earlier estimation rounds are accepted for free
  (the paper notes rules are reused across steps), which keeps later
  iterations from re-paying evaluation cost.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.service import LabelingService
from ..exceptions import BudgetExhaustedError
from ..data.pairs import CandidateSet
from ..forest.forest import RandomForest
from ..rules.evaluation import RuleEvaluation, evaluate_rules
from ..rules.extraction import extract_negative_rules
from ..rules.rule import Rule
from ..rules.selection import select_top_k
from ..rules.statistics import fpc_error_margin, required_sample_size


@dataclass
class AccuracyEstimate:
    """The estimator's verdict on a matcher's output over C."""

    precision: float
    recall: float
    eps_precision: float
    eps_recall: float
    n_labeled: int
    """Distinct pairs labelled by the crowd during estimation."""
    n_probes: int
    density: float
    """Estimated positive density of the (reduced) candidate set."""
    converged: bool
    """True when both margins reached epsilon_max."""
    applied_rules: list[Rule] = field(default_factory=list)
    rule_evaluations: list[RuleEvaluation] = field(default_factory=list)

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class AccuracyEstimator:
    """Estimates P/R of a prediction vector over a candidate set."""

    def __init__(self, config: CorleoneConfig, service: LabelingService,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.service = service
        self.rng = rng

    def estimate(self, candidates: CandidateSet, predictions: np.ndarray,
                 forest: RandomForest | None = None,
                 certified: Sequence[RuleEvaluation] = ()) -> AccuracyEstimate:
        """Run the probe-eval-reduce loop until the margins are met.

        ``predictions`` is the matcher's boolean output aligned to
        ``candidates``.  ``forest`` supplies candidate reduction rules;
        without it the estimator degenerates to plain incremental random
        sampling (the Section 6.1 baseline).  ``certified`` carries rule
        evaluations accepted by earlier estimation rounds; their rules
        are applied immediately at zero crowd cost.
        """
        cfg = self.config.estimator
        predictions = np.asarray(predictions, dtype=bool)
        n_rows = len(candidates)
        before = self.service.tracker.snapshot()

        active = np.ones(n_rows, dtype=bool)
        removed = np.zeros(n_rows, dtype=bool)
        sampled: dict[int, bool] = {}
        removed_sampled: dict[int, bool] = {}
        applied: list[Rule] = []
        all_evaluations: list[RuleEvaluation] = []
        rules = self._candidate_rules(candidates, forest)

        # Re-apply rules certified by earlier rounds for free.
        for evaluation in certified:
            if not evaluation.accepted:
                continue
            mask = evaluation.rule.applies(candidates.features)
            removing = mask & active
            if not removing.any():
                continue
            removed |= removing
            active &= ~mask
            applied.append(evaluation.rule)
        rules = [
            rule for rule in rules
            if rule not in {ev.rule for ev in certified}
        ]

        estimate = self._statistics(
            candidates, predictions, active, sampled, removed,
            removed_sampled,
        )
        probes = 0
        while probes < cfg.max_probes:
            # --- Probe: label a fresh uniform batch of the active set.
            pool = [
                row for row in np.flatnonzero(active) if row not in sampled
            ]
            try:
                if pool:
                    take = min(cfg.probe_size, len(pool))
                    chosen = self.rng.choice(len(pool), size=take,
                                             replace=False)
                    batch_rows = [pool[int(i)] for i in chosen]
                    labels = self.service.label_all(
                        [candidates.pairs[row] for row in batch_rows]
                    )
                    for row in batch_rows:
                        sampled[row] = labels[candidates.pairs[row]]
                    probes += 1
                # --- Audit the removed region (see _audit_removed).
                self._audit_removed(candidates, predictions, removed,
                                    removed_sampled)
            except BudgetExhaustedError:
                # Out of money: report the best estimate we have.
                break

            estimate = self._statistics(
                candidates, predictions, active, sampled, removed,
                removed_sampled,
            )
            if (estimate.eps_precision <= cfg.max_error_margin
                    and estimate.eps_recall <= cfg.max_error_margin):
                estimate.converged = True
                break
            if not pool and not rules:
                break  # every active row labelled, nothing left to try

            # --- Re-optimize: pick the cheapest option (possibly no rules).
            option = self._select_option(
                candidates, active, sampled, estimate, rules
            )
            if not option:
                if not pool:
                    break  # nothing left to label and no rule worth it
                continue  # cheapest plan is to keep sampling

            # --- Evaluate the option's rules and apply the precise ones.
            active_rows = np.flatnonzero(active)
            active_cs = candidates.subset(active_rows)
            evaluations = evaluate_rules(
                option, active_cs, self.service, self.rng,
                batch_size=self.config.blocker.eval_batch_size,
                min_precision=self.config.blocker.min_precision,
                max_error_margin=cfg.max_error_margin,
                confidence=cfg.confidence,
                max_labels_per_rule=self.config.blocker.max_labels_per_rule,
            )
            all_evaluations.extend(evaluations)
            rules = [rule for rule in rules if rule not in set(option)]
            for evaluation in evaluations:
                if not evaluation.accepted:
                    continue
                mask = evaluation.rule.applies(candidates.features)
                removing = mask & active
                if not removing.any():
                    continue
                removed |= removing
                active &= ~mask
                applied.append(evaluation.rule)
                for row in np.flatnonzero(removing):
                    # The row left the active population; its label stays
                    # in the service cache, so if the removed-region
                    # audit draws it again it costs nothing.
                    sampled.pop(int(row), None)

        estimate.applied_rules = applied
        estimate.rule_evaluations = all_evaluations
        estimate.n_labeled = (
            self.service.tracker.snapshot().minus(before).pairs_labeled
        )
        estimate.n_probes = probes
        return estimate

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _candidate_rules(self, candidates: CandidateSet,
                         forest: RandomForest | None) -> list[Rule]:
        """Top-k candidate reduction rules from the matcher's forest."""
        if forest is None:
            return []
        cached = self.service.labeled_pairs()
        known = {
            row: cached[pair]
            for row, pair in enumerate(candidates.pairs)
            if pair in cached
        }
        negative = extract_negative_rules(
            forest, candidates.feature_names
        )
        ranked = select_top_k(
            negative, candidates.features, known,
            self.config.estimator.top_k_rules,
        )
        return [r.rule for r in ranked]

    def _audit_removed(self, candidates: CandidateSet,
                       predictions: np.ndarray, removed: np.ndarray,
                       removed_sampled: dict[int, bool]) -> None:
        """Label small stratified samples of the removed region.

        Reduction rules are certified precise, but "precise" is not
        "perfect": removed rows can hide actual positives that distort
        precision (removed predicted-positives) and recall (removed
        matches leave the denominator).  Rather than assuming anything,
        we *measure* both strata with small uniform samples — removed
        predicted-positives and removed predicted-negatives — capped at
        ``removed_audit_cap`` labels each, which is cheap because the
        label cache serves re-draws for free.
        """
        # First, harvest every label the cache already holds for removed
        # rows — rule certification labelled dozens per rule inside the
        # very region the rules then removed, and those samples were
        # drawn uniformly from the rules' coverages, so they are free,
        # low-bias audit evidence.  (Active-learning labels also land
        # here and skew toward boundary positives; the resulting bias
        # *overstates* removed matches, i.e. errs on the conservative
        # side for recall, which beats the alternative of a sparse audit
        # that sees zero positives and reports recall = 1.)
        cached = self.service.labeled_pairs()
        removed_rows = np.flatnonzero(removed)
        for row in removed_rows:
            row = int(row)
            if row in removed_sampled:
                continue
            pair = candidates.pairs[row]
            if pair in cached:
                removed_sampled[row] = cached[pair]

        cap = self.config.estimator.removed_audit_cap
        for stratum_mask in (removed & predictions, removed & ~predictions):
            rows = np.flatnonzero(stratum_mask)
            have = sum(1 for row in rows if int(row) in removed_sampled)
            want = min(cap, rows.size) - have
            if want <= 0:
                continue
            fresh = [int(r) for r in rows if int(r) not in removed_sampled]
            chosen = self.rng.choice(len(fresh), size=want, replace=False)
            batch = [fresh[int(i)] for i in chosen]
            labels = self.service.label_all(
                [candidates.pairs[row] for row in batch]
            )
            for row in batch:
                removed_sampled[row] = labels[candidates.pairs[row]]

    def _removed_corrections(self, predictions: np.ndarray,
                             removed: np.ndarray,
                             removed_sampled: dict[int, bool]) -> tuple[float, float, int]:
        """(tp_removed, ap_removed, pp_removed) estimated from the audit.

        Each stratum's sampled positive rate is extrapolated to the
        stratum size; removed predicted-positives that are actual
        positives remain true positives of the matcher (removal only
        affects estimation bookkeeping, not predictions).
        """
        pp_mask = removed & predictions
        pn_mask = removed & ~predictions
        pp_rows = np.flatnonzero(pp_mask)
        pn_rows = np.flatnonzero(pn_mask)

        def stratum_positive_estimate(rows: np.ndarray) -> float:
            sampled = [
                removed_sampled[int(r)] for r in rows
                if int(r) in removed_sampled
            ]
            if not sampled:
                return 0.0
            return sum(sampled) / len(sampled) * rows.size

        tp_removed = stratum_positive_estimate(pp_rows)
        fn_removed = stratum_positive_estimate(pn_rows)
        return tp_removed, tp_removed + fn_removed, int(pp_rows.size)

    def _statistics(self, candidates: CandidateSet, predictions: np.ndarray,
                    active: np.ndarray, sampled: dict[int, bool],
                    removed: np.ndarray,
                    removed_sampled: dict[int, bool]) -> AccuracyEstimate:
        """P/R and margins over all of C.

        The core statistics come from the uniform sample of the active
        set; the audited removed region contributes measured corrections
        (see :meth:`_audit_removed`) so that the reported estimate
        refers to the full candidate set, not just the survivors.
        """
        cfg = self.config.estimator
        m = int(active.sum())
        rows = [row for row in sampled if active[row]]
        n = len(rows)

        npp_star = int(predictions[active].sum())  # known exactly
        if n == 0 or m == 0:
            return AccuracyEstimate(
                precision=0.0, recall=0.0, eps_precision=1.0,
                eps_recall=1.0, n_labeled=0, n_probes=0, density=0.0,
                converged=False,
            )

        n_pp = sum(1 for row in rows if predictions[row])
        n_ap = sum(1 for row in rows if sampled[row])
        n_tp = sum(1 for row in rows if predictions[row] and sampled[row])
        density = n_ap / n
        nap_star = max(n_ap, round(density * m))

        if n_pp > 0:
            p_active = n_tp / n_pp
            eps_p = fpc_error_margin(
                p_active, n_pp, max(npp_star, n_pp), cfg.confidence
            )
        else:
            # No predicted positives sampled yet: precision unknown.
            p_active, eps_p = 0.0, 0.0 if npp_star == 0 else 1.0

        if n_ap > 0:
            recall_active = n_tp / n_ap
            eps_r = fpc_error_margin(recall_active, n_ap, nap_star,
                                     cfg.confidence)
        else:
            # No actual positives found yet: recall unknown (unless the
            # density really is zero, which the margin reflects).
            recall_active, eps_r = 0.0, 1.0

        # Transfer to all of C using the audited removed region.
        tp_removed, ap_removed, pp_removed = self._removed_corrections(
            predictions, removed, removed_sampled
        )
        tp_total = p_active * npp_star + tp_removed
        pp_total = npp_star + pp_removed
        precision = min(1.0, tp_total / pp_total) if pp_total else 0.0
        ap_total = nap_star + ap_removed
        recall = (
            min(1.0, (recall_active * nap_star + tp_removed) / ap_total)
            if ap_total else 0.0
        )

        return AccuracyEstimate(
            precision=precision, recall=recall,
            eps_precision=eps_p, eps_recall=eps_r,
            n_labeled=0, n_probes=0, density=density, converged=False,
        )

    def _select_option(self, candidates: CandidateSet, active: np.ndarray,
                       sampled: dict[int, bool], estimate: AccuracyEstimate,
                       rules: list[Rule]) -> list[Rule]:
        """Pick the cheapest option: a (possibly empty) set of rules.

        The paper enumerates all 2^n subsets conceptually; we score the
        cost-effective prefix chain (rules ordered by coverage per unit
        evaluation cost), which contains the optimum whenever rule
        coverages are roughly disjoint — and costs O(n log n).
        """
        cfg = self.config.estimator
        m = int(active.sum())
        if m == 0 or not rules:
            return []
        features = candidates.features
        active_idx = np.flatnonzero(active)
        density = max(estimate.density, 1.0 / m)

        entries = []
        for rule in rules:
            coverage = int(rule.applies(features[active_idx]).sum())
            if coverage == 0:
                continue
            eval_cost = required_sample_size(
                self.config.blocker.min_precision, cfg.max_error_margin,
                coverage, cfg.confidence,
            )
            entries.append((coverage / max(eval_cost, 1), coverage,
                            eval_cost, rule))
        entries.sort(key=lambda e: e[0], reverse=True)

        nap_needed = required_sample_size(
            max(min(estimate.recall, 0.99), 0.5), cfg.max_error_margin,
            max(1, round(density * m)), cfg.confidence,
        )

        def sampling_cost(m_reduced: int, covered: int) -> float:
            """Labels needed to collect nap_needed actual positives."""
            if m_reduced <= 0:
                return 0.0
            d_reduced = min(1.0, density * m / m_reduced)
            if d_reduced <= 0:
                return float(m_reduced)
            return min(m_reduced, nap_needed / d_reduced)

        best_cost = sampling_cost(m, 0)
        best_option: list[Rule] = []
        cum_rules: list[Rule] = []
        cum_eval = 0.0
        cum_mask = np.zeros(active_idx.size, dtype=bool)
        for _, coverage, eval_cost, rule in entries:
            cum_rules.append(rule)
            cum_eval += eval_cost
            cum_mask |= rule.applies(features[active_idx])
            covered = int(cum_mask.sum())
            cost = cum_eval + sampling_cost(m - covered, covered)
            if cost < best_cost:
                best_cost = cost
                best_option = list(cum_rules)
        return best_option
