"""The difficult-pairs locator (Section 7).

After each matching round, Corleone extracts the matcher's *precise*
positive and negative rules (certified by the crowd, like blocking rules)
and removes every pair they cover: those pairs are "easy" — some reliable
rule already decides them.  What remains is the difficult set C', which
the next iteration attacks with a fresh matcher.  The locator declines to
iterate when C' is too small to be worth the crowd's money or when no
meaningful reduction happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.service import LabelingService
from ..data.pairs import CandidateSet
from ..forest.forest import RandomForest
from ..rules.evaluation import RuleEvaluation, evaluate_rules
from ..rules.extraction import extract_rules
from ..rules.rule import Rule
from ..rules.selection import select_top_k


@dataclass
class LocatorResult:
    """The locator's verdict for one iteration."""

    difficult: CandidateSet | None
    """The difficult set C', or None when iteration should stop."""

    stop_reason: str
    """"ok", "too_small", "no_reduction" or "no_rules"."""

    accepted_rules: list[Rule] = field(default_factory=list)
    evaluations: list[RuleEvaluation] = field(default_factory=list)
    pairs_labeled: int = 0

    @property
    def should_continue(self) -> bool:
        return self.difficult is not None


class DifficultPairsLocator:
    """Finds the pairs the current matcher cannot reliably decide."""

    def __init__(self, config: CorleoneConfig, service: LabelingService,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.service = service
        self.rng = rng

    def locate(self, candidates: CandidateSet,
               forest: RandomForest) -> LocatorResult:
        """Extract precise rules, strip covered pairs, return C'."""
        cfg = self.config.locator
        before = self.service.tracker.snapshot()

        cached = self.service.labeled_pairs()
        known = {
            row: cached[pair]
            for row, pair in enumerate(candidates.pairs)
            if pair in cached
        }

        selected: list[Rule] = []
        for polarity in (False, True):
            extracted = extract_rules(
                forest, candidates.feature_names, predicts_match=polarity
            )
            ranked = select_top_k(
                extracted, candidates.features, known, cfg.top_k_rules,
                min_coverage=cfg.min_rule_coverage,
            )
            selected.extend(r.rule for r in ranked)

        if not selected:
            return LocatorResult(difficult=None, stop_reason="no_rules")

        evaluations = evaluate_rules(
            selected, candidates, self.service, self.rng,
            batch_size=self.config.blocker.eval_batch_size,
            min_precision=self.config.blocker.min_precision,
            max_error_margin=self.config.blocker.max_error_margin,
            confidence=self.config.blocker.confidence,
            max_labels_per_rule=self.config.blocker.max_labels_per_rule,
        )
        accepted = [ev.rule for ev in evaluations if ev.accepted]
        spent = self.service.tracker.snapshot().minus(before)

        covered = np.zeros(len(candidates), dtype=bool)
        for rule in accepted:
            covered |= rule.applies(candidates.features)
        remaining = np.flatnonzero(~covered)

        result_common = dict(
            accepted_rules=accepted,
            evaluations=evaluations,
            pairs_labeled=spent.pairs_labeled,
        )
        if remaining.size < cfg.min_difficult_pairs:
            return LocatorResult(difficult=None, stop_reason="too_small",
                                 **result_common)
        if remaining.size >= cfg.max_reduction_ratio * len(candidates):
            return LocatorResult(difficult=None, stop_reason="no_reduction",
                                 **result_common)
        return LocatorResult(
            difficult=candidates.subset(remaining),
            stop_reason="ok",
            **result_common,
        )
