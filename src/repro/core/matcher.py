"""Crowdsourced active learning of a random-forest matcher (Section 5).

The matcher trains an initial forest from the user's seed examples, then
iterates: pick the p unlabelled pairs the forest disagrees about most
(entropy, Eq. 1), weighted-sample q of them for diversity, have the crowd
label the batch (2+1 scheme — training data tolerates some noise), retrain,
and monitor conf(V) on a held-out slice until a Section 5.3 stopping
pattern fires.  On a degrading stop the matcher rolls back to its best
pre-degradation forest.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.aggregation import VoteScheme
from ..crowd.service import LabelingService
from ..data.pairs import CandidateSet, Pair
from ..exceptions import BudgetExhaustedError, DataError
from ..forest.forest import RandomForest, train_forest
from ..obs import hooks
from .stopping import ConfidenceMonitor, StopDecision


@dataclass
class MatcherResult:
    """Everything the rest of the pipeline needs from a matcher run."""

    forest: RandomForest
    """The selected forest (post-rollback if training degraded)."""

    predictions: np.ndarray
    """Boolean predictions over the candidate set, aligned to its rows."""

    labeled_rows: dict[int, bool]
    """Candidate-set row -> crowd/seed label used for training."""

    confidence_history: list[float]
    """Raw conf(V) per iteration (Figure 3's series)."""

    stop_reason: str
    n_iterations: int
    pairs_labeled: int
    """Distinct pairs the crowd labelled during this training run."""

    extra_labels: dict[Pair, bool] = field(default_factory=dict)
    """Training labels for pairs outside the candidate set (seeds)."""

    def predicted_pairs(self, candidates: CandidateSet) -> set[Pair]:
        """The pairs of ``candidates`` this matcher predicts as matches."""
        return {
            candidates.pairs[row]
            for row in np.flatnonzero(self.predictions)
        }


@dataclass
class MatcherTrainState:
    """The full state of an in-progress active-learning training run.

    Everything :meth:`ActiveLearningMatcher.step` reads and writes lives
    here, and every field is serializable (forests via
    ``repro.persistence``), so the engine can checkpoint training after
    any iteration and resume it bit-identically.
    """

    labeled_rows: dict[int, bool]
    """Candidate-set row -> training label gathered so far."""

    monitor_rows: list[int]
    """Rows of the held-out monitoring set V (empty: monitor on all)."""

    confidences: list[float] = field(default_factory=list)
    """Raw conf(V) recorded per completed iteration."""

    forests: list[RandomForest] = field(default_factory=list)
    """The forest fitted in each iteration, in order."""

    pairs_before: int = 0
    """Tracker's ``pairs_labeled`` when training started (for cost
    attribution; absolute, so it survives checkpoint/resume)."""

    stop_reason: str | None = None
    """Why training stopped, or None while it should continue."""

    rollback_index: int | None = None
    """Forest index to keep when a monitor decision requested rollback."""


class ActiveLearningMatcher:
    """Trains a forest over a candidate set via crowdsourced labelling.

    Training runs stepwise — :meth:`start` / :meth:`step` /
    :meth:`finish` — so the engine can checkpoint between iterations;
    :meth:`train` composes the three into the classic one-call loop.
    """

    def __init__(self, config: CorleoneConfig, service: LabelingService,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.service = service
        self.rng = rng

    def train(self, candidates: CandidateSet,
              initial_labels: dict[Pair, bool],
              extra_vectors: np.ndarray | None = None,
              extra_labels: np.ndarray | None = None,
              state: MatcherTrainState | None = None,
              on_iteration: Callable[[MatcherTrainState], None] | None = None,
              ) -> MatcherResult:
        """Run the full active-learning loop over ``candidates``.

        ``initial_labels`` hold trusted labels (the user's seed examples
        and anything already cached); pairs not present in the candidate
        set are ignored here — pass their vectors via ``extra_vectors`` /
        ``extra_labels`` to still use them for training.

        ``state`` resumes a checkpointed training run (``initial_labels``
        is then ignored — the state already carries the labels), and
        ``on_iteration`` is called after every completed iteration with
        the current state (the engine's mid-stage checkpoint hook).
        """
        if state is None:
            state = self.start(candidates, initial_labels)
        while not self.train_finished(state):
            self.step(state, candidates, extra_vectors, extra_labels)
            if on_iteration is not None:
                on_iteration(state)
        return self.finish(state, candidates)

    def start(self, candidates: CandidateSet,
              initial_labels: dict[Pair, bool]) -> MatcherTrainState:
        """Initialize training: seed the labels, draw the monitor set."""
        if len(candidates) == 0:
            raise DataError("cannot train a matcher on an empty candidate set")
        labeled_rows: dict[int, bool] = {}
        for pair, label in initial_labels.items():
            if pair in candidates:
                labeled_rows[candidates.index_of(pair)] = label
        monitor_rows = self._pick_monitor_rows(candidates, labeled_rows)
        return MatcherTrainState(
            labeled_rows=labeled_rows,
            monitor_rows=[int(row) for row in monitor_rows],
            pairs_before=self.service.tracker.pairs_labeled,
        )

    def train_finished(self, state: MatcherTrainState) -> bool:
        """True when no further :meth:`step` call should run."""
        if state.stop_reason is not None:
            return True
        return len(state.forests) >= self.config.matcher.max_iterations

    def step(self, state: MatcherTrainState, candidates: CandidateSet,
             extra_vectors: np.ndarray | None = None,
             extra_labels: np.ndarray | None = None) -> None:
        """One active-learning iteration: fit, monitor, select, label.

        Mutates ``state`` in place; sets ``state.stop_reason`` when a
        stopping condition fires.  When the loop instead exhausts
        ``max_iterations`` without a stop, :meth:`train_finished` ends
        training and :meth:`finish` reports ``"max_iterations"``.
        """
        forest = self._fit(candidates, state.labeled_rows,
                           extra_vectors, extra_labels)
        state.forests.append(forest)

        if state.monitor_rows:
            monitor_x = candidates.features[
                np.asarray(state.monitor_rows, dtype=np.intp)
            ]
        else:
            monitor_x = candidates.features
        confidence = forest.mean_confidence(monitor_x)
        monitor = ConfidenceMonitor.from_history(self.config.matcher,
                                                 state.confidences)
        decision: StopDecision | None = monitor.add(confidence)
        state.confidences.append(float(confidence))
        if decision is not None:
            state.stop_reason = decision.reason
            state.rollback_index = decision.rollback_index
            return

        batch_rows = self._select_batch(
            forest, candidates, state.labeled_rows, set(state.monitor_rows)
        )
        if not batch_rows:
            state.stop_reason = "pool_exhausted"
            return
        try:
            new_labels = self.service.label_batch(
                [candidates.pairs[row] for row in batch_rows],
                scheme=VoteScheme.MAJORITY_2PLUS1,
            )
        except BudgetExhaustedError:
            # Out of money: keep the current forest and wrap up.
            state.stop_reason = "budget_exhausted"
            return
        if not new_labels:
            state.stop_reason = "no_labels_returned"
            return
        for row in batch_rows:
            pair = candidates.pairs[row]
            if pair in new_labels:
                state.labeled_rows[row] = new_labels[pair]

    def finish(self, state: MatcherTrainState,
               candidates: CandidateSet) -> MatcherResult:
        """Select the final forest and package the training outcome."""
        forests = state.forests
        chosen_index = (state.rollback_index
                        if state.rollback_index is not None
                        else len(forests) - 1)
        chosen = forests[min(chosen_index, len(forests) - 1)]
        # Predictions come from the forest for every pair, including the
        # crowd-labelled ones: individual crowd labels are noisy (2+1
        # voting tolerates errors) and the ensemble smooths them out.
        predictions = chosen.predict(candidates.features)

        return MatcherResult(
            forest=chosen,
            predictions=predictions,
            labeled_rows=dict(state.labeled_rows),
            confidence_history=list(state.confidences),
            stop_reason=state.stop_reason or "max_iterations",
            n_iterations=len(forests),
            pairs_labeled=(self.service.tracker.pairs_labeled
                           - state.pairs_before),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pick_monitor_rows(self, candidates: CandidateSet,
                           labeled_rows: dict[int, bool]) -> np.ndarray:
        """The held-out monitoring set V: a small unlabelled slice of C."""
        cfg = self.config.matcher
        n = len(candidates)
        size = min(cfg.monitor_cap, max(1, int(cfg.monitor_fraction * n)))
        available = np.array(
            [row for row in range(n) if row not in labeled_rows],
            dtype=np.intp,
        )
        if available.size == 0:
            return np.empty(0, dtype=np.intp)
        size = min(size, available.size)
        return self.rng.choice(available, size=size, replace=False)

    def _fit(self, candidates: CandidateSet, labeled_rows: dict[int, bool],
             extra_vectors: np.ndarray | None,
             extra_labels: np.ndarray | None) -> RandomForest:
        rows = sorted(labeled_rows)
        x = candidates.features[rows] if rows else np.empty(
            (0, len(candidates.feature_names))
        )
        y = np.array([labeled_rows[row] for row in rows], dtype=bool)
        if extra_vectors is not None and extra_labels is not None:
            x = np.vstack([x, extra_vectors]) if x.size else np.asarray(extra_vectors)
            y = np.concatenate([y, np.asarray(extra_labels, dtype=bool)])
        if x.shape[0] == 0:
            raise DataError("no labelled examples available to train on")
        return train_forest(x, y, self.config.forest, self.rng)

    def _select_batch(self, forest: RandomForest, candidates: CandidateSet,
                      labeled_rows: dict[int, bool],
                      excluded: set[int]) -> list[int]:
        """Pick the next q examples per the configured strategy (§5.2).

        The paper's default is entropy top-p pooling followed by
        entropy-weighted sampling; the alternatives exist for the
        Section 9.4 ablation.
        """
        cfg = self.config.matcher
        unlabeled = np.array([
            row for row in range(len(candidates))
            if row not in labeled_rows and row not in excluded
        ], dtype=np.intp)
        if unlabeled.size == 0:
            return []

        take = min(cfg.batch_size, unlabeled.size)
        if cfg.selection_strategy == "random":
            chosen = self.rng.choice(unlabeled.size, size=take,
                                     replace=False)
            return [int(unlabeled[i]) for i in chosen]

        entropy = forest.entropy(candidates.features[unlabeled])
        if cfg.selection_strategy == "top_entropy":
            order = np.argsort(entropy)[::-1][:take]
            return [int(unlabeled[i]) for i in order]

        pool_size = min(cfg.pool_size, unlabeled.size)
        pool_order = np.argsort(entropy)[::-1][:pool_size]
        pool_rows = unlabeled[pool_order]
        pool_entropy = entropy[pool_order]
        hooks.record_entropy_pool(pool_rows.size)

        take = min(take, pool_rows.size)
        weights = pool_entropy + 1e-9  # keep zero-entropy rows samplable
        weights = weights / weights.sum()
        chosen = self.rng.choice(
            pool_rows.size, size=take, replace=False, p=weights
        )
        return [int(pool_rows[i]) for i in chosen]
