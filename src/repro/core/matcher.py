"""Crowdsourced active learning of a random-forest matcher (Section 5).

The matcher trains an initial forest from the user's seed examples, then
iterates: pick the p unlabelled pairs the forest disagrees about most
(entropy, Eq. 1), weighted-sample q of them for diversity, have the crowd
label the batch (2+1 scheme — training data tolerates some noise), retrain,
and monitor conf(V) on a held-out slice until a Section 5.3 stopping
pattern fires.  On a degrading stop the matcher rolls back to its best
pre-degradation forest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.aggregation import VoteScheme
from ..crowd.service import LabelingService
from ..data.pairs import CandidateSet, Pair
from ..exceptions import BudgetExhaustedError, DataError
from ..forest.forest import RandomForest, train_forest
from .stopping import ConfidenceMonitor, StopDecision


@dataclass
class MatcherResult:
    """Everything the rest of the pipeline needs from a matcher run."""

    forest: RandomForest
    """The selected forest (post-rollback if training degraded)."""

    predictions: np.ndarray
    """Boolean predictions over the candidate set, aligned to its rows."""

    labeled_rows: dict[int, bool]
    """Candidate-set row -> crowd/seed label used for training."""

    confidence_history: list[float]
    """Raw conf(V) per iteration (Figure 3's series)."""

    stop_reason: str
    n_iterations: int
    pairs_labeled: int
    """Distinct pairs the crowd labelled during this training run."""

    extra_labels: dict[Pair, bool] = field(default_factory=dict)
    """Training labels for pairs outside the candidate set (seeds)."""

    def predicted_pairs(self, candidates: CandidateSet) -> set[Pair]:
        """The pairs of ``candidates`` this matcher predicts as matches."""
        return {
            candidates.pairs[row]
            for row in np.flatnonzero(self.predictions)
        }


class ActiveLearningMatcher:
    """Trains a forest over a candidate set via crowdsourced labelling."""

    def __init__(self, config: CorleoneConfig, service: LabelingService,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.service = service
        self.rng = rng

    def train(self, candidates: CandidateSet,
              initial_labels: dict[Pair, bool],
              extra_vectors: np.ndarray | None = None,
              extra_labels: np.ndarray | None = None) -> MatcherResult:
        """Run the full active-learning loop over ``candidates``.

        ``initial_labels`` hold trusted labels (the user's seed examples
        and anything already cached); pairs not present in the candidate
        set are ignored here — pass their vectors via ``extra_vectors`` /
        ``extra_labels`` to still use them for training.
        """
        if len(candidates) == 0:
            raise DataError("cannot train a matcher on an empty candidate set")
        cfg = self.config.matcher

        labeled_rows: dict[int, bool] = {}
        for pair, label in initial_labels.items():
            if pair in candidates:
                labeled_rows[candidates.index_of(pair)] = label

        monitor_rows = self._pick_monitor_rows(candidates, labeled_rows)
        monitor_x = candidates.features[monitor_rows] if monitor_rows.size else None

        monitor = ConfidenceMonitor(cfg)
        forests: list[RandomForest] = []
        pairs_before = self.service.tracker.pairs_labeled
        decision: StopDecision | None = None
        stop_reason = "max_iterations"
        excluded = set(int(r) for r in monitor_rows)

        for _ in range(cfg.max_iterations):
            forest = self._fit(candidates, labeled_rows,
                               extra_vectors, extra_labels)
            forests.append(forest)

            if monitor_x is not None:
                confidence = forest.mean_confidence(monitor_x)
            else:
                confidence = forest.mean_confidence(candidates.features)
            decision = monitor.add(confidence)
            if decision is not None:
                stop_reason = decision.reason
                break

            batch_rows = self._select_batch(
                forest, candidates, labeled_rows, excluded
            )
            if not batch_rows:
                stop_reason = "pool_exhausted"
                break
            try:
                new_labels = self.service.label_batch(
                    [candidates.pairs[row] for row in batch_rows],
                    scheme=VoteScheme.MAJORITY_2PLUS1,
                )
            except BudgetExhaustedError:
                # Out of money: keep the current forest and wrap up.
                stop_reason = "budget_exhausted"
                break
            if not new_labels:
                stop_reason = "no_labels_returned"
                break
            for row in batch_rows:
                pair = candidates.pairs[row]
                if pair in new_labels:
                    labeled_rows[row] = new_labels[pair]

        chosen_index = decision.rollback_index if decision else len(forests) - 1
        chosen = forests[min(chosen_index, len(forests) - 1)]
        # Predictions come from the forest for every pair, including the
        # crowd-labelled ones: individual crowd labels are noisy (2+1
        # voting tolerates errors) and the ensemble smooths them out.
        predictions = chosen.predict(candidates.features)

        return MatcherResult(
            forest=chosen,
            predictions=predictions,
            labeled_rows=dict(labeled_rows),
            confidence_history=monitor.raw,
            stop_reason=stop_reason,
            n_iterations=len(forests),
            pairs_labeled=self.service.tracker.pairs_labeled - pairs_before,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pick_monitor_rows(self, candidates: CandidateSet,
                           labeled_rows: dict[int, bool]) -> np.ndarray:
        """The held-out monitoring set V: a small unlabelled slice of C."""
        cfg = self.config.matcher
        n = len(candidates)
        size = min(cfg.monitor_cap, max(1, int(cfg.monitor_fraction * n)))
        available = np.array(
            [row for row in range(n) if row not in labeled_rows],
            dtype=np.intp,
        )
        if available.size == 0:
            return np.empty(0, dtype=np.intp)
        size = min(size, available.size)
        return self.rng.choice(available, size=size, replace=False)

    def _fit(self, candidates: CandidateSet, labeled_rows: dict[int, bool],
             extra_vectors: np.ndarray | None,
             extra_labels: np.ndarray | None) -> RandomForest:
        rows = sorted(labeled_rows)
        x = candidates.features[rows] if rows else np.empty(
            (0, len(candidates.feature_names))
        )
        y = np.array([labeled_rows[row] for row in rows], dtype=bool)
        if extra_vectors is not None and extra_labels is not None:
            x = np.vstack([x, extra_vectors]) if x.size else np.asarray(extra_vectors)
            y = np.concatenate([y, np.asarray(extra_labels, dtype=bool)])
        if x.shape[0] == 0:
            raise DataError("no labelled examples available to train on")
        return train_forest(x, y, self.config.forest, self.rng)

    def _select_batch(self, forest: RandomForest, candidates: CandidateSet,
                      labeled_rows: dict[int, bool],
                      excluded: set[int]) -> list[int]:
        """Pick the next q examples per the configured strategy (§5.2).

        The paper's default is entropy top-p pooling followed by
        entropy-weighted sampling; the alternatives exist for the
        Section 9.4 ablation.
        """
        cfg = self.config.matcher
        unlabeled = np.array([
            row for row in range(len(candidates))
            if row not in labeled_rows and row not in excluded
        ], dtype=np.intp)
        if unlabeled.size == 0:
            return []

        take = min(cfg.batch_size, unlabeled.size)
        if cfg.selection_strategy == "random":
            chosen = self.rng.choice(unlabeled.size, size=take,
                                     replace=False)
            return [int(unlabeled[i]) for i in chosen]

        entropy = forest.entropy(candidates.features[unlabeled])
        if cfg.selection_strategy == "top_entropy":
            order = np.argsort(entropy)[::-1][:take]
            return [int(unlabeled[i]) for i in order]

        pool_size = min(cfg.pool_size, unlabeled.size)
        pool_order = np.argsort(entropy)[::-1][:pool_size]
        pool_rows = unlabeled[pool_order]
        pool_entropy = entropy[pool_order]

        take = min(take, pool_rows.size)
        weights = pool_entropy + 1e-9  # keep zero-entropy rows samplable
        weights = weights / weights.sum()
        chosen = self.rng.choice(
            pool_rows.size, size=take, replace=False, p=weights
        )
        return [int(pool_rows[i]) for i in chosen]
