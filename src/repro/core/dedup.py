"""Single-table deduplication: the paper's "other EM setting" (§2).

Corleone's published setting matches two tables A and B; the paper
explicitly leaves other settings (e.g. deduplicating one dirty table) as
ongoing work.  This module closes that gap by *reducing* dedup to the
two-table pipeline:

* the input table plays both roles (A = B = T);
* self-pairs (t, t) are excluded up front — they are trivially matches
  and would pollute training and estimation;
* each unordered pair {s, t} is canonicalized to one ordered pair
  (min_id, max_id), halving the Cartesian product and preventing the
  crowd from paying twice for (s, t) and (t, s);
* predicted matches are closed transitively into duplicate *clusters*
  (connected components), which is what a dedup user actually wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CorleoneConfig
from ..crowd.base import CrowdPlatform
from ..crowd.cost import CostSnapshot
from ..data.pairs import Pair
from ..data.table import Record, Table
from ..exceptions import DataError
from .pipeline import Corleone, CorleoneResult


@dataclass
class DedupResult:
    """Duplicate pairs and their transitive clusters."""

    duplicate_pairs: frozenset[Pair]
    clusters: list[list[str]]
    """Groups of record ids that refer to the same entity (size >= 2)."""
    pipeline_result: CorleoneResult
    cost: CostSnapshot = field(default_factory=CostSnapshot)

    @property
    def n_duplicates(self) -> int:
        """Records that have at least one duplicate."""
        return sum(len(cluster) for cluster in self.clusters)


def canonical_pair(id_a: str, id_b: str) -> Pair:
    """The canonical ordered form of an unordered record-id pair."""
    if id_a == id_b:
        raise DataError("a record cannot pair with itself")
    return Pair(id_a, id_b) if id_a < id_b else Pair(id_b, id_a)


class Deduplicator:
    """Runs hands-off dedup on a single table.

    Executes through the same staged engine as :class:`Corleone`:
    ``seed`` fixes the underlying run's root seed sequence and
    ``run_dir`` enables the engine's checkpoint/resume machinery for
    the dedup run (``rng`` is the back-compat way to fix the seed).
    """

    def __init__(self, config: CorleoneConfig, platform: CrowdPlatform,
                 rng: np.random.Generator | None = None,
                 seed: int | None = None,
                 run_dir: str | None = None) -> None:
        self.config = config
        self.platform = platform
        self.rng = rng
        self.seed = seed
        self.run_dir = run_dir

    def run(self, table: Table, seed_labels: dict[Pair, bool],
            mode: str = "full") -> DedupResult:
        """Deduplicate ``table`` using the crowd.

        ``seed_labels`` name duplicate / distinct record pairs in any
        order; they are canonicalized here.  The underlying pipeline
        sees the table twice under disambiguated record ids ("L:" /
        "R:" prefixes), and a wrapped crowd platform translates
        questions back to canonical pairs so duplicate questions are
        answered consistently and cached once.
        """
        if len(table) < 2:
            raise DataError("dedup needs at least two records")
        seeds = {}
        for pair, label in seed_labels.items():
            seeds[canonical_pair(pair.a_id, pair.b_id)] = label

        left = _prefix_table(table, "L")
        right = _prefix_table(table, "R")
        prefixed_seeds = {
            Pair(f"L:{pair.a_id}", f"R:{pair.b_id}"): label
            for pair, label in seeds.items()
        }
        platform = _DedupPlatform(self.platform)
        pipeline = Corleone(self.config, platform, rng=self.rng,
                            seed=self.seed, run_dir=self.run_dir)
        result = pipeline.run(left, right, prefixed_seeds, mode=mode)

        duplicates: set[Pair] = set()
        for pair in result.predicted_matches:
            original_a = pair.a_id[2:]
            original_b = pair.b_id[2:]
            if original_a == original_b:
                continue  # self-pair: trivially a "match", not a duplicate
            duplicates.add(canonical_pair(original_a, original_b))

        return DedupResult(
            duplicate_pairs=frozenset(duplicates),
            clusters=cluster_duplicates(duplicates),
            pipeline_result=result,
            cost=result.cost,
        )


class _DedupPlatform(CrowdPlatform):
    """Strips the L:/R: prefixes and answers self-pairs for free."""

    def __init__(self, inner: CrowdPlatform) -> None:
        self._inner = inner
        self._free_answers = 0

    def ask(self, pair: Pair):
        from ..crowd.base import WorkerAnswer
        original_a = pair.a_id[2:]
        original_b = pair.b_id[2:]
        if original_a == original_b:
            # A record always matches itself; no human needed.
            self._free_answers += 1
            return WorkerAnswer(pair, True, worker_id=-1)
        answer = self._inner.ask(canonical_pair(original_a, original_b))
        return WorkerAnswer(pair, answer.label, answer.worker_id)


def _prefix_table(table: Table, prefix: str) -> Table:
    """A copy of ``table`` with record ids prefixed (schemas shared)."""
    return Table(
        f"{prefix}:{table.name}",
        table.schema,
        (
            Record(f"{prefix}:{record.record_id}", record.values)
            for record in table
        ),
    )


def cluster_duplicates(pairs: set[Pair] | frozenset[Pair]) -> list[list[str]]:
    """Connected components of the duplicate graph (union-find).

    Returns sorted clusters of record ids, largest first; singletons are
    omitted (a record without duplicates is not a cluster).
    """
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(x: str, y: str) -> None:
        root_x, root_y = find(x), find(y)
        if root_x != root_y:
            parent[root_y] = root_x

    for pair in pairs:
        union(pair.a_id, pair.b_id)

    groups: dict[str, list[str]] = {}
    for node in parent:
        groups.setdefault(find(node), []).append(node)
    clusters = [sorted(group) for group in groups.values()
                if len(group) >= 2]
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return clusters
