"""Result records of the hands-off pipeline.

:class:`IterationRecord` and :class:`CorleoneResult` are the run's
output datatypes, factored out of the orchestrator so that the staged
execution engine (:mod:`repro.engine`) and the persistence layer can
build and serialize them without importing the pipeline driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crowd.cost import CostSnapshot
from ..data.pairs import CandidateSet, Pair
from .blocker import BlockerResult
from .estimator import AccuracyEstimate
from .locator import LocatorResult
from .matcher import MatcherResult


@dataclass
class IterationRecord:
    """Telemetry for one matching iteration (one row group of Table 4)."""

    index: int
    matcher: MatcherResult
    matcher_pairs_labeled: int
    predicted_pairs: frozenset[Pair]
    """Combined (ensemble) predicted matches over C after this iteration."""
    estimate: AccuracyEstimate | None = None
    estimation_pairs_labeled: int = 0
    locator: LocatorResult | None = None
    reduction_pairs_labeled: int = 0
    difficult_size: int | None = None


@dataclass
class CorleoneResult:
    """The hands-off run's complete output."""

    predicted_matches: frozenset[Pair]
    candidates: CandidateSet
    blocker: BlockerResult
    iterations: list[IterationRecord] = field(default_factory=list)
    estimate: AccuracyEstimate | None = None
    cost: CostSnapshot = field(default_factory=CostSnapshot)
    stop_reason: str = ""

    @property
    def total_pairs_labeled(self) -> int:
        """Distinct pairs the crowd labelled over the whole run."""
        return self.cost.pairs_labeled

    @property
    def total_dollars(self) -> float:
        """Dollars spent over the whole run."""
        return self.cost.dollars
