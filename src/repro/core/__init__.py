"""Corleone's core modules (Figure 1).

* :mod:`~repro.core.blocker` — crowdsourced blocking (Section 4)
* :mod:`~repro.core.matcher` — crowdsourced active learning (Section 5)
* :mod:`~repro.core.stopping` — the matcher's stopping rules (Section 5.3)
* :mod:`~repro.core.estimator` — accuracy estimation (Section 6)
* :mod:`~repro.core.locator` — difficult-pairs locator (Section 7)
* :mod:`~repro.core.pipeline` — the hands-off orchestrator
* :mod:`~repro.core.baselines` — Baseline 1 / Baseline 2 (Section 9.1)
"""

from .stopping import ConfidenceMonitor, StopDecision, smooth
from .matcher import ActiveLearningMatcher, MatcherResult
from .blocker import (
    Blocker,
    BlockerResult,
    apply_rules_parallel,
    apply_rules_streaming,
)
from .estimator import AccuracyEstimate, AccuracyEstimator
from .locator import DifficultPairsLocator, LocatorResult
from .pipeline import Corleone, CorleoneResult, IterationRecord
from .baselines import BaselineResult, developer_blocking, run_baseline

__all__ = [
    "ConfidenceMonitor",
    "StopDecision",
    "smooth",
    "ActiveLearningMatcher",
    "MatcherResult",
    "Blocker",
    "BlockerResult",
    "apply_rules_parallel",
    "apply_rules_streaming",
    "AccuracyEstimate",
    "AccuracyEstimator",
    "DifficultPairsLocator",
    "LocatorResult",
    "Corleone",
    "CorleoneResult",
    "IterationRecord",
    "BaselineResult",
    "developer_blocking",
    "run_baseline",
]
