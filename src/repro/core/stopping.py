"""The matcher's stopping rules (Section 5.3, Figure 3).

The matcher records conf(V) — its mean confidence over a held-out
monitoring set — once per active-learning iteration.  The raw series is
noisy (crowd mislabels cause peaks and valleys), so a centered moving
average of width w smooths it, and training stops on the first of three
patterns:

* **converged** — the last ``n_converged`` smoothed values sit inside a
  2-epsilon band;
* **near-absolute** — the last ``n_high`` smoothed values are all at
  least ``1 - epsilon``;
* **degrading** — of two adjacent windows of ``n_degrade`` values, the
  earlier window's maximum exceeds the later's by more than epsilon; the
  matcher then rolls back to its best pre-degradation model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MatcherConfig
from ..exceptions import ConfigurationError


def smooth(values: list[float], window: int) -> list[float]:
    """Centered moving average of odd width ``window``.

    Boundary values average over the neighbours that exist, so the output
    has the same length as the input.
    """
    if window < 1 or window % 2 == 0:
        raise ConfigurationError("smoothing window must be odd and >= 1")
    half = window // 2
    out: list[float] = []
    for i in range(len(values)):
        low = max(0, i - half)
        high = min(len(values), i + half + 1)
        out.append(sum(values[low:high]) / (high - low))
    return out


@dataclass(frozen=True)
class StopDecision:
    """Why training stopped, and which recorded model to keep.

    ``rollback_index`` is the iteration whose model should be used; for
    the degrading pattern this is the peak inside the earlier window, for
    the other patterns it is the latest iteration.
    """

    reason: str
    rollback_index: int


class ConfidenceMonitor:
    """Accumulates conf(V) values and detects the three stop patterns."""

    def __init__(self, config: MatcherConfig) -> None:
        self.config = config
        self._raw: list[float] = []

    @classmethod
    def from_history(cls, config: MatcherConfig,
                     values: list[float]) -> "ConfidenceMonitor":
        """A monitor preloaded with an already-recorded conf(V) series.

        Used when resuming matcher training from a checkpoint: the
        recorded values are restored verbatim *without* re-running the
        stop patterns (they did not fire when the values were first
        added, or training would have stopped then).
        """
        monitor = cls(config)
        monitor._raw = [float(v) for v in values]
        return monitor

    @property
    def raw(self) -> list[float]:
        """The recorded conf(V) series (a copy)."""
        return list(self._raw)

    def smoothed(self) -> list[float]:
        """The smoothed series used for pattern detection."""
        return smooth(self._raw, self.config.smoothing_window)

    def add(self, confidence: float) -> StopDecision | None:
        """Record one conf(V) value; return a decision if a pattern fires.

        Patterns are checked in the paper's order of cheapness: the
        near-absolute check fires after only ``n_high`` iterations, so it
        is tried first; then convergence; then degradation.
        """
        self._raw.append(confidence)
        series = self.smoothed()
        return (
            self._near_absolute(series)
            or self._converged(series)
            or self._degrading(series)
        )

    def _near_absolute(self, series: list[float]) -> StopDecision | None:
        n = self.config.n_high
        if len(series) < n:
            return None
        tail = series[-n:]
        if all(v >= 1.0 - self.config.epsilon for v in tail):
            return StopDecision("near_absolute", len(series) - 1)
        return None

    def _converged(self, series: list[float]) -> StopDecision | None:
        n = self.config.n_converged
        if len(series) < n:
            return None
        tail = series[-n:]
        # |v - v*| <= epsilon for some v* is equivalent to the tail
        # fitting inside a band of width 2 * epsilon.
        if max(tail) - min(tail) <= 2.0 * self.config.epsilon:
            return StopDecision("converged", len(series) - 1)
        return None

    def _degrading(self, series: list[float]) -> StopDecision | None:
        n = self.config.n_degrade
        if len(series) < 2 * n:
            return None
        earlier = series[-2 * n:-n]
        later = series[-n:]
        if max(earlier) > max(later) + self.config.epsilon:
            # Roll back to the peak inside the earlier window.
            offset = len(series) - 2 * n
            peak = offset + max(range(n), key=lambda i: earlier[i])
            return StopDecision("degrading", peak)
        return None
