"""Configuration for every tunable parameter in the Corleone paper.

Each field corresponds to a value called out explicitly in the SIGMOD 2014
paper; the section reference is given alongside.  The default values are the
paper's defaults.  Benchmarks for Section 9.4 sweep many of these.

The config is a frozen dataclass: experiments derive variants with
:func:`dataclasses.replace`, which keeps runs hermetic and hashable.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class ForestConfig:
    """Random-forest hyper-parameters (Section 5.1, Weka defaults)."""

    n_trees: int = 10
    """Number of decision trees per forest (paper: k = 10)."""

    bagging_fraction: float = 0.6
    """Fraction of training data sampled (without replacement) per tree."""

    max_depth: int = 32
    """Safety cap on tree depth; the paper's trees had 8-655 leaves."""

    min_samples_split: int = 2
    """Do not split nodes with fewer examples than this."""

    min_samples_leaf: int = 2
    """Every leaf must contain at least this many training examples.

    Deliberate deviation from Weka's default of 1: with noisy crowd
    labels, purity-grown leaves memorize individual wrong labels and
    the matcher's precision collapses (we measured F1 0.78 -> 0.99 on
    the noisy restaurants workload when raising this to 2).
    """

    def features_per_split(self, n_features: int) -> int:
        """Weka default m = log2(n) + 1 features examined per split."""
        if n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        return max(1, int(math.log2(n_features)) + 1)


@dataclass(frozen=True)
class BlockerConfig:
    """Blocking parameters (Section 4)."""

    t_b: int = 3_000_000
    """Blocking threshold: block only if |A x B| > t_b (paper: 3M pairs,
    the number of feature vectors that fit in memory).  Scaled-down
    experiments lower this proportionally."""

    sampling_strategy: str = "uniform"
    """How the learning sample S is drawn from A x B: "uniform" (the
    paper's §4.1 scheme) or "weighted" (the §10 extension: half the B
    rows chosen by shared-rare-token weight — use when an attribute
    carries identifying tokens such as model numbers)."""

    sampling_attribute: str | None = None
    """Attribute the weighted sampler scores on (None: first textual)."""

    top_k_rules: int = 20
    """Number of candidate blocking rules sent to crowd evaluation."""

    eval_batch_size: int = 20
    """Examples labelled per round while evaluating one rule (paper: b=20)."""

    min_precision: float = 0.95
    """P_min: rules below this estimated precision are discarded."""

    max_error_margin: float = 0.05
    """epsilon_max: stop evaluating a rule once its margin is this tight."""

    confidence: float = 0.95
    """Confidence level delta for rule-precision intervals."""

    max_labels_per_rule: int = 200
    """Safety cap on crowd labels spent evaluating a single rule."""

    executor: str = "streaming"
    """How chosen rules are applied over A x B: "streaming" (single
    process, the PR 1 baseline), "parallel" (legacy per-job-pickling
    worker pool), or "sharded" (fork copy-on-write shards with shared
    prepared-column caches and per-shard resume — the Hadoop stand-in).
    All three produce bit-identical candidate sets."""

    n_workers: int = 1
    """Worker processes for the parallel/sharded executors (1 runs the
    sharded executor in-process; ignored by "streaming")."""

    shard_size: int = 0
    """Rows of A per shard for the sharded executor; 0 auto-sizes to
    roughly four shards per worker."""


@dataclass(frozen=True)
class MatcherConfig:
    """Active-learning matcher parameters (Section 5)."""

    batch_size: int = 20
    """q: examples labelled by the crowd per learning iteration."""

    pool_size: int = 100
    """p: highest-entropy examples from which the batch is sampled."""

    selection_strategy: str = "entropy_weighted"
    """How the q-example batch is drawn from the unlabelled pool:

    * ``"entropy_weighted"`` — the paper's §5.2 scheme: top-p by entropy,
      then weighted sampling with entropy weights (informative + diverse);
    * ``"top_entropy"`` — plain top-q by entropy (no diversity);
    * ``"random"`` — uniform over the unlabelled pool (passive learning,
      the Baseline-1 regime).
    """

    monitor_fraction: float = 0.03
    """Fraction of the candidate set set aside as the monitoring set V."""

    monitor_cap: int = 2000
    """Upper bound on |V| so confidence evaluation stays cheap."""

    smoothing_window: int = 5
    """w: width of the moving-average smoothing window (odd)."""

    epsilon: float = 0.01
    """Tolerance used by all three stopping patterns."""

    n_converged: int = 20
    """Iterations of stable confidence that trigger the converged stop."""

    n_high: int = 3
    """Iterations of near-absolute (>= 1 - epsilon) confidence that stop."""

    n_degrade: int = 15
    """Window size for the degrading-confidence comparison."""

    max_iterations: int = 150
    """Hard cap on active-learning iterations (budget safety net)."""


@dataclass(frozen=True)
class EstimatorConfig:
    """Accuracy-estimation parameters (Section 6)."""

    max_error_margin: float = 0.05
    """epsilon_max for the precision and recall estimates."""

    confidence: float = 0.95
    """Confidence level for the error margins (Eqs. 2-3)."""

    probe_size: int = 50
    """b: examples labelled per limited-sampling probe of C."""

    top_k_rules: int = 20
    """Candidate reduction rules considered per enumeration round."""

    max_probes: int = 200
    """Safety cap on probe rounds (each costs ``probe_size`` labels)."""

    removed_audit_cap: int = 30
    """Labels spent auditing each removed-region stratum (predicted
    positives / predicted negatives), so precision and recall transfer
    from the reduced set to all of C by measurement, not assumption."""


@dataclass(frozen=True)
class LocatorConfig:
    """Difficult-pairs locator parameters (Section 7)."""

    top_k_rules: int = 20
    """Precise positive and negative rules extracted (k each)."""

    min_rule_coverage: int = 5
    """Rules covering fewer candidate pairs than this are not even sent
    to crowd evaluation: certifying a 3-pair rule is statistically
    meaningless and such rules are usually overfit leaf artifacts."""

    min_difficult_pairs: int = 200
    """Stop iterating if fewer difficult pairs remain than this."""

    max_reduction_ratio: float = 0.9
    """Stop if |C'| >= this fraction of |C| (no significant reduction)."""


@dataclass(frozen=True)
class CrowdConfig:
    """Crowd-engagement parameters (Section 8)."""

    questions_per_hit: int = 10
    """Questions packed into one HIT."""

    price_per_question: float = 0.01
    """Dollars paid per answer to one question (1 cent default)."""

    strong_majority_gap: int = 3
    """Strong majority: majority minus minority answers must reach this."""

    strong_majority_max: int = 7
    """Strong majority: give up and take majority after this many answers."""

    max_platform_retries: int = 2
    """Transient platform failures (:class:`~repro.exceptions.CrowdError`
    from ``ask``) are retried this many times per question before the
    error propagates.  Budget exhaustion is never retried."""


@dataclass(frozen=True)
class GatewayConfig:
    """Resilient-gateway parameters (beyond the paper; see
    ``docs/robustness.md``).

    Tunes :class:`repro.crowd.gateway.ResilientCrowd`: how hard the
    labelling path retries transient platform failures before the
    circuit breaker declares the crowd unavailable.  All delays are in
    *simulated* seconds on the shared :class:`repro.crowd.latency.
    SimulatedClock`; nothing here ever sleeps on wall time.
    """

    max_attempts: int = 5
    """Total tries per question (first attempt + retries)."""

    base_delay_seconds: float = 30.0
    """Backoff delay before the first retry."""

    backoff_factor: float = 2.0
    """Multiplier applied to the backoff delay per further retry."""

    max_delay_seconds: float = 600.0
    """Cap on any single backoff delay."""

    jitter_fraction: float = 0.1
    """Fractional deterministic jitter applied to each delay."""

    question_timeout_seconds: float = 300.0
    """Simulated seconds charged when a question's answer never arrives."""

    failure_threshold: int = 5
    """Consecutive platform failures that open the circuit breaker."""

    cooldown_seconds: float = 3600.0
    """Simulated seconds the circuit stays open before half-open."""


@dataclass(frozen=True)
class PlanConfig:
    """Columnar plan compiler + spill settings (:mod:`repro.plan`).

    The plan engine compiles blocking rules and the feature library
    into a cheapest-first, predicate-pushdown execution plan and can
    back oversized matrices with memory-mapped spill files under the
    run directory — see "The plan compiler" in docs/architecture.md.
    Results are bit-identical with the plan engine on or off; only the
    work schedule and memory residency change.
    """

    enabled: bool = False
    """Run blocking/vectorization through the compiled plan engine."""

    spill_threshold_mb: float = 0.0
    """Matrices at least this many MiB spill to memory-mapped ``.npy``
    files under the run directory (0 disables spilling; spilling also
    requires a run directory to spill into)."""

    @property
    def spill_threshold_bytes(self) -> int:
        return int(self.spill_threshold_mb * 1024 * 1024)


@dataclass(frozen=True)
class CorleoneConfig:
    """Top-level configuration bundling every module's parameters."""

    forest: ForestConfig = field(default_factory=ForestConfig)
    blocker: BlockerConfig = field(default_factory=BlockerConfig)
    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    locator: LocatorConfig = field(default_factory=LocatorConfig)
    crowd: CrowdConfig = field(default_factory=CrowdConfig)
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    plan: PlanConfig = field(default_factory=PlanConfig)

    max_pipeline_iterations: int = 5
    """Cap on matcher->estimate->reduce rounds (paper needed 1-2)."""

    budget: float | None = None
    """Optional dollar cap for the whole run (None = unlimited)."""

    seed: int = 0
    """Root RNG seed; every stochastic component derives from it."""

    def __post_init__(self) -> None:
        _validate(self)

    def replace(self, **changes: object) -> "CorleoneConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


def _validate(cfg: CorleoneConfig) -> None:
    """Raise :class:`ConfigurationError` for out-of-range parameters."""
    checks: list[tuple[bool, str]] = [
        (cfg.forest.n_trees >= 1, "forest.n_trees must be >= 1"),
        (0 < cfg.forest.bagging_fraction <= 1.0,
         "forest.bagging_fraction must be in (0, 1]"),
        (cfg.forest.max_depth >= 1, "forest.max_depth must be >= 1"),
        (cfg.blocker.t_b >= 1, "blocker.t_b must be >= 1"),
        (cfg.blocker.sampling_strategy in ("uniform", "weighted"),
         "blocker.sampling_strategy must be uniform or weighted"),
        (cfg.blocker.top_k_rules >= 1, "blocker.top_k_rules must be >= 1"),
        (cfg.blocker.executor in ("streaming", "parallel", "sharded"),
         "blocker.executor must be streaming, parallel or sharded"),
        (cfg.blocker.n_workers >= 1, "blocker.n_workers must be >= 1"),
        (cfg.blocker.shard_size >= 0, "blocker.shard_size must be >= 0"),
        (0 < cfg.blocker.min_precision < 1,
         "blocker.min_precision must be in (0, 1)"),
        (0 < cfg.blocker.max_error_margin < 1,
         "blocker.max_error_margin must be in (0, 1)"),
        (0 < cfg.blocker.confidence < 1,
         "blocker.confidence must be in (0, 1)"),
        (cfg.matcher.batch_size >= 1, "matcher.batch_size must be >= 1"),
        (cfg.matcher.pool_size >= cfg.matcher.batch_size,
         "matcher.pool_size must be >= matcher.batch_size"),
        (cfg.matcher.selection_strategy in
         ("entropy_weighted", "top_entropy", "random"),
         "matcher.selection_strategy must be entropy_weighted, "
         "top_entropy or random"),
        (0 < cfg.matcher.monitor_fraction < 1,
         "matcher.monitor_fraction must be in (0, 1)"),
        (cfg.matcher.smoothing_window % 2 == 1,
         "matcher.smoothing_window must be odd"),
        (cfg.matcher.max_iterations >= 1,
         "matcher.max_iterations must be >= 1"),
        (0 < cfg.estimator.max_error_margin < 1,
         "estimator.max_error_margin must be in (0, 1)"),
        (cfg.estimator.probe_size >= 1, "estimator.probe_size must be >= 1"),
        (cfg.locator.min_difficult_pairs >= 0,
         "locator.min_difficult_pairs must be >= 0"),
        (0 < cfg.locator.max_reduction_ratio <= 1,
         "locator.max_reduction_ratio must be in (0, 1]"),
        (cfg.crowd.questions_per_hit >= 1,
         "crowd.questions_per_hit must be >= 1"),
        (cfg.crowd.price_per_question >= 0,
         "crowd.price_per_question must be >= 0"),
        (cfg.crowd.strong_majority_gap >= 1,
         "crowd.strong_majority_gap must be >= 1"),
        (cfg.crowd.strong_majority_max >= cfg.crowd.strong_majority_gap,
         "crowd.strong_majority_max must be >= strong_majority_gap"),
        (cfg.crowd.max_platform_retries >= 0,
         "crowd.max_platform_retries must be >= 0"),
        (cfg.gateway.max_attempts >= 1,
         "gateway.max_attempts must be >= 1"),
        (cfg.gateway.base_delay_seconds >= 0,
         "gateway.base_delay_seconds must be >= 0"),
        (cfg.gateway.backoff_factor >= 1.0,
         "gateway.backoff_factor must be >= 1"),
        (cfg.gateway.max_delay_seconds >= 0,
         "gateway.max_delay_seconds must be >= 0"),
        (0 <= cfg.gateway.jitter_fraction < 1,
         "gateway.jitter_fraction must be in [0, 1)"),
        (cfg.gateway.question_timeout_seconds >= 0,
         "gateway.question_timeout_seconds must be >= 0"),
        (cfg.gateway.failure_threshold >= 1,
         "gateway.failure_threshold must be >= 1"),
        (cfg.gateway.cooldown_seconds >= 0,
         "gateway.cooldown_seconds must be >= 0"),
        (cfg.plan.spill_threshold_mb >= 0,
         "plan.spill_threshold_mb must be >= 0"),
        (cfg.max_pipeline_iterations >= 1,
         "max_pipeline_iterations must be >= 1"),
        (cfg.budget is None or cfg.budget > 0, "budget must be positive"),
    ]
    for ok, message in checks:
        if not ok:
            raise ConfigurationError(message)


DEFAULT_CONFIG = CorleoneConfig()
"""A shared default configuration with the paper's parameter values."""


def scaled_config(t_b: int = 30_000, seed: int = 0,
                  **changes: object) -> CorleoneConfig:
    """Return a configuration scaled for laptop-sized experiments.

    The paper's t_B of three million pairs assumes tables with tens of
    thousands of rows; the synthetic datasets shipped with this repository
    default to a few hundred to a few thousand rows, so the blocking
    threshold is scaled down proportionally to keep the Blocker's
    trigger-and-sample logic on the same code path.
    """
    cfg = CorleoneConfig(
        blocker=BlockerConfig(t_b=t_b),
        seed=seed,
    )
    if changes:
        cfg = cfg.replace(**changes)
    return cfg
