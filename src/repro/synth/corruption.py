"""Controlled text corruption for synthetic record variants.

The generators derive table-B records from table-A records (or both from a
shared entity) by applying these perturbations; each is applied with a
per-dataset probability, which is how the three datasets get their
distinct difficulty levels.
"""

from __future__ import annotations

import string

import numpy as np

_LETTERS = string.ascii_lowercase


class Corruptor:
    """Seeded bundle of string perturbations."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def maybe(self, probability: float) -> bool:
        """True with the given probability."""
        return bool(self.rng.random() < probability)

    def typo(self, text: str) -> str:
        """One random character edit: swap, delete, insert or replace."""
        if len(text) < 2:
            return text
        kind = int(self.rng.integers(4))
        i = int(self.rng.integers(len(text) - 1))
        if kind == 0:  # adjacent swap
            return text[:i] + text[i + 1] + text[i] + text[i + 2:]
        if kind == 1:  # delete
            return text[:i] + text[i + 1:]
        letter = _LETTERS[int(self.rng.integers(len(_LETTERS)))]
        if kind == 2:  # insert
            return text[:i] + letter + text[i:]
        return text[:i] + letter + text[i + 1:]  # replace

    def typos(self, text: str, probability: float) -> str:
        """Apply one typo per word, each with the given probability."""
        words = text.split()
        out = [
            self.typo(word) if self.maybe(probability) else word
            for word in words
        ]
        return " ".join(out)

    def abbreviate_word(self, word: str) -> str:
        """'street' -> 'st.' style abbreviation: first letters + period."""
        if len(word) <= 3:
            return word
        keep = max(1, min(3, len(word) // 3))
        return word[:keep] + "."

    def initial(self, word: str) -> str:
        """'michael' -> 'm.'"""
        return (word[0] + ".") if word else word

    def drop_tokens(self, text: str, probability: float) -> str:
        """Drop each token with the given probability (keep at least one)."""
        words = text.split()
        if len(words) <= 1:
            return text
        kept = [word for word in words if not self.maybe(probability)]
        if not kept:
            kept = [words[int(self.rng.integers(len(words)))]]
        return " ".join(kept)

    def truncate_tokens(self, text: str, max_tokens: int) -> str:
        """Keep only the first ``max_tokens`` tokens."""
        words = text.split()
        return " ".join(words[:max_tokens])

    def shuffle_tokens(self, text: str) -> str:
        """Randomly reorder the tokens."""
        words = text.split()
        self.rng.shuffle(words)
        return " ".join(words)

    def perturb_number(self, value: float, relative_sigma: float) -> float:
        """Multiplicative Gaussian noise, never flipping the sign."""
        noisy = value * (1.0 + self.rng.normal(0.0, relative_sigma))
        return abs(noisy) if value >= 0 else -abs(noisy)

    def choice(self, options: list[str]) -> str:
        """Uniform pick from a non-empty list."""
        return options[int(self.rng.integers(len(options)))]
