"""The Citations dataset: the medium EM task (DBLP/Google-Scholar stand-in).

Table A (DBLP) holds clean bibliography records; table B (Scholar) holds
noisy scraped copies — typoed or truncated titles, authors reduced to
initials or "et al", venue strings drawn from wildly different variants,
missing or off-by-one years.  As in the real dataset, one DBLP record can
match *several* Scholar records (duplicate scrapes), which is why the
paper's match count (5347) exceeds |A| fraction-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import Pair
from ..data.table import AttrType, Record, Schema, Table
from ..exceptions import DataError
from .base import SyntheticDataset
from .corruption import Corruptor
from . import vocab

CITATION_SCHEMA = Schema.from_pairs([
    ("title", AttrType.TEXT),
    ("authors", AttrType.TEXT),
    ("venue", AttrType.STRING),
    ("year", AttrType.NUMERIC),
])

INSTRUCTION = (
    "These records are bibliography entries from two digital libraries. "
    "Two records match if they refer to the same publication, even when "
    "titles are truncated or author names abbreviated."
)


@dataclass
class _Paper:
    title: str
    authors: list[tuple[str, str]]  # (first, last)
    venue: str                      # canonical venue key
    year: int


def _make_paper(corruptor: Corruptor,
                base_title: str | None = None) -> _Paper:
    rng = corruptor.rng
    if base_title is None:
        n_words = int(rng.integers(4, 11))
        words = [
            corruptor.choice(list(vocab.CS_TITLE_WORDS))
            for _ in range(n_words)
        ]
        title = " ".join(words)
    else:
        # A "same series" sibling: share most words, change a couple —
        # these are the dataset's hard negatives.
        words = base_title.split()
        for _ in range(max(1, len(words) // 4)):
            words[int(rng.integers(len(words)))] = corruptor.choice(
                list(vocab.CS_TITLE_WORDS)
            )
        title = " ".join(words)
    n_authors = int(rng.integers(1, 5))
    authors = [
        (corruptor.choice(list(vocab.FIRST_NAMES)),
         corruptor.choice(list(vocab.LAST_NAMES)))
        for _ in range(n_authors)
    ]
    return _Paper(
        title=title,
        authors=authors,
        venue=corruptor.choice(list(vocab.VENUES)),
        year=int(rng.integers(1985, 2014)),
    )


def _dblp_record(paper: _Paper, record_id: str) -> Record:
    authors = ", ".join(f"{first} {last}" for first, last in paper.authors)
    return Record(record_id, {
        "title": paper.title,
        "authors": authors,
        "venue": vocab.VENUES[paper.venue][0],
        "year": float(paper.year),
    })


def _scholar_record(paper: _Paper, record_id: str,
                    corruptor: Corruptor) -> Record:
    title = corruptor.typos(paper.title, 0.08)
    if corruptor.maybe(0.15):
        title = corruptor.truncate_tokens(
            title, max(3, len(title.split()) - 2)
        )

    names = []
    for first, last in paper.authors:
        if corruptor.maybe(0.6):
            names.append(f"{corruptor.initial(first)} {last}")
        else:
            names.append(f"{first} {last}")
    if len(names) > 2 and corruptor.maybe(0.2):
        authors = f"{names[0]} et al"
    else:
        authors = ", ".join(names)

    venue: str | None = corruptor.choice(list(vocab.VENUES[paper.venue]))
    if corruptor.maybe(0.15):
        venue = None

    year: float | None = float(paper.year)
    if corruptor.maybe(0.2):
        year = None
    elif corruptor.maybe(0.05):
        year = float(paper.year + int(corruptor.rng.integers(-1, 2)))

    return Record(record_id, {
        "title": title,
        "authors": authors,
        "venue": venue,
        "year": year,
    })


def generate_citations(n_a: int = 2616, n_b: int = 64263,
                       n_matches: int = 5347,
                       seed: int = 0) -> SyntheticDataset:
    """Generate the citations EM task (paper sizes by default).

    ``n_matches`` may exceed the number of matched DBLP papers: each
    matched paper receives one or more Scholar copies until the match
    count is reached, so the many-to-one structure of the real dataset is
    preserved.
    """
    if n_matches < 4:
        raise DataError("need at least 4 matches to supply seed examples")
    if n_matches > n_b:
        raise DataError("n_matches cannot exceed the Scholar table size")
    rng = np.random.default_rng(seed)
    corruptor = Corruptor(rng)

    # Decide how many DBLP papers have Scholar copies: each gets 1-3.
    if n_matches > 3 * n_a:
        raise DataError(
            "n_matches too large for n_a (each DBLP paper gets <= 3 copies)"
        )
    copies: list[int] = []
    remaining = n_matches
    while remaining > 0 and len(copies) < n_a:
        c = min(int(rng.integers(1, 4)), remaining)
        copies.append(c)
        remaining -= c
    # If the random draw ran out of papers, top up existing allocations.
    slot = 0
    while remaining > 0:
        if copies[slot] < 3:
            copies[slot] += 1
            remaining -= 1
        slot = (slot + 1) % len(copies)
    n_matched_papers = len(copies)

    papers: list[_Paper] = []
    for _ in range(n_a):
        if papers and corruptor.maybe(0.15):
            base = papers[int(rng.integers(len(papers)))]
            papers.append(_make_paper(corruptor, base_title=base.title))
        else:
            papers.append(_make_paper(corruptor))

    table_a = Table("dblp", CITATION_SCHEMA)
    table_b = Table("scholar", CITATION_SCHEMA)
    matches: set[Pair] = set()

    matched_indices = rng.choice(n_a, size=n_matched_papers, replace=False)
    b_counter = 0
    for a_index in range(n_a):
        a_id = f"a{a_index}"
        table_a.add(_dblp_record(papers[a_index], a_id))
    for slot, a_index in enumerate(matched_indices):
        for _ in range(copies[slot]):
            b_id = f"b{b_counter}"
            b_counter += 1
            table_b.add(_scholar_record(papers[int(a_index)], b_id, corruptor))
            matches.add(Pair(f"a{int(a_index)}", b_id))

    # Unmatched Scholar records: fresh papers (some sharing title families
    # with existing ones to act as hard negatives).
    while b_counter < n_b:
        if corruptor.maybe(0.15):
            base = papers[int(rng.integers(len(papers)))]
            paper = _make_paper(corruptor, base_title=base.title)
        else:
            paper = _make_paper(corruptor)
        table_b.add(_scholar_record(paper, f"b{b_counter}", corruptor))
        b_counter += 1

    match_list = sorted(matches)
    seed_positive = (match_list[0], match_list[1])
    seed_negative = _seed_negatives(match_list, matches)
    return SyntheticDataset(
        name="citations",
        table_a=table_a,
        table_b=table_b,
        matches=frozenset(matches),
        seed_positive=seed_positive,
        seed_negative=seed_negative,
        instruction=INSTRUCTION,
    )


def _seed_negatives(match_list: list[Pair],
                    matches: set[Pair]) -> tuple[Pair, Pair]:
    """Two cross-combinations guaranteed not to be gold matches."""
    candidates = []
    for pair_x in match_list[:10]:
        for pair_y in match_list[:10]:
            crossed = Pair(pair_x.a_id, pair_y.b_id)
            if crossed not in matches:
                candidates.append(crossed)
            if len(candidates) == 2:
                return (candidates[0], candidates[1])
    raise DataError("could not derive seed negatives")
