"""The Products dataset: the hard EM task (Amazon/Walmart stand-in).

Electronics products come in *families*: the same brand and product line
in several capacities/speeds/pack sizes, each with its own model number
(the paper's Figure 4 shows exactly such a near-miss: a 4GB vs a 12GB
Kingston HyperX kit).  Family siblings share most name tokens, so surface
similarity is a weak signal; correct matching must rely on model numbers,
capacities and prices — which the B side then degrades (reformatted or
missing model numbers, discounted prices).  This makes Products the
hardest of the three tasks, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import Pair
from ..data.table import AttrType, Record, Schema, Table
from ..exceptions import DataError
from .base import SyntheticDataset
from .corruption import Corruptor
from . import vocab

PRODUCT_SCHEMA = Schema.from_pairs([
    ("brand", AttrType.STRING),
    ("name", AttrType.TEXT),
    ("model_no", AttrType.STRING),
    ("price", AttrType.NUMERIC),
    ("description", AttrType.TEXT),
])

INSTRUCTION = (
    "These records describe electronics products sold in two stores. Two "
    "records match only if they are the exact same product (same model "
    "and same size/capacity), not merely the same product line."
)


@dataclass
class _Variant:
    brand: str
    line: str
    noun: str
    adjective: str
    capacity: int
    speed: int
    pack: int
    color: str
    model: str
    price: float


def _model_number(brand: str, line: str, speed: int, capacity: int,
                  pack: int, rng: np.random.Generator) -> str:
    prefix = (brand[:1] + line[:2]).upper()
    return (
        f"{prefix}{speed}C{int(rng.integers(7, 12))}"
        f"K{pack}/{capacity}G"
    )


def _make_family(corruptor: Corruptor) -> list[_Variant]:
    """A product family: 1-4 sibling variants differing in capacity/pack."""
    rng = corruptor.rng
    brand = corruptor.choice(list(vocab.PRODUCT_BRANDS))
    line = corruptor.choice(list(vocab.PRODUCT_LINES))
    noun = corruptor.choice(list(vocab.PRODUCT_NOUNS))
    adjective = corruptor.choice(list(vocab.PRODUCT_ADJECTIVES))
    speed = int(corruptor.choice([str(s) for s in vocab.SPEEDS_MHZ]))
    base_price = float(rng.uniform(15, 400))

    n_variants = int(rng.integers(1, 5))
    capacity_pool = list(vocab.CAPACITIES_GB)
    rng.shuffle(capacity_pool)
    variants = []
    for capacity in capacity_pool[:n_variants]:
        pack = int(corruptor.choice(["1", "2", "3"]))
        variants.append(_Variant(
            brand=brand,
            line=line,
            noun=noun,
            adjective=adjective,
            capacity=int(capacity),
            speed=speed,
            pack=pack,
            color=corruptor.choice(list(vocab.COLORS)),
            model=_model_number(brand, line, speed, int(capacity), pack, rng),
            price=round(base_price * (0.5 + 0.15 * int(capacity) ** 0.7), 2),
        ))
    return variants


def _a_record(variant: _Variant, record_id: str) -> Record:
    per_unit = variant.capacity // variant.pack or variant.capacity
    name = (
        f"{variant.brand} {variant.line} {variant.capacity}GB kit "
        f"{variant.pack} x {per_unit}GB {variant.adjective} {variant.noun}"
    )
    description = (
        f"{variant.capacity} GB total, {variant.pack} x {per_unit} GB "
        f"modules at {variant.speed} MHz, {variant.color}, "
        f"{variant.adjective} {variant.noun} by {variant.brand}"
    )
    return Record(record_id, {
        "brand": variant.brand,
        "name": name,
        "model_no": variant.model,
        "price": variant.price,
        "description": description,
    })


def _b_record(variant: _Variant, record_id: str,
              corruptor: Corruptor) -> Record:
    """The other store's listing of the same product."""
    per_unit = variant.capacity // variant.pack or variant.capacity
    name = (
        f"{variant.brand} {variant.capacity}GB {variant.line} "
        f"{variant.noun} {variant.speed}MHz"
    )
    name = corruptor.typos(name, 0.04)
    model: str | None = variant.model
    if corruptor.maybe(0.25):
        model = None
    elif corruptor.maybe(0.3):
        model = variant.model.replace("/", "-").lower()
    price = round(corruptor.perturb_number(variant.price, 0.08), 2)
    description = (
        f"{variant.adjective} {variant.noun}, {variant.pack}x{per_unit}GB, "
        f"{variant.color}"
    )
    if corruptor.maybe(0.2):
        description = corruptor.drop_tokens(description, 0.3)
    return Record(record_id, {
        "brand": variant.brand,
        "name": name,
        "model_no": model,
        "price": price,
        "description": description,
    })


def generate_products(n_a: int = 2554, n_b: int = 22074,
                      n_matches: int = 1154,
                      seed: int = 0) -> SyntheticDataset:
    """Generate the products EM task (paper sizes by default)."""
    if n_matches < 4:
        raise DataError("need at least 4 matches to supply seed examples")
    if n_matches > min(n_a, n_b):
        raise DataError("n_matches cannot exceed the smaller table size")
    rng = np.random.default_rng(seed)
    corruptor = Corruptor(rng)

    # Generate variants until both tables can be filled.  Every variant is
    # a distinct entity; siblings inside a family are hard negatives.
    n_entities = n_a + n_b - n_matches
    variants: list[_Variant] = []
    while len(variants) < n_entities:
        variants.extend(_make_family(corruptor))
    variants = variants[:n_entities]

    order = rng.permutation(n_entities)
    shared = [variants[i] for i in order[:n_matches]]
    only_a = [variants[i] for i in order[n_matches:n_a]]
    only_b = [variants[i] for i in order[n_a:]]

    table_a = Table("amazon", PRODUCT_SCHEMA)
    table_b = Table("walmart", PRODUCT_SCHEMA)
    matches: set[Pair] = set()

    for i, variant in enumerate(shared):
        a_id, b_id = f"a{i}", f"b{i}"
        table_a.add(_a_record(variant, a_id))
        table_b.add(_b_record(variant, b_id, corruptor))
        matches.add(Pair(a_id, b_id))
    for j, variant in enumerate(only_a):
        table_a.add(_a_record(variant, f"a{n_matches + j}"))
    for j, variant in enumerate(only_b):
        table_b.add(_b_record(variant, f"b{n_matches + j}", corruptor))

    match_list = sorted(matches)
    seed_positive = (match_list[0], match_list[1])
    seed_negative = (
        Pair(match_list[0].a_id, match_list[1].b_id),
        Pair(match_list[1].a_id, match_list[0].b_id),
    )
    return SyntheticDataset(
        name="products",
        table_a=table_a,
        table_b=table_b,
        matches=frozenset(matches),
        seed_positive=seed_positive,
        seed_negative=seed_negative,
        instruction=INSTRUCTION,
    )
