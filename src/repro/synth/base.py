"""Common structure for synthetic datasets."""

from __future__ import annotations

from dataclasses import dataclass

from ..data.pairs import Pair
from ..data.table import Table
from ..exceptions import DataError


@dataclass(frozen=True)
class DatasetStats:
    """The Table 1 row for a dataset."""

    name: str
    size_a: int
    size_b: int
    n_matches: int

    @property
    def cartesian(self) -> int:
        return self.size_a * self.size_b

    @property
    def positive_density(self) -> float:
        return self.n_matches / self.cartesian if self.cartesian else 0.0


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated EM task: two tables, gold matches, and user inputs.

    ``seed_positive`` / ``seed_negative`` are the paper's four illustrating
    examples the user supplies (two matching pairs, two non-matching).
    ``instruction`` is the short textual instruction shown to the crowd.
    """

    name: str
    table_a: Table
    table_b: Table
    matches: frozenset[Pair]
    seed_positive: tuple[Pair, Pair]
    seed_negative: tuple[Pair, Pair]
    instruction: str = ""

    def __post_init__(self) -> None:
        for pair in self.matches:
            if pair.a_id not in self.table_a or pair.b_id not in self.table_b:
                raise DataError(f"gold match {pair} references unknown records")
        for pair in self.seed_positive:
            if pair not in self.matches:
                raise DataError(f"seed positive {pair} is not a gold match")
        for pair in self.seed_negative:
            if pair in self.matches:
                raise DataError(f"seed negative {pair} is a gold match")

    @property
    def seed_pairs(self) -> tuple[Pair, ...]:
        """All four user-supplied examples."""
        return self.seed_positive + self.seed_negative

    @property
    def seed_labels(self) -> dict[Pair, bool]:
        """The seed examples with their (trusted) labels."""
        labels = {pair: True for pair in self.seed_positive}
        labels.update({pair: False for pair in self.seed_negative})
        return labels

    def stats(self) -> DatasetStats:
        """The dataset's Table 1 row."""
        return DatasetStats(
            name=self.name,
            size_a=len(self.table_a),
            size_b=len(self.table_b),
            n_matches=len(self.matches),
        )

    def is_match(self, pair: Pair) -> bool:
        """Ground-truth membership test (evaluation only)."""
        return Pair(*pair) in self.matches
