"""The Restaurants dataset: the easy EM task (Fodors/Zagat stand-in).

Two listings of the same restaurant differ in formatting (street-suffix
abbreviation, phone punctuation) and light typos; the main hard negatives
are chain restaurants — same name and cuisine, different address/phone —
mirroring what makes the real Fodors/Zagat task interesting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import Pair
from ..data.table import AttrType, Record, Schema, Table
from ..exceptions import DataError
from .base import SyntheticDataset
from .corruption import Corruptor
from . import vocab

RESTAURANT_SCHEMA = Schema.from_pairs([
    ("name", AttrType.STRING),
    ("addr", AttrType.STRING),
    ("city", AttrType.STRING),
    ("phone", AttrType.STRING),
    ("cuisine", AttrType.STRING),
])

INSTRUCTION = (
    "These records describe restaurants from two city guides. Two records "
    "match if they refer to the same restaurant location (same name and "
    "same address), even if formatting differs."
)


@dataclass
class _Entity:
    name: str
    street_number: int
    street: str
    suffix: str
    city: str
    phone: tuple[int, int, int]
    cuisine: str


def _make_entity(corruptor: Corruptor, chain_name: str | None = None) -> _Entity:
    rng = corruptor.rng
    if chain_name is None:
        name = " ".join([
            corruptor.choice(list(vocab.RESTAURANT_NAME_WORDS)),
            corruptor.choice(list(vocab.RESTAURANT_NAME_WORDS)),
            corruptor.choice(list(vocab.RESTAURANT_NAME_SUFFIXES)),
        ])
    else:
        name = chain_name
    return _Entity(
        name=name,
        street_number=int(rng.integers(1, 9900)),
        street=corruptor.choice(list(vocab.STREET_NAMES)),
        suffix=corruptor.choice(list(vocab.STREET_SUFFIXES)),
        city=corruptor.choice(list(vocab.CITIES)),
        phone=(int(rng.integers(200, 989)), int(rng.integers(200, 989)),
               int(rng.integers(1000, 9999))),
        cuisine=corruptor.choice(list(vocab.CUISINES)),
    )


def _a_record(entity: _Entity, record_id: str) -> Record:
    area, mid, last = entity.phone
    return Record(record_id, {
        "name": entity.name,
        "addr": f"{entity.street_number} {entity.street} {entity.suffix}",
        "city": entity.city,
        "phone": f"{area}-{mid}-{last}",
        "cuisine": entity.cuisine,
    })


def _b_record(entity: _Entity, record_id: str,
              corruptor: Corruptor) -> Record:
    """A perturbed second listing of the same restaurant."""
    area, mid, last = entity.phone
    suffix = entity.suffix
    if corruptor.maybe(0.7):
        suffix = vocab.STREET_ABBREV.get(suffix, suffix)
    name = corruptor.typos(entity.name, 0.06)
    addr = corruptor.typos(
        f"{entity.street_number} {entity.street} {suffix}", 0.04
    )
    phone: str | None = f"{area}/{mid}-{last}"
    if corruptor.maybe(0.05):
        phone = None
    cuisine = vocab.CUISINE_SYNONYMS.get(entity.cuisine, entity.cuisine)
    if corruptor.maybe(0.5):
        cuisine = entity.cuisine
    return Record(record_id, {
        "name": name,
        "addr": addr,
        "city": entity.city,
        "phone": phone,
        "cuisine": cuisine,
    })


def generate_restaurants(n_a: int = 533, n_b: int = 331,
                         n_matches: int = 112,
                         seed: int = 0) -> SyntheticDataset:
    """Generate the restaurants EM task (paper sizes by default)."""
    if n_matches > min(n_a, n_b):
        raise DataError("n_matches cannot exceed the smaller table size")
    if n_matches < 4:
        raise DataError("need at least 4 matches to supply seed examples")
    rng = np.random.default_rng(seed)
    corruptor = Corruptor(rng)

    n_entities = n_a + n_b - n_matches
    entities: list[_Entity] = []
    # ~12% of entities are chain locations: groups of 2-3 sharing a name
    # and cuisine but with distinct addresses/phones (hard negatives).
    while len(entities) < n_entities:
        if corruptor.maybe(0.12) and n_entities - len(entities) >= 2:
            chain = _make_entity(corruptor)
            entities.append(chain)
            branches = min(int(rng.integers(1, 3)),
                           n_entities - len(entities))
            for _ in range(branches):
                branch = _make_entity(corruptor, chain_name=chain.name)
                branch.cuisine = chain.cuisine
                entities.append(branch)
        else:
            entities.append(_make_entity(corruptor))

    # Entities [0, n_matches) appear in both tables; the next n_a-n_matches
    # only in A; the rest only in B.  Shuffle so chains spread across roles.
    order = rng.permutation(n_entities)
    shared = [entities[i] for i in order[:n_matches]]
    only_a = [entities[i] for i in order[n_matches:n_a]]
    only_b = [entities[i] for i in order[n_a:]]

    table_a = Table("fodors", RESTAURANT_SCHEMA)
    table_b = Table("zagat", RESTAURANT_SCHEMA)
    matches: set[Pair] = set()

    for i, entity in enumerate(shared):
        a_id, b_id = f"a{i}", f"b{i}"
        table_a.add(_a_record(entity, a_id))
        table_b.add(_b_record(entity, b_id, corruptor))
        matches.add(Pair(a_id, b_id))
    for j, entity in enumerate(only_a):
        table_a.add(_a_record(entity, f"a{n_matches + j}"))
    for j, entity in enumerate(only_b):
        table_b.add(_b_record(entity, f"b{n_matches + j}", corruptor))

    match_list = sorted(matches)
    seed_positive = (match_list[0], match_list[1])
    seed_negative = (
        Pair(match_list[0].a_id, match_list[1].b_id),
        Pair(match_list[1].a_id, match_list[0].b_id),
    )
    return SyntheticDataset(
        name="restaurants",
        table_a=table_a,
        table_b=table_b,
        matches=frozenset(matches),
        seed_positive=seed_positive,
        seed_negative=seed_negative,
        instruction=INSTRUCTION,
    )
