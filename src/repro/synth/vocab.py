"""Vocabularies for the synthetic dataset generators.

Plain word pools; the generators combine them with seeded RNGs.  Sizes are
chosen so that token collisions between unrelated entities happen at a
realistic rate (which is what makes matching nontrivial).
"""

from __future__ import annotations

RESTAURANT_NAME_WORDS = (
    "golden lotus jade dragon palace garden villa bella roma casa luna "
    "blue ocean harbor bay sunset pacific grand royal imperial crown "
    "little saigon bangkok tokyo kyoto osaka shanghai peking canton "
    "olive cypress maple willow cedar magnolia rose tulip orchid ivy "
    "fiesta cantina hacienda pueblo mesa adobe rio verde sol azteca "
    "chez maison bistro brasserie petit grande nouveau vieux bon beau "
    "spice saffron pepper basil thyme sage clove ginger sesame lotus "
    "union station corner district avenue park plaza market square"
).split()

RESTAURANT_NAME_SUFFIXES = (
    "cafe grill kitchen house diner tavern eatery restaurant bar "
    "trattoria pizzeria cantina brasserie steakhouse chophouse deli "
    "noodle oyster curry bbq"
).split()

STREET_NAMES = (
    "main oak pine elm maple cedar walnut chestnut spruce birch "
    "washington lincoln jefferson madison monroe jackson franklin "
    "sunset ocean bay harbor lake river hill valley ridge park "
    "first second third fourth fifth sixth seventh eighth ninth tenth "
    "market mission castro geary divisadero fillmore valencia folsom "
    "broadway spring grand olive figueroa vermont western normandie"
).split()

STREET_SUFFIXES = ("street avenue boulevard road drive lane way place "
                   "court circle").split()

STREET_ABBREV = {
    "street": "st.", "avenue": "ave.", "boulevard": "blvd.",
    "road": "rd.", "drive": "dr.", "lane": "ln.", "way": "wy.",
    "place": "pl.", "court": "ct.", "circle": "cir.",
}

CITIES = (
    "san francisco|los angeles|new york|chicago|atlanta|boston|seattle|"
    "portland|austin|denver|miami|dallas|houston|phoenix|philadelphia|"
    "san diego|san jose|oakland|berkeley|pasadena|santa monica|brooklyn"
).split("|")

CUISINES = (
    "american|italian|french|chinese|japanese|thai|mexican|indian|"
    "mediterranean|greek|spanish|korean|vietnamese|cajun|seafood|"
    "steakhouses|pizza|delis|coffee shops|hamburgers|health food|bbq"
).split("|")

CUISINE_SYNONYMS = {
    "american": "american (new)",
    "italian": "italian (traditional)",
    "french": "french (classic)",
    "bbq": "barbecue",
    "coffee shops": "coffeehouses",
    "hamburgers": "burgers",
    "steakhouses": "steak houses",
    "delis": "delicatessen",
}

CS_TITLE_WORDS = (
    "efficient scalable parallel distributed adaptive incremental "
    "approximate optimal robust dynamic static probabilistic declarative "
    "query processing optimization indexing caching storage transaction "
    "concurrency recovery replication partitioning clustering sampling "
    "learning mining matching ranking retrieval extraction integration "
    "cleaning deduplication entity schema record linkage resolution "
    "database stream graph spatial temporal relational semistructured "
    "xml web semantic crowdsourcing privacy security provenance workflow "
    "join aggregation selection projection materialized view cube "
    "algorithm framework system architecture model language approach "
    "technique analysis evaluation benchmark survey study networks "
    "memory disk cache buffer index tree hash bitmap column compression"
).split()

FIRST_NAMES = (
    "james john robert michael william david richard joseph thomas "
    "charles christopher daniel matthew anthony mark donald steven paul "
    "andrew joshua mary patricia jennifer linda elizabeth barbara susan "
    "jessica sarah karen nancy lisa betty margaret sandra ashley wei "
    "ming hua jun feng anil rajeev sanjay priya ahmed fatima carlos "
    "maria jose luis anna elena ivan dmitri yuki hiroshi kenji akira"
).split()

LAST_NAMES = (
    "smith johnson williams brown jones garcia miller davis rodriguez "
    "martinez hernandez lopez gonzalez wilson anderson thomas taylor "
    "moore jackson martin lee perez thompson white harris sanchez clark "
    "ramirez lewis robinson walker young allen king wright scott torres "
    "nguyen hill flores green adams nelson baker hall rivera campbell "
    "mitchell carter roberts chen wang li zhang liu yang huang zhao wu "
    "zhou xu sun ma zhu hu guo lin he gao kumar patel sharma singh gupta"
).split()

VENUES = {
    # canonical: (variants...)
    "sigmod": ("sigmod conference", "acm sigmod",
               "proceedings of the acm sigmod international conference "
               "on management of data", "sigmod"),
    "vldb": ("vldb", "very large data bases",
             "proceedings of the international conference on very large "
             "data bases", "pvldb"),
    "icde": ("icde", "international conference on data engineering",
             "proceedings of icde", "ieee icde"),
    "kdd": ("kdd", "sigkdd", "acm sigkdd international conference on "
            "knowledge discovery and data mining", "proceedings of kdd"),
    "cikm": ("cikm", "conference on information and knowledge management",
             "acm cikm"),
    "www": ("www", "world wide web conference", "the web conference"),
    "icml": ("icml", "international conference on machine learning"),
    "nips": ("nips", "neural information processing systems", "neurips"),
    "edbt": ("edbt", "international conference on extending database "
             "technology"),
    "tods": ("tods", "acm transactions on database systems"),
    "tkde": ("tkde", "ieee transactions on knowledge and data engineering"),
    "jacm": ("jacm", "journal of the acm"),
}

PRODUCT_BRANDS = (
    "kingston corsair sandisk samsung toshiba seagate logitech sony "
    "panasonic canon nikon garmin netgear linksys belkin asus acer dell "
    "lenovo toshiba lg sharp vizio philips jvc pioneer kenwood alpine "
    "plantronics jabra anker aukey tplink dlink"
).split()

PRODUCT_LINES = (
    "hyperx fury vengeance dominator elite pro ultra max plus prime "
    "classic sport touring premium essential advance extreme turbo "
    "silverline blackline edge core flex nano micro mega quantum"
).split()

PRODUCT_NOUNS = (
    "memory|ram kit|ssd|hard drive|flash drive|memory card|router|"
    "wireless router|webcam|headset|keyboard|mouse|monitor|speaker|"
    "soundbar|camcorder|camera|lens|gps navigator|network switch|"
    "usb hub|power adapter|docking station|external drive"
).split("|")

PRODUCT_ADJECTIVES = (
    "wireless portable compact slim rugged waterproof gaming wired "
    "bluetooth rechargeable ergonomic backlit mechanical optical hd "
    "full-hd 4k dual-band gigabit high-speed low-profile"
).split()

CAPACITIES_GB = (1, 2, 4, 8, 12, 16, 32, 64, 128, 256)

SPEEDS_MHZ = (1066, 1333, 1600, 1800, 1866, 2133, 2400)

COLORS = "black white silver blue red gray".split()
