"""Dataset registry: load any of the three tasks at paper or bench scale.

``load_dataset(name)`` defaults to *bench scale* — sizes reduced ~10x so a
full Corleone run per dataset finishes in seconds on a laptop while
preserving the paper's size ratios and positive densities.  Pass
``scale="paper"`` for the original Table 1 sizes.
"""

from __future__ import annotations

from collections.abc import Callable

from ..exceptions import DataError
from .base import SyntheticDataset
from .citations import generate_citations
from .products import generate_products
from .restaurants import generate_restaurants
from .songs import generate_songs

DATASET_NAMES = ("restaurants", "citations", "products", "songs")
"""The paper's three datasets plus the extra songs task (not in Table 1)."""

PAPER_SCALE: dict[str, tuple[int, int, int]] = {
    # (|A|, |B|, # matches) exactly as in Table 1.
    "restaurants": (533, 331, 112),
    "citations": (2616, 64263, 5347),
    "products": (2554, 22074, 1154),
    # Songs is not a paper dataset; its "paper" scale is just a larger run.
    "songs": (3000, 20000, 1800),
}

BENCH_SCALE: dict[str, tuple[int, int, int]] = {
    # Reduced sizes with the same ratios/densities; a full pipeline run
    # per dataset stays laptop-fast.  Restaurants keeps its paper size
    # (it is already tiny and must stay below the blocking threshold).
    "restaurants": (160, 100, 36),
    "citations": (260, 2600, 530),
    "products": (250, 2200, 115),
    "songs": (300, 2000, 180),
}

_GENERATORS: dict[str, Callable[..., SyntheticDataset]] = {
    "restaurants": generate_restaurants,
    "citations": generate_citations,
    "products": generate_products,
    "songs": generate_songs,
}


def load_dataset(name: str, scale: str = "bench",
                 seed: int = 0) -> SyntheticDataset:
    """Load a named dataset at ``scale`` ("bench" or "paper")."""
    if name not in _GENERATORS:
        raise DataError(
            f"unknown dataset {name!r}; choose from {DATASET_NAMES}"
        )
    if scale == "paper":
        sizes = PAPER_SCALE[name]
    elif scale == "bench":
        sizes = BENCH_SCALE[name]
    else:
        raise DataError(f"unknown scale {scale!r}; use 'bench' or 'paper'")
    n_a, n_b, n_matches = sizes
    return _GENERATORS[name](n_a=n_a, n_b=n_b, n_matches=n_matches,
                             seed=seed)
