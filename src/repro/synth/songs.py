"""A fourth EM task: music tracks (a Million-Song-style stand-in).

Not one of the paper's three datasets, but the other workload every EM
benchmark suite carries (Magellan ships Songs; iTunes-Amazon is a
standard hard task).  Included to demonstrate that nothing in the
pipeline is specialized to the paper's schemas — the multitask example
mixes it with the paper's categories.

Difficulty drivers mirror the real thing: featured-artist suffixes,
"(Remastered)" / "(Radio Edit)" decorations, and *live versions* as hard
negatives — same artist and title tokens, different recording (longer
duration, later year), which by catalog convention is a distinct track.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import Pair
from ..data.table import AttrType, Record, Schema, Table
from ..exceptions import DataError
from .base import SyntheticDataset
from .corruption import Corruptor
from . import vocab

SONG_SCHEMA = Schema.from_pairs([
    ("artist", AttrType.STRING),
    ("title", AttrType.STRING),
    ("album", AttrType.STRING),
    ("year", AttrType.NUMERIC),
    ("duration", AttrType.NUMERIC),
])

INSTRUCTION = (
    "These records describe music tracks from two catalogs. Two records "
    "match only if they are the same recording — a live or remastered "
    "version of the same song is a different track."
)

_TITLE_WORDS = (
    "midnight summer golden broken electric silent crimson velvet "
    "burning frozen distant hollow wild silver neon fading rising "
    "heart dream road river fire rain shadow light thunder echo "
    "night city ocean desert mountain wire glass stone mirror"
).split()

_DECORATIONS = ("", "", "", " (Remastered)", " (Radio Edit)",
                " (Album Version)")


@dataclass
class _Track:
    artist: str
    title: str
    album: str
    year: int
    duration: float
    live: bool = False


def _make_artist(corruptor: Corruptor) -> str:
    rng = corruptor.rng
    if corruptor.maybe(0.5):
        return (f"{corruptor.choice(list(vocab.FIRST_NAMES))} "
                f"{corruptor.choice(list(vocab.LAST_NAMES))}")
    return (f"the {corruptor.choice(_TITLE_WORDS)} "
            f"{corruptor.choice(list(vocab.LAST_NAMES))}s")


def _make_track(corruptor: Corruptor, artist: str | None = None) -> _Track:
    rng = corruptor.rng
    artist = artist if artist is not None else _make_artist(corruptor)
    title = " ".join(
        corruptor.choice(_TITLE_WORDS)
        for _ in range(int(rng.integers(1, 4)))
    )
    album = " ".join(
        corruptor.choice(_TITLE_WORDS)
        for _ in range(int(rng.integers(1, 3)))
    )
    return _Track(
        artist=artist,
        title=title,
        album=album,
        year=int(rng.integers(1965, 2014)),
        duration=round(float(rng.uniform(120, 420)), 1),
    )


def _live_version(track: _Track, corruptor: Corruptor) -> _Track:
    """A hard negative: the same song performed live."""
    rng = corruptor.rng
    return _Track(
        artist=track.artist,
        title=f"{track.title} (Live)",
        album=f"live at the {corruptor.choice(_TITLE_WORDS)} arena",
        year=min(2013, track.year + int(rng.integers(1, 10))),
        duration=round(track.duration * float(rng.uniform(1.05, 1.4)), 1),
        live=True,
    )


def _a_record(track: _Track, record_id: str) -> Record:
    return Record(record_id, {
        "artist": track.artist,
        "title": track.title,
        "album": track.album,
        "year": float(track.year),
        "duration": track.duration,
    })


def _b_record(track: _Track, record_id: str,
              corruptor: Corruptor) -> Record:
    """The other catalog's listing of the same recording."""
    title = track.title + corruptor.choice(list(_DECORATIONS))
    artist = track.artist
    if corruptor.maybe(0.15):
        artist = f"{artist} feat. {corruptor.choice(list(vocab.FIRST_NAMES))}"
    if corruptor.maybe(0.05):
        title = corruptor.typos(title, 0.2)
    album: str | None = track.album
    if corruptor.maybe(0.2):
        album = None
    duration = round(track.duration + float(corruptor.rng.normal(0, 1.5)),
                     1)
    return Record(record_id, {
        "artist": artist,
        "title": title,
        "album": album,
        "year": float(track.year),
        "duration": max(30.0, duration),
    })


def generate_songs(n_a: int = 300, n_b: int = 2000, n_matches: int = 180,
                   seed: int = 0) -> SyntheticDataset:
    """Generate the songs EM task.

    Roughly a quarter of the unmatched B-side is live versions of
    matched tracks — the hard negatives that punish duration-blind
    matchers.
    """
    if n_matches < 4:
        raise DataError("need at least 4 matches to supply seed examples")
    if n_matches > min(n_a, n_b):
        raise DataError("n_matches cannot exceed the smaller table size")
    rng = np.random.default_rng(seed)
    corruptor = Corruptor(rng)

    # Artists own several tracks, so artist name alone cannot match.
    artists = [_make_artist(corruptor) for _ in range(max(10, n_a // 4))]
    tracks = [
        _make_track(corruptor, artist=corruptor.choice(artists))
        for _ in range(n_a)
    ]

    table_a = Table("catalog_a", SONG_SCHEMA)
    table_b = Table("catalog_b", SONG_SCHEMA)
    matches: set[Pair] = set()

    matched_indices = rng.choice(n_a, size=n_matches, replace=False)
    for index in range(n_a):
        table_a.add(_a_record(tracks[index], f"a{index}"))
    b_counter = 0
    for index in matched_indices:
        b_id = f"b{b_counter}"
        b_counter += 1
        table_b.add(_b_record(tracks[int(index)], b_id, corruptor))
        matches.add(Pair(f"a{int(index)}", b_id))

    # Hard negatives: live versions of matched tracks.
    n_live = min((n_b - b_counter) // 4, n_matches)
    for index in matched_indices[:n_live]:
        live = _live_version(tracks[int(index)], corruptor)
        table_b.add(_b_record(live, f"b{b_counter}", corruptor))
        b_counter += 1

    # The rest: unrelated tracks.
    while b_counter < n_b:
        track = _make_track(corruptor, artist=corruptor.choice(artists))
        table_b.add(_b_record(track, f"b{b_counter}", corruptor))
        b_counter += 1

    match_list = sorted(matches)
    seed_positive = (match_list[0], match_list[1])
    seed_negative = (
        Pair(match_list[0].a_id, match_list[1].b_id),
        Pair(match_list[1].a_id, match_list[0].b_id),
    )
    return SyntheticDataset(
        name="songs",
        table_a=table_a,
        table_b=table_b,
        matches=frozenset(matches),
        seed_positive=seed_positive,
        seed_negative=seed_negative,
        instruction=INSTRUCTION,
    )
