"""Synthetic stand-ins for the paper's three evaluation datasets.

The originals (Fodors/Zagat restaurants, DBLP/Google-Scholar citations,
Amazon/Walmart products) are not redistributable offline, so this package
generates datasets with the same schemas, size ratios, match densities and
difficulty ordering (restaurants easy, citations medium, products hard).
Each generator is fully seeded and ships ground truth plus the paper's
user-supplied artifacts: the matching instruction and four seed examples
(two positive, two negative).
"""

from .base import SyntheticDataset, DatasetStats
from .corruption import Corruptor
from .restaurants import generate_restaurants
from .citations import generate_citations
from .products import generate_products
from .songs import generate_songs
from .registry import DATASET_NAMES, PAPER_SCALE, load_dataset

__all__ = [
    "SyntheticDataset",
    "DatasetStats",
    "Corruptor",
    "generate_restaurants",
    "generate_citations",
    "generate_products",
    "generate_songs",
    "DATASET_NAMES",
    "PAPER_SCALE",
    "load_dataset",
]
