"""The single source of run-timing truth.

PR 4 left two independent implementations of "how long did the crowd
take": the gateway/timed-wrapper counters and a private re-derivation
inside :func:`repro.persistence.result_report`.  This module is now the
only implementation — :func:`platform_timing` scrapes a platform
decorator stack once, and both the report pipeline and
:meth:`repro.obs.telemetry.RunTelemetry.timing_snapshot` call it, so
elapsed/retry bookkeeping can never drift between the two again.

All figures are *simulated* seconds from the stack's shared
:class:`~repro.crowd.latency.SimulatedClock`; stacks that keep no time
at all (plain simulated crowds) yield ``None``.
"""

from __future__ import annotations

from typing import Any


def platform_timing(platform: Any) -> dict[str, Any] | None:
    """Timing telemetry scraped from a platform decorator stack.

    Walks the ``_inner`` chain collecting whatever the wrappers expose:
    ``elapsed_seconds``/``retry_seconds`` from
    :class:`~repro.crowd.latency.TimedCrowd` and retry counters from
    :class:`~repro.crowd.gateway.ResilientCrowd`.  Returns None when the
    stack tracks no time at all (plain simulated platforms).
    """
    timing: dict[str, Any] = {}
    retry_seconds = 0.0
    saw_timer = False
    node = platform
    while node is not None:
        if (hasattr(node, "elapsed_seconds")
                and "elapsed_seconds" not in timing):
            timing["elapsed_seconds"] = float(node.elapsed_seconds)
            saw_timer = True
        if hasattr(node, "retry_seconds"):
            retry_seconds += float(node.retry_seconds)
            saw_timer = True
        for counter in ("retries_scheduled", "hits_reposted",
                        "answers_recovered"):
            if hasattr(node, counter) and counter not in timing:
                timing[counter] = int(getattr(node, counter))
        node = getattr(node, "_inner", None)
    if not saw_timer:
        return None
    if "elapsed_seconds" not in timing:
        # A gateway without a TimedCrowd below it still keeps a clock.
        node = platform
        while node is not None:
            clock = getattr(node, "clock", None)
            if clock is not None and hasattr(clock, "now"):
                timing["elapsed_seconds"] = float(clock.now)
                break
            node = getattr(node, "_inner", None)
    timing["retry_seconds"] = retry_seconds
    return timing
