"""Command-line run inspection: ``python -m repro.obs <command>``.

Commands:

* ``report <run_dir>`` — render the per-stage time/cost/label/fault
  tables and the budget-burn summary from a run directory's artifacts
  (an incomplete run renders what exists and is marked in-flight);
* ``prom <run_dir>`` — render the run's ``metrics.json`` in Prometheus
  text-exposition format (what a scrape endpoint would serve);
* ``serve <run_dir>`` — expose ``/metrics``, ``/progress`` and
  ``/trace?after=N`` over stdlib HTTP (the live run monitor);
* ``watch <run_dir>`` — tail ``trace.jsonl`` + ``progress.json`` into
  a refreshing terminal progress view;
* ``diff <run_a> <run_b>`` — align two runs' metric families and stage
  spans and print every delta (exit 1 when the runs differ).

Everything reads only the run directory (JSON + JSONL) and needs
nothing beyond the standard library at inspection time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .prometheus import render_prometheus
from .report import render_report, render_watch
from .telemetry import METRICS_FILE


def _watch(run_dir: Path, interval: float, iterations: int) -> int:
    """The ``watch`` refresh loop (bounded when ``iterations`` > 0)."""
    from .progress import read_progress
    from .report import TRACE_FILE
    from .tail import TraceTail

    tail = TraceTail(run_dir / TRACE_FILE)
    count = 0
    while True:
        tail.poll()
        frame = render_watch(read_progress(run_dir), tail.effective())
        # One ANSI clear per frame; piped output just concatenates.
        if sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")
        sys.stdout.write(f"watching {run_dir}\n{frame}")
        sys.stdout.flush()
        count += 1
        if iterations > 0 and count >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect a Corleone run directory's telemetry.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="render the run-inspection tables")
    report.add_argument("run_dir", help="a checkpointed run directory")
    prom = commands.add_parser(
        "prom", help="render metrics.json as Prometheus text exposition")
    prom.add_argument("run_dir", help="a checkpointed run directory")
    serve = commands.add_parser(
        "serve", help="serve /metrics, /progress and /trace over HTTP")
    serve.add_argument("run_dir", help="a (possibly live) run directory")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port (default 8000; 0 = ephemeral)")
    watch = commands.add_parser(
        "watch", help="tail a live run into a refreshing terminal view")
    watch.add_argument("run_dir", help="a (possibly live) run directory")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes (default 1.0)")
    watch.add_argument("--iterations", type=int, default=0,
                       help="stop after N frames (0 = until Ctrl-C)")
    diff = commands.add_parser(
        "diff", help="explain telemetry deltas between two run dirs")
    diff.add_argument("run_a", help="baseline run directory")
    diff.add_argument("run_b", help="comparison run directory")
    args = parser.parse_args(argv)

    if args.command == "diff":
        from .diffing import diff_runs, render_diff
        for candidate in (args.run_a, args.run_b):
            if not Path(candidate).is_dir():
                print(f"error: {candidate} is not a directory",
                      file=sys.stderr)
                return 2
        result = diff_runs(args.run_a, args.run_b)
        sys.stdout.write(render_diff(result, args.run_a, args.run_b))
        return 1 if (result["metrics"] or result["stages"]) else 0

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: {run_dir} is not a directory", file=sys.stderr)
        return 2
    if args.command == "report":
        sys.stdout.write(render_report(run_dir))
        return 0
    if args.command == "serve":
        from .serve import serve as run_server
        run_server(run_dir, host=args.host, port=args.port)
        return 0
    if args.command == "watch":
        return _watch(run_dir, args.interval, args.iterations)
    metrics_path = run_dir / METRICS_FILE
    if not metrics_path.is_file():
        print(f"error: {metrics_path} not found (telemetry disabled?)",
              file=sys.stderr)
        return 2
    document = json.loads(metrics_path.read_text())
    sys.stdout.write(render_prometheus(document["metrics"]))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
