"""Command-line run inspection: ``python -m repro.obs <command>``.

Commands:

* ``report <run_dir>`` — render the per-stage time/cost/label/fault
  tables and the budget-burn summary from a run directory's artifacts;
* ``prom <run_dir>`` — render the run's ``metrics.json`` in Prometheus
  text-exposition format (what a scrape endpoint would serve).

Both read only the run directory (JSON + JSONL) and need nothing
beyond the standard library at inspection time.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .prometheus import render_prometheus
from .report import render_report
from .telemetry import METRICS_FILE


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect a Corleone run directory's telemetry.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="render the run-inspection tables")
    report.add_argument("run_dir", help="a checkpointed run directory")
    prom = commands.add_parser(
        "prom", help="render metrics.json as Prometheus text exposition")
    prom.add_argument("run_dir", help="a checkpointed run directory")
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: {run_dir} is not a directory", file=sys.stderr)
        return 2
    if args.command == "report":
        sys.stdout.write(render_report(run_dir))
        return 0
    metrics_path = run_dir / METRICS_FILE
    if not metrics_path.is_file():
        print(f"error: {metrics_path} not found (telemetry disabled?)",
              file=sys.stderr)
        return 2
    document = json.loads(metrics_path.read_text())
    sys.stdout.write(render_prometheus(document["metrics"]))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
