"""Ambient telemetry hooks for code that never sees a ``RunContext``.

The deepest hot paths — forest training, the matcher's entropy pooling
— run several layers below the engine and are also used standalone (the
blocker trains forests long before any stage machinery exists).
Threading a context through every signature would couple the
algorithmic core to the engine, so instead the engine *activates* a
:class:`~repro.obs.telemetry.RunTelemetry` for the duration of a run
and the hot paths report through the module-level functions here.  With
nothing active every hook is a constant-time no-op, so library users
pay nothing.

Activation is a stack (nested runs, e.g. the multi-task runner, each
see their own telemetry); hooks report to the innermost activation
only.  Because activation is scoped to ``StagedEngine.run`` and resumed
runs re-execute from a checkpoint that already carries the metric
state, hook-fed metrics stay deterministic across kill/resume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .telemetry import RunTelemetry

_ACTIVE: list["RunTelemetry"] = []


def activate(telemetry: "RunTelemetry") -> None:
    """Route subsequent hook calls to ``telemetry``."""
    _ACTIVE.append(telemetry)


def deactivate(telemetry: "RunTelemetry") -> None:
    """Stop routing hook calls to ``telemetry`` (no-op if inactive)."""
    if telemetry in _ACTIVE:
        _ACTIVE.remove(telemetry)


def record_trees_trained(n_trees: int) -> None:
    """Report ``n_trees`` freshly trained decision trees."""
    if _ACTIVE:
        _ACTIVE[-1].record_trees_trained(n_trees)


def record_entropy_pool(size: int) -> None:
    """Report the size of one active-learning entropy pool."""
    if _ACTIVE:
        _ACTIVE[-1].record_entropy_pool(size)
