"""The live progress heartbeat: a small atomic ``progress.json``.

:class:`ProgressHeartbeat` is an :class:`~repro.engine.events.EventBus`
sink that maintains a compact picture of an in-flight run — current
stage and iteration, shards started/completed, checkpoints written,
labels purchased, budget burn — and atomically rewrites
``progress.json`` in the run directory at checkpoint and shard
boundaries.  ``python -m repro.obs serve`` exposes it at ``/progress``
and ``python -m repro.obs report`` uses it to mark an incomplete run as
in-flight.

The file is a **live advisory**, not a deterministic artifact: it is
rewritten mid-run at points a resumed run may legitimately skip, so it
sits outside the byte-identity contract that governs ``metrics.json``
and ``spans.jsonl`` (after a kill/resume the label and answer tallies
restart from the resume point; the authoritative totals live in the
metrics snapshot).  Writes go through the same
:mod:`repro.storage.writer` discipline as everything else (tmp file,
fsync, atomic replace) so a reader never observes a torn document, but
— like ``profile.json`` — the file is never recorded in the run
manifest: a checksum over a heartbeat would flag every legitimate
rewrite as corruption.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..engine.events import (
    EVENT_BUDGET_SPENT,
    EVENT_CHECKPOINT_WRITTEN,
    EVENT_LABELS_PURCHASED,
    EVENT_SHARD_COMPLETED,
    EVENT_SHARD_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_STARTED,
    Event,
)
from ..storage.writer import atomic_write_json

PROGRESS_FILE = "progress.json"
PROGRESS_FORMAT = "corleone-progress"
PROGRESS_VERSION = 1


class ProgressHeartbeat:
    """Bus sink keeping ``progress.json`` fresh while a run executes."""

    def __init__(self, run_dir: str | Path,
                 budget: float | None = None) -> None:
        self.path = Path(run_dir) / PROGRESS_FILE
        self.budget = budget
        self.stage: str | None = None
        self.iteration = 0
        self.checkpoints = 0
        self.labels_purchased = 0
        self.answers = 0
        self.dollars_spent = 0.0
        self.finished = False
        self.sequence = -1
        # Sets, not counters: a resumed run re-emits shard events for
        # loaded shards, and the heartbeat must not double-count them.
        self._shards_started: set[int] = set()
        self._shards_completed: set[int] = set()

    def __call__(self, event: Event) -> None:
        """Fold one engine event in; flush at heartbeat boundaries."""
        payload = event.payload
        self.sequence = max(self.sequence, event.sequence)
        flush = False
        if event.name == EVENT_STAGE_STARTED:
            self.stage = str(payload.get("stage"))
            self.iteration = int(payload.get("iteration", 0))
            flush = True
        elif event.name == EVENT_STAGE_FINISHED:
            # ``dollars`` here is the cost tracker's authoritative
            # running total, which survives kill/resume (unlike the
            # per-event tallies this sink accumulates itself).
            self.dollars_spent = float(payload.get(
                "dollars", self.dollars_spent))
            if payload.get("next_stage") is None:
                self.stage = None
                self.finished = True
            flush = True
        elif event.name == EVENT_CHECKPOINT_WRITTEN:
            self.checkpoints = max(self.checkpoints,
                                   int(payload.get("index", -1)) + 1)
            flush = True
        elif event.name == EVENT_SHARD_STARTED:
            self._shards_started.add(int(payload.get("shard", -1)))
        elif event.name == EVENT_SHARD_COMPLETED:
            self._shards_completed.add(int(payload.get("shard", -1)))
            flush = True
        elif event.name == EVENT_LABELS_PURCHASED:
            self.labels_purchased += 1
        elif event.name == EVENT_BUDGET_SPENT:
            self.answers += int(payload.get("answers", 0))
            self.dollars_spent += float(payload.get("dollars", 0.0))
        if flush:
            self.flush()

    def document(self) -> dict[str, Any]:
        """The progress document (JSON-compatible, stable key set)."""
        remaining = (round(self.budget - self.dollars_spent, 10)
                     if self.budget is not None else None)
        return {
            "format": PROGRESS_FORMAT,
            "version": PROGRESS_VERSION,
            "stage": self.stage,
            "iteration": self.iteration,
            "finished": self.finished,
            "checkpoints": self.checkpoints,
            "shards": {
                "started": len(self._shards_started),
                "completed": len(self._shards_completed),
            },
            "labels_purchased": self.labels_purchased,
            "answers": self.answers,
            "dollars_spent": round(self.dollars_spent, 10),
            "budget": self.budget,
            "budget_remaining": remaining,
            "sequence": self.sequence,
        }

    def flush(self) -> None:
        """Atomically rewrite ``progress.json`` (never torn, unmanifested).

        A volatile snapshot (no fsync): the heartbeat is advisory and
        rewritten at the next boundary, so power-loss durability would
        only add two fsyncs per flush to every checkpointed run.
        """
        atomic_write_json(self.path, self.document(), indent=2,
                          sort_keys=True, durable=False)


def read_progress(run_dir: str | Path) -> dict[str, Any] | None:
    """Load a run directory's ``progress.json`` (None when absent)."""
    path = Path(run_dir) / PROGRESS_FILE
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        # An atomic writer never leaves a torn file; a manually copied
        # or damaged one degrades to "no progress available".
        return None
