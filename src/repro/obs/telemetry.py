"""Run telemetry: one object binding registry, tracer and profiler.

A :class:`RunTelemetry` is created per :class:`~repro.engine.context.
RunContext` and aggregates three instruments:

* the **metrics registry** (:mod:`repro.obs.registry`) with the full
  metric catalog pre-registered — the snapshot's shape is fixed up
  front, which is what makes ``metrics.json`` diffable across runs;
* the **span tracer** (:mod:`repro.obs.spans`) on the platform stack's
  shared simulated clock;
* the **wall-clock profiler** (:mod:`repro.obs.profiling`) — the one
  deliberately non-deterministic instrument, kept out of checkpoints.

Metrics are fed two ways: the telemetry subscribes to the engine's
:class:`~repro.engine.events.EventBus` (labels, spend, faults, retries,
reposts, circuit trips) and takes direct calls for figures that never
cross the bus or that resume would double-count off the bus (HITs
posted, stage runs, blocking-rule coverage, trees trained,
entropy-pool sizes).  ``checkpoint_written`` events are
deliberately *ignored*: the checkpoint counter must increment before
the checkpoint document is serialized (see
:meth:`RunTelemetry.record_checkpoint`), or a run killed at a
checkpoint would resume with one count fewer than the uninterrupted
run and break the byte-identity contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..engine.events import (
    EVENT_ARTIFACT_CORRUPT,
    EVENT_ARTIFACT_QUARANTINED,
    EVENT_BLOCKER_FALLBACK,
    EVENT_BUDGET_SPENT,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_CIRCUIT_OPENED,
    EVENT_FAULT_INJECTED,
    EVENT_HIT_REPOSTED,
    EVENT_LABELS_PURCHASED,
    EVENT_RETRY_SCHEDULED,
    EVENT_SHARD_COMPLETED,
    EVENT_SHARD_STARTED,
    EVENT_TRACE_TORN,
    Event,
)
from ..storage.writer import atomic_write_json
from . import hooks, profiling
from .registry import MetricsRegistry
from .spans import SPANS_FILE, SpanTracer
from .timing import platform_timing

METRICS_FILE = "metrics.json"
METRICS_FORMAT = "corleone-metrics"
METRICS_VERSION = 1

ENTROPY_POOL_BUCKETS = (5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
RULE_COVERAGE_BUCKETS = (10.0, 100.0, 1000.0, 10000.0, 100000.0)
RETRY_DELAY_BUCKETS = (0.5, 1.0, 2.0, 5.0, 15.0, 60.0)


def build_catalog(registry: MetricsRegistry) -> None:
    """Pre-register the full metric catalog on ``registry``.

    Registering everything up front (rather than on first touch) fixes
    the snapshot's key set for every run, so an idle counter shows up
    as an empty family instead of silently vanishing.
    """
    registry.counter(
        "corleone_labels_purchased_total",
        "Distinct pairs labelled by the crowd, by vote strength.",
        label_names=("strong",))
    registry.counter(
        "corleone_answers_total",
        "Paid single-worker answers consumed.")
    registry.counter(
        "corleone_dollars_spent_total",
        "Crowd dollars spent.")
    registry.counter(
        "corleone_hits_posted_total",
        "HITs posted to the platform (reposts included).")
    registry.counter(
        "corleone_hits_reposted_total",
        "HITs reposted by the resilient gateway after expiry.")
    registry.counter(
        "corleone_stage_runs_total",
        "Engine stage executions, by stage name.",
        label_names=("stage",))
    registry.counter(
        "corleone_checkpoints_total",
        "Checkpoints written to the run directory.")
    registry.counter(
        "corleone_faults_injected_total",
        "Crowd faults injected, by fault kind.",
        label_names=("kind",))
    registry.counter(
        "corleone_retries_scheduled_total",
        "Gateway retries scheduled, by failure kind.",
        label_names=("kind",))
    registry.counter(
        "corleone_circuit_opened_total",
        "Circuit-breaker trips.")
    registry.counter(
        "corleone_trees_trained_total",
        "Decision trees trained across every forest.")
    registry.counter(
        "corleone_matcher_iterations_total",
        "Active-learning iterations completed by the engine matcher.")
    registry.gauge(
        "corleone_candidate_pairs",
        "Size of the blocked (umbrella) candidate set.")
    registry.gauge(
        "corleone_cartesian_pairs",
        "Size of the unblocked cross product A x B.")
    registry.gauge(
        "corleone_blocking_rules_applied",
        "Blocking rules the crowd accepted and the blocker applied.")
    registry.gauge(
        "corleone_working_set_size",
        "Pairs in the current training working set.")
    registry.gauge(
        "corleone_best_f1",
        "Best estimated F1 reached so far.")
    registry.gauge(
        "corleone_budget_dollars",
        "Configured run budget (absent series when unlimited).")
    registry.histogram(
        "corleone_entropy_pool_size", ENTROPY_POOL_BUCKETS,
        "Entropy-pool sizes per active-learning batch selection.")
    registry.histogram(
        "corleone_blocking_rule_candidates", RULE_COVERAGE_BUCKETS,
        "Pairs removed per evaluated blocking rule (coverage).")
    registry.counter(
        "corleone_shards_started_total",
        "Blocking shards started (resume-loaded shards included).")
    registry.counter(
        "corleone_shards_completed_total",
        "Blocking shards completed (resume-loaded shards included).")
    registry.counter(
        "corleone_shard_pairs_scanned_total",
        "A x B pairs scanned by completed blocking shards.")
    registry.counter(
        "corleone_blocker_parallel_fallback_total",
        "Parallel/sharded blocking fallbacks to fewer workers, by reason.",
        label_names=("reason",))
    registry.counter(
        "corleone_worker_shards_completed_total",
        "Blocking shards completed per logical worker slot.",
        label_names=("worker",))
    registry.counter(
        "corleone_worker_shard_pairs_scanned_total",
        "A x B pairs scanned per blocking shard, by worker and shard.",
        label_names=("worker", "shard"))
    registry.counter(
        "corleone_worker_shard_survivors_total",
        "Surviving pairs per blocking shard, by worker and shard.",
        label_names=("worker", "shard"))
    registry.counter(
        "corleone_plan_feature_cells_total",
        "Feature cells the plan executor computed vs. pruned, by outcome.",
        label_names=("outcome",))
    registry.counter(
        "corleone_spill_bytes_total",
        "Feature-matrix bytes spilled to memory-mapped run-dir files.")
    registry.histogram(
        "corleone_retry_delay_seconds", RETRY_DELAY_BUCKETS,
        "Backoff delays of gateway-scheduled retries (simulated s).")
    registry.counter(
        "corleone_storage_artifacts_written_total",
        "Run-dir artifacts durably written per checkpoint cycle, by kind.",
        label_names=("kind",))
    registry.counter(
        "corleone_storage_artifacts_corrupt_total",
        "Artifacts that failed their manifest checksum on load.")
    registry.counter(
        "corleone_storage_artifacts_quarantined_total",
        "Corrupt artifacts moved under the run's quarantine/ directory.")
    registry.counter(
        "corleone_storage_checkpoint_fallbacks_total",
        "Resumes that fell back to an older checkpoint generation.")
    registry.counter(
        "corleone_storage_trace_repairs_total",
        "Torn trace.jsonl tails truncated during resume.")


class RunTelemetry:
    """All telemetry instruments of one hands-off run."""

    def __init__(self, clock: Any | None = None) -> None:
        self.registry = MetricsRegistry()
        build_catalog(self.registry)
        self.tracer = SpanTracer(clock=clock)
        self.profiler = profiling.Profiler()
        self._activations = 0  # corlint: derived — hook-stack depth,
        # an activation-scoped runtime counter, not checkpoint state

    # -- event-bus feed -------------------------------------------------

    def on_event(self, event: Event) -> None:
        """EventBus sink: fold one engine event into the metrics."""
        reg = self.registry
        payload = event.payload
        if event.name == EVENT_LABELS_PURCHASED:
            strong = "true" if payload.get("strong") else "false"
            reg.get("corleone_labels_purchased_total").inc(strong=strong)
        elif event.name == EVENT_BUDGET_SPENT:
            reg.get("corleone_answers_total").inc(payload["answers"])
            reg.get("corleone_dollars_spent_total").inc(payload["dollars"])
        elif event.name == EVENT_FAULT_INJECTED:
            reg.get("corleone_faults_injected_total").inc(
                kind=str(payload["kind"]))
        elif event.name == EVENT_RETRY_SCHEDULED:
            reg.get("corleone_retries_scheduled_total").inc(
                kind=str(payload["kind"]))
            reg.get("corleone_retry_delay_seconds").observe(
                payload["delay_seconds"])
        elif event.name == EVENT_HIT_REPOSTED:
            reg.get("corleone_hits_reposted_total").inc()
        elif event.name == EVENT_CIRCUIT_OPENED:
            reg.get("corleone_circuit_opened_total").inc()
        elif event.name == EVENT_SHARD_STARTED:
            reg.get("corleone_shards_started_total").inc()
        elif event.name == EVENT_SHARD_COMPLETED:
            # Resume-loaded shards re-emit both events with the same
            # counts, so a resumed run's totals converge to exactly the
            # uninterrupted run's values (the byte-identity contract).
            reg.get("corleone_shards_completed_total").inc()
            scanned = int(payload.get("pairs_scanned", 0))
            survivors = int(payload.get("survivors", 0))
            reg.get("corleone_shard_pairs_scanned_total").inc(scanned)
            # Per-worker attribution: the `worker` field is the logical
            # slot (shard index mod configured n_workers), identical
            # across the pool, the in-process fallback and a cached
            # replay — never an OS pid.  Shard labels are zero-padded
            # so the sorted snapshot lists them in shard order.
            worker = str(int(payload.get("worker", 0)))
            shard = f"{int(payload.get('shard', 0)):05d}"
            reg.get("corleone_worker_shards_completed_total").inc(
                worker=worker)
            reg.get("corleone_worker_shard_pairs_scanned_total").inc(
                scanned, worker=worker, shard=shard)
            reg.get("corleone_worker_shard_survivors_total").inc(
                survivors, worker=worker, shard=shard)
            # A zero-duration `shard` span marks the completion on the
            # simulated clock (blocking consumes no simulated time).
            # Checkpoints never land mid-blocking, and cached shards
            # re-emit this event, so the span list stays byte-identical
            # across replay and kill/resume; `cached` is deliberately
            # not an attribute — it differs between those histories.
            span_id = self.tracer.start(
                "shard", shard=int(payload.get("shard", 0)),
                worker=int(payload.get("worker", 0)),
                pairs_scanned=scanned, survivors=survivors)
            self.tracer.end(span_id)
        elif event.name == EVENT_BLOCKER_FALLBACK:
            reg.get("corleone_blocker_parallel_fallback_total").inc(
                reason=str(payload.get("reason")))
        elif event.name == EVENT_ARTIFACT_CORRUPT:
            reg.get("corleone_storage_artifacts_corrupt_total").inc()
        elif event.name == EVENT_ARTIFACT_QUARANTINED:
            reg.get("corleone_storage_artifacts_quarantined_total").inc()
        elif event.name == EVENT_CHECKPOINT_FALLBACK:
            reg.get("corleone_storage_checkpoint_fallbacks_total").inc()
        elif event.name == EVENT_TRACE_TORN:
            reg.get("corleone_storage_trace_repairs_total").inc()
        # checkpoint_written and artifact_written are intentionally not
        # handled here — their counters increment *before* the
        # checkpoint document is serialized (see record_checkpoint /
        # record_artifact_write), or a run killed at a checkpoint would
        # resume with fewer counts than the uninterrupted run and break
        # the byte-identity contract.  The recovery events above are
        # safe off the bus: they replay only on a corrupted resume,
        # after the checkpointed state has been restored.

    # -- direct instrumentation ----------------------------------------

    def record_hits(self, n_hits: int) -> None:
        """Count HITs the cost tracker just metered."""
        if n_hits > 0:
            self.registry.get("corleone_hits_posted_total").inc(n_hits)

    def record_checkpoint(self) -> None:
        """Count a checkpoint *before* its document is written.

        Incrementing pre-write puts the count inside the checkpoint's
        own telemetry state, so a kill at exactly this checkpoint
        resumes with the same count the uninterrupted run carries.
        """
        self.registry.get("corleone_checkpoints_total").inc()

    def record_artifact_write(self, kind: str) -> None:
        """Count one checkpoint-cycle artifact write, pre-serialize.

        Same discipline as :meth:`record_checkpoint`: the checkpointer
        calls this for each artifact the cycle is about to write,
        *before* serializing the checkpoint document, so the counts
        ride inside the checkpoint itself and kill/resume converges.
        Writes outside the checkpoint cycle (``run.json``, the final
        telemetry export, shard files) are deliberately unmetered —
        they happen at points a restarted run may legitimately skip, so
        counting them would break metric convergence; the run manifest
        records them all regardless.
        """
        self.registry.get(
            "corleone_storage_artifacts_written_total").inc(kind=kind)

    def record_budget(self, budget: float | None) -> None:
        """Record the configured dollar budget (if capped)."""
        if budget is not None:
            self.registry.get("corleone_budget_dollars").set(float(budget))

    def record_blocker_result(self, result: Any) -> None:
        """Fold a :class:`~repro.core.blocker.BlockerResult` in."""
        reg = self.registry
        reg.get("corleone_candidate_pairs").set(result.umbrella_size)
        reg.get("corleone_cartesian_pairs").set(result.cartesian)
        reg.get("corleone_blocking_rules_applied").set(
            len(result.applied_rules))
        coverage = reg.get("corleone_blocking_rule_candidates")
        for evaluation in result.evaluations:
            coverage.observe(evaluation.coverage)

    def record_plan_stats(self, stats: dict[str, Any]) -> None:
        """Fold the plan executor's cell accounting in.

        The counts are deterministic (chunk- and shard-order invariant,
        and shard files persist per-shard cell counts), so unlike the
        process-lifetime cache-miss counters in
        :mod:`repro.features.batch` they are safe inside the
        checkpointed registry.
        """
        cells = self.registry.get("corleone_plan_feature_cells_total")
        cells.inc(int(stats.get("cells_computed", 0)), outcome="computed")
        cells.inc(int(stats.get("cells_pruned", 0)), outcome="pruned")

    def record_spill(self, bytes_spilled: int) -> None:
        """Count feature-matrix bytes spilled to memory-mapped files."""
        if bytes_spilled > 0:
            self.registry.get("corleone_spill_bytes_total").inc(
                int(bytes_spilled))

    def record_working_set(self, size: int) -> None:
        """Record the current training working-set size."""
        self.registry.get("corleone_working_set_size").set(int(size))

    def record_best_f1(self, f1: float) -> None:
        """Record a new best estimated F1."""
        self.registry.get("corleone_best_f1").set(float(f1))

    def record_matcher_iteration(self) -> None:
        """Count one completed active-learning iteration."""
        self.registry.get("corleone_matcher_iterations_total").inc()

    def record_trees_trained(self, n_trees: int) -> None:
        """Count trees trained (ambient hook target)."""
        self.registry.get("corleone_trees_trained_total").inc(int(n_trees))

    def record_entropy_pool(self, size: int) -> None:
        """Observe one entropy-pool size (ambient hook target)."""
        self.registry.get("corleone_entropy_pool_size").observe(int(size))

    # -- activation -----------------------------------------------------

    def activate(self) -> None:
        """Route ambient hooks and wall-clock profiling to this run."""
        self._activations += 1
        if self._activations == 1:
            hooks.activate(self)
            profiling.activate(self.profiler)

    def deactivate(self) -> None:
        """Undo one :meth:`activate` (stack-scoped, exception-safe)."""
        if self._activations > 0:
            self._activations -= 1
            if self._activations == 0:
                hooks.deactivate(self)
                profiling.deactivate(self.profiler)

    # -- spans ----------------------------------------------------------

    def open_run_span(self, mode: str) -> None:
        """Open the root ``run`` span unless one is already open.

        A resumed run restores its open root span from the checkpoint,
        so this is a no-op on resume.
        """
        if self.tracer.open_depth == 0:
            self.tracer.start("run", mode=mode)

    def start_stage_span(self, stage_name: str, iteration: int) -> int:
        """Open a ``stage`` span, counting the stage run — or adopt one.

        A mid-stage checkpoint (a matcher-iteration checkpoint inside
        ``train_matcher``) restores the tracer with the enclosing stage
        span still *open*.  The resumed engine loop then re-enters that
        stage from the top; starting a second span (and counting a
        second stage run) would diverge from the uninterrupted run.  So
        when the innermost open span is a ``stage`` span for the same
        stage, it is adopted as-is — same id, original start time and
        attributes — and the stage-run counter is left alone.
        """
        top = self.tracer.innermost_open
        if (top is not None and top["name"] == "stage"
                and top["attrs"].get("stage") == stage_name):
            return int(top["id"])
        self.registry.get("corleone_stage_runs_total").inc(stage=stage_name)
        return self.tracer.start("stage", stage=stage_name,
                                 iteration=iteration)

    def close_run_span(self) -> None:
        """Close the root span (and any stragglers) at run end."""
        self.tracer.close_all_open()

    # -- persistence ----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Deterministic telemetry state for the engine checkpoint.

        The wall-clock profiler is deliberately excluded: its numbers
        are non-deterministic by definition and must never influence a
        resumed run's artifacts.
        """
        return {
            "metrics": self.registry.state_dict(),
            "spans": self.tracer.state_dict(),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.registry.load_state(state["metrics"])
        self.tracer.load_state(state["spans"])

    def metrics_document(self) -> dict[str, Any]:
        """The ``metrics.json`` document for the run directory."""
        return {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "metrics": self.registry.snapshot(),
        }

    def export(self, run_dir: str | Path,
               include_profile: bool = False,
               writer: Any = None) -> None:
        """Write ``metrics.json`` + ``spans.jsonl`` and, at run end,
        ``profile.json``.

        All writes go through :mod:`repro.storage.writer`, and the
        ``writer`` argument picks the durability tier.  With the run's
        :class:`~repro.storage.writer.ArtifactWriter` (the pipeline's
        run-end export) the files land fully durable and are recorded
        in the run manifest, so the manifest checksums describe the
        final bytes.  Without one (the per-checkpoint live export) they
        are written as *volatile snapshots* — atomic replace so
        ``/metrics`` readers never see a torn file, but no fsync and no
        manifest entry: both files are regenerated byte-for-byte from
        the checkpointed telemetry state on resume, so mid-run
        durability buys nothing and costs two fsync pairs per
        checkpoint.  ``profile.json`` is *never* manifested — it is
        wall-clock noise by design, and a checksum over it would flag
        every legitimate rewrite as corruption.
        """
        run_dir = Path(run_dir)
        document = self.metrics_document()
        if writer is not None:
            writer.atomic_write_json(run_dir / METRICS_FILE, document,
                                     indent=2, sort_keys=True)
        else:
            atomic_write_json(run_dir / METRICS_FILE, document,
                              indent=2, sort_keys=True, durable=False)
        self.tracer.write(run_dir / SPANS_FILE, writer=writer)
        if include_profile:
            self.profiler.write(run_dir / profiling.PROFILE_FILE)

    # -- timing ---------------------------------------------------------

    def timing_snapshot(self, platform: Any) -> dict[str, Any] | None:
        """The run's timing section (single source of truth).

        Delegates to :func:`repro.obs.timing.platform_timing` — the same
        implementation :func:`repro.persistence.result_report` uses — so
        reports built from a live telemetry object and reports built
        from a bare platform stack can never disagree.
        """
        return platform_timing(platform)
