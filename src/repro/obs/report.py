"""Run-directory inspection: the ``obs report`` tables.

Renders a human-readable accounting of one checkpointed run — where the
budget, time, labels and faults went, per stage — purely from the run
directory's artifacts (``trace.jsonl``, ``spans.jsonl``,
``metrics.json``, ``profile.json``, ``checkpoint.json``).  Nothing is
recomputed from the data tables and nothing beyond the standard library
is imported, so the report works on any machine that can read JSON.

A resumed run's ``trace.jsonl`` deliberately contains duplicate
sequence numbers (the appended tail re-covers the events after the
crash point); :func:`effective_trace` resolves that by letting the
*latest* occurrence of each sequence number win, which reconstructs the
authoritative history of the run that actually completed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..exceptions import DataError
from .profiling import PROFILE_FILE
from .progress import read_progress
from .spans import SPANS_FILE, read_spans
from .telemetry import METRICS_FILE

TRACE_FILE = "trace.jsonl"
CHECKPOINT_FILE = "checkpoint.json"


def effective_trace(path: str | Path) -> list[dict[str, Any]]:
    """The authoritative event history of a (possibly resumed) trace.

    Tolerates a torn *final* line exactly like
    :func:`repro.engine.events.read_trace` — an in-flight run's trace
    may end mid-write, and the report/serve surfaces must render what
    is there rather than raise.  An invalid line anywhere earlier is
    real corruption and raises :class:`DataError`.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    last_index = len(lines) - 1
    by_sequence: dict[int, dict[str, Any]] = {}
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if index == last_index:
                break
            raise DataError(
                f"{path}: invalid JSON on trace line {index + 1} "
                f"(not a torn tail — line {len(lines)} follows it)"
            ) from None
        by_sequence[int(event["sequence"])] = event
    return [by_sequence[seq] for seq in sorted(by_sequence)]


def load_artifacts(run_dir: str | Path) -> dict[str, Any]:
    """Every readable artifact of ``run_dir`` (missing ones -> None)."""
    run_dir = Path(run_dir)

    def read_json(name: str) -> Any | None:
        path = run_dir / name
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    trace_path = run_dir / TRACE_FILE
    spans_path = run_dir / SPANS_FILE
    return {
        "trace": (effective_trace(trace_path)
                  if trace_path.is_file() else None),
        "spans": read_spans(spans_path) if spans_path.is_file() else None,
        "metrics": read_json(METRICS_FILE),
        "profile": read_json(PROFILE_FILE),
        "checkpoint": read_json(CHECKPOINT_FILE),
        "progress": read_progress(run_dir),
    }


def _table(headers: list[str], rows: list[list[str]],
           align_left: int = 1) -> list[str]:
    """Render a fixed-width text table (first ``align_left`` columns
    left-aligned, the rest right-aligned)."""
    table = [headers, *rows]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        cells = [
            cell.ljust(widths[col]) if col < align_left
            else cell.rjust(widths[col])
            for col, cell in enumerate(row)
        ]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def _series(metrics: dict[str, Any] | None,
            name: str) -> list[dict[str, Any]]:
    """A metric family's series list (empty when absent)."""
    if not metrics:
        return []
    family = metrics.get("metrics", {}).get(name)
    return family["series"] if family else []


def _value(metrics: dict[str, Any] | None, name: str,
           default: float = 0) -> float:
    """An unlabelled metric's value (``default`` when absent)."""
    series = _series(metrics, name)
    return series[0]["value"] if series else default


def _stage_rollup(trace: list[dict[str, Any]]) -> tuple[
        list[str], dict[str, dict[str, float]]]:
    """Aggregate labels/dollars/faults per stage from the event trace."""
    order: list[str] = []
    stats: dict[str, dict[str, float]] = {}
    current: str | None = None
    for event in trace:
        name = event["event"]
        if name == "stage_started":
            current = event["stage"]
            if current not in stats:
                order.append(current)
                stats[current] = {"runs": 0, "labels": 0,
                                  "dollars": 0.0, "faults": 0}
            stats[current]["runs"] += 1
        elif name == "stage_finished":
            current = None
        elif current is not None:
            if name == "labels_purchased":
                stats[current]["labels"] += 1
            elif name == "budget_spent":
                stats[current]["dollars"] += event["dollars"]
            elif name == "fault_injected":
                stats[current]["faults"] += 1
    return order, stats


def _stage_sim_seconds(spans: list[dict[str, Any]]) -> dict[str, float]:
    """Total simulated seconds per stage from the span records."""
    totals: dict[str, float] = {}
    for span in spans:
        if span["name"] == "stage":
            stage = span["attrs"]["stage"]
            totals[stage] = totals.get(stage, 0.0) + span["duration"]
    return totals


def render_report(run_dir: str | Path) -> str:
    """The full ``obs report`` text for one run directory."""
    run_dir = Path(run_dir)
    artifacts = load_artifacts(run_dir)
    metrics = artifacts["metrics"]
    lines: list[str] = [f"Corleone run report — {run_dir.name}"]

    checkpoint = artifacts["checkpoint"]
    if checkpoint is not None:
        state = checkpoint.get("state", {})
        lines.append(
            f"mode: {state.get('mode', '?')}"
            f" | stop: {state.get('stop_reason') or 'running'}"
            f" | iterations: {state.get('iteration', '?')}"
            f" | checkpoints: {checkpoint.get('index', -1) + 1}"
        )
    progress = artifacts["progress"]
    if progress is not None and not progress.get("finished"):
        # An incomplete run: render whatever artifacts exist below, but
        # say up front that the numbers are a snapshot, not a result.
        shards = progress.get("shards", {})
        lines.append(
            f"IN FLIGHT — stage: {progress.get('stage') or '?'}"
            f" | iteration: {progress.get('iteration', 0)}"
            f" | shards {shards.get('completed', 0)}"
            f"/{shards.get('started', 0)}"
            f" | spent ${progress.get('dollars_spent', 0.0):.2f}"
        )
    lines.append("")

    trace = artifacts["trace"] or []
    spans = artifacts["spans"] or []
    if trace:
        order, stats = _stage_rollup(trace)
        sim = _stage_sim_seconds(spans)
        rows = [
            [stage,
             str(int(stats[stage]["runs"])),
             str(int(stats[stage]["labels"])),
             f"{stats[stage]['dollars']:.2f}",
             str(int(stats[stage]["faults"])),
             f"{sim.get(stage, 0.0):.1f}"]
            for stage in order
        ]
        lines.append("stages")
        lines.extend(_table(
            ["stage", "runs", "labels", "dollars", "faults", "sim_s"],
            rows))
        lines.append("")

    budget = _value(metrics, "corleone_budget_dollars", default=None)
    spent = _value(metrics, "corleone_dollars_spent_total")
    labels_total = sum(s["value"] for s in
                       _series(metrics, "corleone_labels_purchased_total"))
    burn = (f" of ${budget:.2f}"
            f" ({100.0 * spent / budget:.1f}%)" if budget else "")
    lines.append("budget burn")
    lines.append(
        f"  spent ${spent:.2f}{burn}"
        f" | answers {int(_value(metrics, 'corleone_answers_total'))}"
        f" | pairs labelled {int(labels_total)}"
        f" | HITs {int(_value(metrics, 'corleone_hits_posted_total'))}"
        f" ({int(_value(metrics, 'corleone_hits_reposted_total'))}"
        " reposted)"
    )
    lines.append("")

    fault_series = _series(metrics, "corleone_faults_injected_total")
    retry_series = _series(metrics, "corleone_retries_scheduled_total")
    if fault_series or retry_series:
        lines.append("faults and retries")
        rows = [["fault", s["labels"]["kind"], str(int(s["value"]))]
                for s in fault_series]
        rows += [["retry", s["labels"]["kind"], str(int(s["value"]))]
                 for s in retry_series]
        lines.extend(_table(["what", "kind", "count"], rows,
                            align_left=2))
        lines.append("")

    shards_started = _value(metrics, "corleone_shards_started_total")
    shards_completed = _value(metrics, "corleone_shards_completed_total")
    fallback_series = _series(
        metrics, "corleone_blocker_parallel_fallback_total")
    if shards_started or shards_completed or fallback_series:
        lines.append("sharded blocking")
        pairs_scanned = _value(
            metrics, "corleone_shard_pairs_scanned_total")
        lines.append(
            f"  shards {int(shards_completed)}/{int(shards_started)}"
            " completed"
            f" | pairs scanned {int(pairs_scanned)}"
        )
        for series in fallback_series:
            lines.append(
                f"  fallback [{series['labels']['reason']}]"
                f" x{int(series['value'])}"
            )
        lines.append("")

    write_series = _series(metrics,
                           "corleone_storage_artifacts_written_total")
    recovery_kinds = {
        "artifact_corrupt": "corrupt artifact",
        "artifact_quarantined": "quarantined",
        "checkpoint_fallback": "generation fallback",
        "trace_torn_tail": "torn trace tail",
    }
    recovery_rows = [
        [recovery_kinds[event["event"]],
         str(event.get("artifact")
             or f"{event.get('bytes_truncated', '?')} bytes")]
        for event in trace if event["event"] in recovery_kinds
    ]
    if write_series or recovery_rows:
        lines.append("storage durability")
        written_events = sum(1 for event in trace
                             if event["event"] == "artifact_written")
        per_kind = ", ".join(
            f"{series['labels']['kind']} "
            f"{int(series['value'])}"
            for series in write_series)
        lines.append(
            f"  artifacts written"
            f" {sum(int(s['value']) for s in write_series)}"
            f" ({per_kind or 'none metered'})"
            f" | write events {written_events}"
        )
        if recovery_rows:
            lines.extend(_table(["recovery", "artifact"], recovery_rows,
                                align_left=2))
        lines.append("")

    iteration_spans = [s for s in spans
                       if s["name"] == "matcher_iteration"]
    if iteration_spans:
        per_iteration: dict[int, dict[str, float]] = {}
        for span in iteration_spans:
            entry = per_iteration.setdefault(
                int(span["attrs"]["iteration"]),
                {"steps": 0, "sim_s": 0.0})
            entry["steps"] += 1
            entry["sim_s"] += span["duration"]
        lines.append("matcher iterations")
        lines.extend(_table(
            ["iteration", "al_steps", "sim_s"],
            [[str(index),
              str(int(per_iteration[index]["steps"])),
              f"{per_iteration[index]['sim_s']:.1f}"]
             for index in sorted(per_iteration)]))
        lines.append("")

    profile = artifacts["profile"]
    if profile is not None and profile.get("sections"):
        lines.append("wall-clock profile (non-deterministic)")
        lines.extend(_table(
            ["section", "calls", "seconds"],
            [[name,
              str(entry["calls"]),
              f"{entry['seconds']:.3f}"]
             for name, entry in sorted(profile["sections"].items())]))
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def render_watch(progress: dict[str, Any] | None,
                 events: list[dict[str, Any]],
                 recent: int = 8) -> str:
    """One frame of the ``obs watch`` terminal view.

    Pure function over the heartbeat document and the effective event
    list (latest-wins, as produced by
    :class:`repro.obs.tail.TraceTail`), so the refresh loop in
    ``python -m repro.obs watch`` stays trivially testable.
    """
    lines = []
    if progress is None:
        lines.append("waiting for progress.json — run not started "
                     "(or telemetry disabled)")
    else:
        state = ("finished" if progress.get("finished")
                 else f"stage {progress.get('stage') or '?'}")
        shards = progress.get("shards", {})
        budget = progress.get("budget")
        spent = progress.get("dollars_spent", 0.0)
        burn = (f" / ${budget:.2f}" if budget is not None else "")
        lines.append(
            f"{state}"
            f" | iteration {progress.get('iteration', 0)}"
            f" | checkpoints {progress.get('checkpoints', 0)}"
            f" | shards {shards.get('completed', 0)}"
            f"/{shards.get('started', 0)}"
        )
        lines.append(
            f"spent ${spent:.2f}{burn}"
            f" | labels {progress.get('labels_purchased', 0)}"
            f" | answers {progress.get('answers', 0)}"
        )
    lines.append(f"events seen: {len(events)}")
    for event in events[-recent:]:
        detail = ", ".join(
            f"{key}={event[key]}" for key in sorted(event)
            if key not in ("event", "sequence"))
        suffix = f"  ({detail})" if detail else ""
        lines.append(f"  #{event.get('sequence')} "
                     f"{event.get('event')}{suffix}")
    return "\n".join(lines) + "\n"
