"""The run monitor: ``/metrics``, ``/progress`` and ``/trace`` over HTTP.

``python -m repro.obs serve <run_dir>`` binds a tiny stdlib
:class:`~http.server.ThreadingHTTPServer` against a run directory —
live or finished — and exposes:

* ``/metrics`` — the Prometheus text exposition rendered from
  ``metrics.json`` **at request time**.  The engine atomically rewrites
  that file at every checkpoint from checkpointed state, so each
  response is a prefix-consistent snapshot of the run so far and the
  sequence of responses converges to the final export, byte for byte —
  no torn reads, no partially applied checkpoints.
* ``/progress`` — the heartbeat document
  (:mod:`repro.obs.progress`) as JSON.
* ``/trace?after=N`` — engine events with ``sequence > N`` as a JSON
  array, read through the torn-tolerant incremental tail
  (:class:`repro.obs.tail.TraceTail`), resume seams deduplicated
  latest-wins.

No third-party dependency, no background thread beyond what
``ThreadingHTTPServer`` spawns per request, and strictly read-only over
the run directory — the monitor can never perturb the run it watches.
This surface is the foundation for ROADMAP item 2's
Corleone-as-a-service ``/metrics``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from .progress import read_progress
from .prometheus import render_prometheus
from .tail import TraceTail

METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.jsonl"


class RunMonitorHandler(BaseHTTPRequestHandler):
    """Serves one run directory; bound via :func:`build_server`."""

    run_dir: Path
    tail: TraceTail
    tail_lock: threading.Lock

    # -- endpoints ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's casing
        """Dispatch ``/metrics``, ``/progress`` and ``/trace``."""
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            self._serve_metrics()
        elif parsed.path == "/progress":
            self._serve_progress()
        elif parsed.path == "/trace":
            self._serve_trace(parse_qs(parsed.query))
        else:
            self._respond(404, "text/plain; charset=utf-8",
                          "not found: try /metrics, /progress or /trace\n")

    def _serve_metrics(self) -> None:
        path = self.run_dir / METRICS_FILE
        if not path.is_file():
            self._respond(404, "text/plain; charset=utf-8",
                          "metrics.json not written yet\n")
            return
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            body = render_prometheus(document["metrics"])
        except (ValueError, KeyError):
            # Atomic rewrites make this unreachable for engine-written
            # files; a hand-damaged document degrades to a 503 rather
            # than a traceback in the monitor.
            self._respond(503, "text/plain; charset=utf-8",
                          "metrics.json is unreadable\n")
            return
        self._respond(200, "text/plain; version=0.0.4; charset=utf-8",
                      body)

    def _serve_progress(self) -> None:
        document = read_progress(self.run_dir)
        if document is None:
            self._respond(404, "text/plain; charset=utf-8",
                          "progress.json not written yet\n")
            return
        self._respond(200, "application/json",
                      json.dumps(document, indent=2, sort_keys=True) + "\n")

    def _serve_trace(self, query: dict[str, list[str]]) -> None:
        try:
            after = int(query.get("after", ["-1"])[0])
        except ValueError:
            self._respond(400, "text/plain; charset=utf-8",
                          "after must be an integer sequence number\n")
            return
        with self.tail_lock:
            self.tail.poll()
            events = [record for record in self.tail.effective()
                      if record["sequence"] > after]
        self._respond(200, "application/json",
                      json.dumps(events, sort_keys=True) + "\n")

    # -- plumbing -------------------------------------------------------

    def _respond(self, status: int, content_type: str,
                 body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args) -> None:
        """Silence per-request stderr chatter (the CLI prints the URL)."""


def build_server(run_dir: str | Path, host: str = "127.0.0.1",
                 port: int = 0) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` serving ``run_dir``.

    ``port=0`` picks a free ephemeral port (the tests' path); the bound
    address is on ``server.server_address``.  The caller owns the
    lifecycle: ``serve_forever()`` to block, ``shutdown()`` to stop.
    """
    directory = Path(run_dir)
    handler = type("BoundRunMonitorHandler", (RunMonitorHandler,), {
        "run_dir": directory,
        "tail": TraceTail(directory / TRACE_FILE),
        "tail_lock": threading.Lock(),
    })
    return ThreadingHTTPServer((host, port), handler)


def serve(run_dir: str | Path, host: str = "127.0.0.1",
          port: int = 8000) -> None:
    """Blocking CLI entry point for ``python -m repro.obs serve``."""
    server = build_server(run_dir, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving {Path(run_dir)} on http://{bound_host}:{bound_port} "
          f"(/metrics /progress /trace?after=N) — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
