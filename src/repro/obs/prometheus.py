"""Prometheus text-exposition rendering for metric snapshots.

Renders the output of :meth:`repro.obs.registry.MetricsRegistry.snapshot`
(or a ``metrics.json`` document loaded from a run directory) in the
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers followed by one sample line per series,
with histogram families expanded into cumulative ``_bucket`` samples
plus ``_sum`` and ``_count``.  The rendering is a pure function of the
snapshot, so it shares the snapshot's determinism guarantees and is
covered by a golden test.
"""

from __future__ import annotations

from typing import Any


def _escape(value: str) -> str:
    """Escape one label value per the exposition format rules."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_block(labels: dict[str, str],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    """Render ``{a="x",b="y"}`` (empty string when no labels)."""
    items = [*labels.items(), *extra]
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape(str(value))}"'
                    for name, value in items)
    return "{" + body + "}"


def _format_number(value: int | float) -> str:
    """Render one sample value (ints without a decimal point)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """The snapshot as Prometheus text exposition (one big string)."""
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for series in family["series"]:
            labels = series["labels"]
            if family["type"] == "histogram":
                for bucket in series["buckets"]:
                    block = _label_block(labels,
                                         extra=(("le", bucket["le"]),))
                    lines.append(
                        f"{name}_bucket{block} {bucket['count']}"
                    )
                block = _label_block(labels)
                lines.append(
                    f"{name}_sum{block} {_format_number(series['sum'])}"
                )
                lines.append(f"{name}_count{block} {series['count']}")
            else:
                block = _label_block(labels)
                lines.append(
                    f"{name}{block} {_format_number(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
