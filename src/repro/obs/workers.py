"""Worker-side telemetry capture for the sharded blocking executor.

The sharded executor (:mod:`repro.exec.executor`) forks worker
processes, and anything a worker records into the ambient profiler
stack (:mod:`repro.obs.profiling`) dies with the child.  This module
closes that gap without breaking the determinism contract:

* :func:`worker_slot` maps a shard index to a *logical* worker slot
  derived from the configured ``n_workers`` — never from an OS pid or
  from the pool's actual size — so replay, the in-process fallback and
  cached-shard resume all attribute a shard to the same worker.
* :func:`capture_worker_sections` activates a fresh
  :class:`~repro.obs.profiling.Profiler` around a shard's work and
  hands back the recorded wall-clock sections as a plain dict.  The
  fresh profiler matters twice over: a forked child inherits the
  parent's activation stack (recording into a doomed copy), and the
  parent's in-process fallback must not double-count shard work into
  the run-level sections.
* :func:`merge_worker_sections` folds a shard's captured sections into
  the parent's *active* profiler under ``worker{slot}.{name}`` keys.
  The executor calls it in deterministic shard order, so the merged
  ``profile.json`` layout is stable even though the seconds are
  wall-clock noise.

Wall-clock sections flow only to ``profile.json``; the deterministic
shard facts (pairs scanned, survivors) travel separately in the shard
result payload and feed ``metrics.json``/``spans.jsonl`` through
:class:`~repro.obs.telemetry.RunTelemetry`, which is what keeps those
files byte-identical across replay and kill/resume.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any

from .profiling import Profiler, activate, deactivate

__all__ = [
    "worker_slot",
    "capture_worker_sections",
    "merge_worker_sections",
    "encode_sections",
    "decode_sections",
]


def worker_slot(shard_index: int, n_workers: int) -> int:
    """The deterministic logical worker slot for ``shard_index``.

    Purely a function of the *configured* worker count, so the pooled
    path, the fork-unavailable in-process fallback, and a cached-shard
    replay all agree on the attribution.
    """
    return int(shard_index) % max(1, int(n_workers))


@contextmanager
def capture_worker_sections():
    """Record :func:`~repro.obs.profiling.profile_section` calls locally.

    Activates a fresh profiler for the duration of the block (shadowing
    whatever the process inherited on its activation stack) and yields
    a dict that, on exit, holds the captured sections in the same
    ``{name: {"calls": int, "seconds": float}}`` shape as
    :attr:`Profiler.sections`.
    """
    profiler = Profiler()
    captured: dict[str, dict[str, float]] = {}
    activate(profiler)
    try:
        yield captured
    finally:
        deactivate(profiler)
        captured.update(profiler.sections)


def merge_worker_sections(slot: int, sections: dict[str, dict[str, float]],
                          profiler: Profiler | None = None) -> None:
    """Fold a worker's captured sections into the parent profiler.

    Sections land under ``worker{slot}.{name}`` so a multi-core run's
    ``profile.json`` shows where each logical worker spent its wall
    time.  With no explicit ``profiler`` the ambient active one is
    used; with none active this is a no-op (profiling disabled).
    """
    if profiler is None:
        from .profiling import _ACTIVE
        if not _ACTIVE:
            return
        profiler = _ACTIVE[-1]
    for name in sorted(sections):
        entry = sections[name]
        merged = profiler.sections.setdefault(
            f"worker{int(slot)}.{name}", {"calls": 0, "seconds": 0.0})
        merged["calls"] += int(entry.get("calls", 0))
        merged["seconds"] += float(entry.get("seconds", 0.0))


def encode_sections(sections: dict[str, dict[str, float]]) -> str:
    """Canonical JSON string for persisting sections in a shard ``.npz``."""
    return json.dumps({"sections": sections or {}}, sort_keys=True)


def decode_sections(blob: Any) -> dict[str, dict[str, float]]:
    """Inverse of :func:`encode_sections`; tolerant of old shard files."""
    if blob is None:
        return {}
    try:
        document = json.loads(str(blob))
    except (TypeError, ValueError):
        return {}
    sections = document.get("sections", {})
    if not isinstance(sections, dict):
        return {}
    return {
        str(name): {"calls": int(entry.get("calls", 0)),
                    "seconds": float(entry.get("seconds", 0.0))}
        for name, entry in sections.items()
        if isinstance(entry, dict)
    }
