"""Incremental, torn-tolerant tailing of a live ``trace.jsonl``.

``trace.jsonl`` is append-only and flushed per event, but a reader
polling an in-flight run can still observe three awkward states:

* a **partial final line** — the writer is mid-``write`` (or the page
  cache exposed half a line); the bytes after the last newline must be
  buffered, not parsed;
* a **rotation/truncation** — a fresh run reused the directory, so the
  file is suddenly *shorter* than the last read offset; the tail must
  restart from byte zero rather than read garbage;
* **duplicate sequence numbers** — a kill/resume seam replays events
  the killed run already traced (the engine restores the bus sequence
  from the checkpoint), so the same sequence can appear twice; the
  *latest* occurrence wins, matching
  :func:`repro.obs.report.effective_trace`.

:class:`TraceTail` handles all three with plain stdlib I/O, so
``python -m repro.obs watch`` and the ``/trace`` endpoint never crash
on a live file and never report an event twice per poll.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["TraceTail"]


class TraceTail:
    """Stateful incremental reader over an append-mostly JSONL file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.offset = 0
        """Byte offset of the next unread byte."""
        self.invalid_lines = 0
        """Complete lines that failed to parse as JSON (skipped)."""
        self.rotations = 0
        """Times the file shrank under us and the tail restarted."""
        self._buffer = ""
        self._by_sequence: dict[int, dict[str, Any]] = {}

    def poll(self) -> list[dict[str, Any]]:
        """Read newly appended records; returns them in file order.

        Safe to call whether or not the file exists yet.  A trailing
        fragment with no newline stays buffered until the writer
        completes the line.  Records lacking an integer ``sequence``
        are skipped like invalid JSON — the trace contract guarantees
        one on every real event line.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.offset:
            # The file shrank: a new run rotated the trace out from
            # under us.  Restart from the top with clean state.
            self.rotations += 1
            self.offset = 0
            self._buffer = ""
            self._by_sequence.clear()
        if size == self.offset and not self._buffer:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read()
        self.offset += len(chunk)
        text = self._buffer + chunk.decode("utf-8", errors="replace")
        lines = text.split("\n")
        self._buffer = lines.pop()  # "" after a complete final line
        records = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                sequence = int(record["sequence"])
            except (ValueError, KeyError, TypeError):
                self.invalid_lines += 1
                continue
            records.append(record)
            self._by_sequence[sequence] = record
        return records

    def effective(self) -> list[dict[str, Any]]:
        """Every record seen so far, latest-occurrence-wins, by sequence."""
        return [self._by_sequence[sequence]
                for sequence in sorted(self._by_sequence)]
