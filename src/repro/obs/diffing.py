"""Cross-run diffing: explain how two run directories' telemetry differ.

``python -m repro.obs diff <run_a> <run_b>`` aligns the two runs'
metric families series-by-series (label combination by label
combination) and their stage spans stage-by-stage (simulated seconds),
then prints every delta with its direction — the tool answers "what
changed between these runs" without eyeballing two JSON files.

Because ``metrics.json`` and ``spans.jsonl`` are deterministic
artifacts, a *seeded replay* of a run diffs empty against the original;
any non-empty diff therefore reflects a real configuration, code or
data difference, which is what makes the output usable as a regression
explanation (``collect_results.py --check-regress`` is the numeric
gate; this is the forensic view).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .spans import SPANS_FILE, read_spans

METRICS_FILE = "metrics.json"


def _load_metrics(run_dir: Path) -> dict[str, Any]:
    path = run_dir / METRICS_FILE
    if not path.is_file():
        return {}
    document = json.loads(path.read_text(encoding="utf-8"))
    return document.get("metrics", {})


def _series_values(family: dict[str, Any]) -> dict[tuple, dict[str, Any]]:
    """Flatten a family snapshot into {label-tuple: comparable values}."""
    flattened = {}
    for entry in family.get("series", []):
        key = tuple(sorted(entry.get("labels", {}).items()))
        if family.get("type") == "histogram":
            flattened[key] = {"count": entry.get("count", 0),
                              "sum": entry.get("sum", 0.0)}
        else:
            flattened[key] = {"value": entry.get("value", 0)}
    return flattened


def _stage_seconds(run_dir: Path) -> dict[str, float]:
    """Total simulated seconds per stage name, from ``spans.jsonl``."""
    path = run_dir / SPANS_FILE
    if not path.is_file():
        return {}
    totals: dict[str, float] = {}
    for span in read_spans(path):
        if span.get("name") != "stage":
            continue
        stage = str(span.get("attrs", {}).get("stage"))
        totals[stage] = round(
            totals.get(stage, 0.0) + float(span.get("duration", 0.0)), 9)
    return totals


def diff_runs(run_a: str | Path, run_b: str | Path) -> dict[str, Any]:
    """Structured telemetry differences between two run directories.

    Returns ``{"metrics": [...], "stages": [...]}`` where each metrics
    entry names a family, a label combination and the two values (one
    side ``None`` when the series exists in only one run), and each
    stages entry carries the per-stage simulated seconds.  Both lists
    empty means the runs' telemetry is identical.
    """
    run_a, run_b = Path(run_a), Path(run_b)
    metrics_a, metrics_b = _load_metrics(run_a), _load_metrics(run_b)
    metric_diffs = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        series_a = _series_values(metrics_a.get(name, {}))
        series_b = _series_values(metrics_b.get(name, {}))
        for key in sorted(set(series_a) | set(series_b)):
            value_a, value_b = series_a.get(key), series_b.get(key)
            if value_a != value_b:
                metric_diffs.append({
                    "family": name,
                    "labels": dict(key),
                    "a": value_a,
                    "b": value_b,
                })
    stages_a, stages_b = _stage_seconds(run_a), _stage_seconds(run_b)
    stage_diffs = []
    for stage in sorted(set(stages_a) | set(stages_b)):
        seconds_a = stages_a.get(stage)
        seconds_b = stages_b.get(stage)
        if seconds_a != seconds_b:
            stage_diffs.append({"stage": stage,
                                "a": seconds_a, "b": seconds_b})
    return {"metrics": metric_diffs, "stages": stage_diffs}


def _format_side(value: dict[str, Any] | None) -> str:
    if value is None:
        return "(absent)"
    if "value" in value:
        return str(value["value"])
    return f"count={value['count']} sum={value['sum']}"


def render_diff(diff: dict[str, Any], run_a: str | Path,
                run_b: str | Path) -> str:
    """Human-readable rendering of a :func:`diff_runs` result."""
    lines = [f"telemetry diff: A={run_a}  B={run_b}", ""]
    if not diff["metrics"] and not diff["stages"]:
        lines.append("no differences — the runs' deterministic "
                     "telemetry is identical")
        return "\n".join(lines) + "\n"
    if diff["metrics"]:
        lines.append(f"metrics ({len(diff['metrics'])} differing series)")
        for entry in diff["metrics"]:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(entry["labels"].items()))
            suffix = f"{{{labels}}}" if labels else ""
            lines.append(f"  {entry['family']}{suffix}: "
                         f"A={_format_side(entry['a'])}  "
                         f"B={_format_side(entry['b'])}")
        lines.append("")
    if diff["stages"]:
        lines.append("stage spans (simulated seconds)")
        for entry in diff["stages"]:
            side_a = ("(absent)" if entry["a"] is None
                      else f"{entry['a']:.3f}s")
            side_b = ("(absent)" if entry["b"] is None
                      else f"{entry['b']:.3f}s")
            lines.append(f"  {entry['stage']}: A={side_a}  B={side_b}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
