"""The run-metrics registry: counters, gauges and histograms.

A :class:`MetricsRegistry` holds metric *families* (one per metric
name); each family holds one series per distinct label combination.
Three deliberate constraints keep the registry inside the engine's
determinism contract (``docs/observability.md``):

* snapshots are plain, fully ordered JSON structures — two registries
  fed the same updates in the same order serialize byte-identically;
* state round-trips losslessly through :meth:`MetricsRegistry.state_dict`
  / :meth:`MetricsRegistry.load_state`, so metric state rides inside
  engine checkpoints and a resumed run's final snapshot equals the
  uninterrupted run's;
* histograms use *fixed* bucket bounds declared at registration time —
  no adaptive binning, so bucket layout never depends on the data.

Nothing here reads clocks (simulated or wall); the registry only counts
what instrumentation hands it.
"""

from __future__ import annotations

import bisect
from typing import Any

from ..exceptions import DataError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def format_bound(bound: float) -> str:
    """Render one histogram bucket bound the way Prometheus does.

    Integral bounds drop the trailing ``.0`` and infinity becomes
    ``+Inf``, so snapshots and the text exposition agree.
    """
    if bound == float("inf"):
        return "+Inf"
    value = float(bound)
    if value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """One monotonically increasing series."""

    def __init__(self) -> None:
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the series."""
        if amount < 0:
            raise DataError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """One last-value-wins series."""

    def __init__(self) -> None:
        self.value: int | float = 0

    # corlint: disable-next-line=CL006 — Prometheus gauge verb
    def set(self, value: int | float) -> None:
        """Replace the series value."""
        self.value = value


class Histogram:
    """One fixed-bucket distribution series.

    ``bounds`` are the *upper* bucket bounds in increasing order; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    Counts are stored per bucket (non-cumulative) and rendered
    cumulatively, matching Prometheus histogram semantics.
    """

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += float(value)
        self.count += 1


class MetricFamily:
    """All series of one metric name, keyed by label values."""

    def __init__(self, kind: str, name: str, help_text: str,
                 label_names: tuple[str, ...] = (),
                 buckets: tuple[float, ...] | None = None) -> None:
        self.kind = kind
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._series: dict[tuple[str, ...], Any] = {}

    def labels(self, **labels: str) -> Any:
        """The series for one label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise DataError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        if key not in self._series:
            self._series[key] = self._new_series()
        return self._series[key]

    def inc(self, amount: int | float = 1, **labels: str) -> None:
        """Increment the (labelled) counter series."""
        self.labels(**labels).inc(amount)

    # corlint: disable-next-line=CL006 — Prometheus gauge verb
    def set(self, value: int | float, **labels: str) -> None:
        """Set the (labelled) gauge series."""
        self.labels(**labels).set(value)

    def observe(self, value: int | float, **labels: str) -> None:
        """Observe into the (labelled) histogram series."""
        self.labels(**labels).observe(value)

    def _new_series(self) -> Any:
        if self.kind == COUNTER:
            return Counter()
        if self.kind == GAUGE:
            return Gauge()
        return Histogram(self.buckets or ())

    # -- serialization --------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """This family as an ordered, JSON-compatible dict."""
        series = []
        for key in sorted(self._series):
            entry: dict[str, Any] = {
                "labels": dict(zip(self.label_names, key)),
            }
            child = self._series[key]
            if self.kind == HISTOGRAM:
                cumulative, running = [], 0
                for bound, count in zip((*child.bounds, float("inf")),
                                        child.counts):
                    running += count
                    cumulative.append({"le": format_bound(bound),
                                       "count": running})
                entry["buckets"] = cumulative
                entry["count"] = child.count
                entry["sum"] = child.sum
            else:
                entry["value"] = child.value
            series.append(entry)
        return {
            "type": self.kind,
            "help": self.help_text,
            "label_names": list(self.label_names),
            "series": series,
        }

    def state_dict(self) -> list[list[Any]]:
        """Raw series state (label values + internal counters)."""
        state = []
        for key in sorted(self._series):
            child = self._series[key]
            if self.kind == HISTOGRAM:
                value: Any = {"counts": list(child.counts),
                              "sum": child.sum, "count": child.count}
            else:
                value = child.value
            state.append([list(key), value])
        return state

    def load_state(self, state: list[list[Any]]) -> None:
        """Restore series captured by :meth:`state_dict`."""
        self._series.clear()
        for key, value in state:
            child = self._new_series()
            if self.kind == HISTOGRAM:
                child.counts = [int(c) for c in value["counts"]]
                child.sum = float(value["sum"])
                child.count = int(value["count"])
            else:
                child.value = value
            self._series[tuple(str(k) for k in key)] = child


class MetricsRegistry:
    """A named collection of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def counter(self, name: str, help_text: str = "",
                label_names: tuple[str, ...] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(COUNTER, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: tuple[str, ...] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(GAUGE, name, help_text, label_names)

    def histogram(self, name: str, buckets: tuple[float, ...],
                  help_text: str = "",
                  label_names: tuple[str, ...] = ()) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(HISTOGRAM, name, help_text, label_names,
                              buckets=tuple(float(b) for b in buckets))

    def get(self, name: str) -> MetricFamily:
        """The registered family called ``name``."""
        try:
            return self._families[name]
        except KeyError:
            raise DataError(f"unknown metric {name!r}") from None

    def _register(self, kind: str, name: str, help_text: str,
                  label_names: tuple[str, ...],
                  buckets: tuple[float, ...] | None = None) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise DataError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        family = MetricFamily(kind, name, help_text,
                              tuple(label_names), buckets)
        self._families[name] = family
        return family

    def snapshot(self) -> dict[str, Any]:
        """Every family, name-sorted, as one JSON-compatible dict."""
        return {name: self._families[name].snapshot()
                for name in sorted(self._families)}

    def state_dict(self) -> dict[str, Any]:
        """Checkpointable registry state (series values only)."""
        return {name: family.state_dict()
                for name, family in sorted(self._families.items())
                if family.state_dict()}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore series state into the already-registered families.

        Families absent from ``state`` are reset to empty; unknown names
        in ``state`` are an error (the catalog is fixed per run).
        """
        for name, family in self._families.items():
            family.load_state(state.get(name, []))
        unknown = set(state) - set(self._families)
        if unknown:
            raise DataError(
                f"checkpoint carries unregistered metrics: {sorted(unknown)}"
            )
