"""Nested span tracing on the engine's simulated clock.

A :class:`SpanTracer` records a tree of spans — run, stage,
matcher-iteration, hot-path section — where every span carries its
parent id and a duration in *simulated* seconds read from the run's
shared :class:`~repro.crowd.latency.SimulatedClock`.  Nothing touches
wall time (that is :mod:`repro.obs.profiling`'s clearly-marked job), so
spans share the event trace's determinism contract: a seeded run, its
replay and a kill/resume all produce byte-identical ``spans.jsonl``.

The bit-identity across kill/resume is stronger than ``trace.jsonl``'s
append-only contract and needs a different write discipline: completed
spans live in memory, ride inside the engine checkpoint via
:meth:`SpanTracer.state_dict`, and the whole file is atomically
*rewritten* from that state at every checkpoint and at run end — so a
resumed run's final file is the uninterrupted run's, byte for byte.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..exceptions import DataError
from ..storage.writer import atomic_write_text

SPANS_FILE = "spans.jsonl"

SPAN_NAMES = (
    "run",
    "stage",
    "section",
    "matcher_iteration",
    "shard",
)
"""The closed registry of span names.

corlint CL017 requires every literal ``SpanTracer.start(...)`` /
``.span(...)`` name argument to come from this tuple, mirroring what
CL009 does for event names — the span hierarchy documented in
``docs/observability.md`` stays the whole story.
"""


class _ZeroClock:
    """The clock used when the platform stack keeps no simulated time."""

    now = 0.0


class SpanTracer:
    """Builds the span tree and serializes it deterministically."""

    def __init__(self, clock: Any | None = None) -> None:
        self.clock = clock if clock is not None else _ZeroClock()
        self._open: list[dict[str, Any]] = []
        self._completed: list[dict[str, Any]] = []
        self._next_id = 0

    # -- recording ------------------------------------------------------

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 = idle)."""
        return len(self._open)

    @property
    def completed(self) -> list[dict[str, Any]]:
        """Completed span records, in completion order (do not mutate)."""
        return self._completed

    @property
    def innermost_open(self) -> dict[str, Any] | None:
        """The innermost open span record, if any (do not mutate)."""
        return self._open[-1] if self._open else None

    def start(self, name: str, **attrs: Any) -> int:
        """Open a span under the innermost open span; returns its id."""
        span_id = self._next_id
        self._next_id += 1
        self._open.append({
            "id": span_id,
            "parent": self._open[-1]["id"] if self._open else None,
            "name": name,
            "attrs": dict(attrs),
            "start_time": float(self.clock.now),
        })
        return span_id

    def end(self, span_id: int) -> dict[str, Any]:
        """Close the innermost open span (which must be ``span_id``)."""
        if not self._open or self._open[-1]["id"] != span_id:
            raise DataError(
                f"span {span_id} is not the innermost open span"
            )
        span = self._open.pop()
        end_time = float(self.clock.now)
        span["end_time"] = end_time
        span["duration"] = round(end_time - span["start_time"], 9)
        self._completed.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Context manager: open on entry, close on exit (even raising)."""
        span_id = self.start(name, **attrs)
        try:
            yield span_id
        finally:
            self.end(span_id)

    def close_all_open(self) -> None:
        """Close every open span, innermost first (end of run)."""
        while self._open:
            self.end(self._open[-1]["id"])

    # -- serialization --------------------------------------------------

    def lines(self) -> list[str]:
        """Completed spans as canonical JSON lines."""
        return [json.dumps(span, sort_keys=True)
                for span in self._completed]

    def write(self, path: str | Path, writer: Any = None) -> None:
        """Atomically rewrite ``path`` from the completed spans.

        Goes through :mod:`repro.storage.writer`.  With an
        :class:`~repro.storage.writer.ArtifactWriter` the file is
        written fully durable and recorded in the run manifest (the
        run-end export); without one it is a volatile snapshot —
        atomic replace, no fsync, unmanifested — the per-checkpoint
        live path, regenerated from checkpointed tracer state on
        resume.
        """
        path = Path(path)
        body = "".join(line + "\n" for line in self.lines())
        if writer is not None:
            writer.atomic_write_text(path, body)
        else:
            atomic_write_text(path, body, durable=False)

    def state_dict(self) -> dict[str, Any]:
        """Checkpointable tracer state (completed + open spans)."""
        return {
            "next_id": self._next_id,
            "open": [dict(span) for span in self._open],
            "completed": [dict(span) for span in self._completed],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._next_id = int(state["next_id"])
        self._open = [dict(span) for span in state["open"]]
        self._completed = [dict(span) for span in state["completed"]]


def read_spans(path: str | Path) -> list[dict[str, Any]]:
    """Parse a ``spans.jsonl`` file back into span records.

    Shares :func:`repro.engine.events.read_trace`'s torn-tail repair
    semantics: a run killed mid-write may leave a truncated *final*
    line, which is silently dropped — ``watch``/``serve`` must never
    crash on an in-flight file.  An invalid line anywhere *before* the
    tail cannot be a torn write and raises :class:`DataError`.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    last_index = len(lines) - 1
    records = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == last_index:
                break
            raise DataError(
                f"{path}: invalid JSON on spans line {index + 1} "
                f"(not a torn tail — line {len(lines)} follows it)"
            ) from None
    return records
