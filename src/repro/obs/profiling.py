"""Wall-clock profiling hooks for the hot paths — NOT deterministic.

Everything else in :mod:`repro.obs` is simulated-time and bit-identical
across replays; this module is the one sanctioned exception.  It
measures *real* wall time (``time.perf_counter``) around the hot
sections — the batched feature kernels, forest training, the blocker's
streaming flush — and dumps the totals to ``profile.json``.  Profiles
are therefore excluded from traces, spans, metrics and checkpoints, and
``profile.json`` carries an explicit ``deterministic: false`` marker so
no tooling ever diffs it across runs.

Most of the hot paths live inside corlint CL001's wall-clock-free zone
(``core/``, ``forest/``, ``crowd/``, ``rules/``), so they must not
read clocks directly; instead they call :func:`profile_section`, which
is a near-no-op unless a profiler has been activated (the engine
activates one for the duration of a run).  The clock reads happen
here, in ``obs/``, outside CL001's scope — by design, not by loophole:
the measurements never feed back into any algorithmic decision.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..storage.writer import atomic_write_json

PROFILE_FILE = "profile.json"

SECTION_NAMES = (
    "blocker.shard_prewarm",
    "blocker.shard_flush",
    "blocker.stream_flush",
    "blocker.plan_flush",
    "features.vectorize_pairs",
    "forest.train_forest",
)
"""The closed registry of profiled hot-path sections.

corlint CL017 requires every ``profile_section(...)`` call site to pass
a string literal drawn from this tuple, so the profile schema stays
greppable and ``docs/observability.md`` can enumerate it.  Worker-side
sections are re-keyed as ``worker{slot}.{name}`` when merged (see
:mod:`repro.obs.workers`); only the base names are registered here.
"""

_ACTIVE: list["Profiler"] = []
"""The activation stack; :func:`profile_section` reports to the top."""


class Profiler:
    """Accumulates wall-clock call counts and seconds per section."""

    def __init__(self) -> None:
        self.sections: dict[str, dict[str, float]] = {}

    def record(self, name: str, seconds: float) -> None:
        """Add one timed call to section ``name``."""
        entry = self.sections.setdefault(name,
                                         {"calls": 0, "seconds": 0.0})
        entry["calls"] += 1
        entry["seconds"] += seconds

    def to_dict(self) -> dict[str, Any]:
        """The profile document written to ``profile.json``."""
        return {
            "format": "corleone-profile",
            "deterministic": False,
            "note": ("wall-clock seconds; varies run to run and is "
                     "excluded from traces, spans and checkpoints"),
            "sections": {
                name: {"calls": int(entry["calls"]),
                       "seconds": round(entry["seconds"], 6)}
                for name, entry in sorted(self.sections.items())
            },
        }

    def write(self, path: str | Path) -> None:
        """Atomically write the profile document.

        Routed through :mod:`repro.storage.writer` as a volatile
        snapshot (atomic replace, no fsync) and never recorded in the
        run manifest: the profile is wall-clock noise by design, so a
        checksum over it would flag every legitimate rewrite as
        corruption — and losing it to a power cut loses nothing.
        """
        atomic_write_json(Path(path), self.to_dict(), indent=2,
                          sort_keys=True, durable=False)


def activate(profiler: Profiler) -> None:
    """Make ``profiler`` the target of :func:`profile_section`."""
    _ACTIVE.append(profiler)


def deactivate(profiler: Profiler) -> None:
    """Remove ``profiler`` from the activation stack (no-op if absent)."""
    if profiler in _ACTIVE:
        _ACTIVE.remove(profiler)


@contextmanager
def profile_section(name: str):
    """Time a hot-path section on the active profiler (if any).

    With no active profiler this is a cheap pass-through, so the hot
    paths can keep the call unconditionally.
    """
    if not _ACTIVE:
        yield
        return
    profiler = _ACTIVE[-1]
    started = time.perf_counter()
    try:
        yield
    finally:
        profiler.record(name, time.perf_counter() - started)
