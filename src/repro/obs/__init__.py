"""Run telemetry: metrics, spans, wall-clock profiles, run inspection.

The observability layer of the staged engine (``docs/observability.md``):

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket
  histograms with deterministic JSON snapshots;
* :mod:`repro.obs.spans` — nested spans on the shared simulated clock,
  written as ``spans.jsonl`` and bit-identical across seeded replays
  and kill/resume;
* :mod:`repro.obs.profiling` — the one wall-clock instrument, dumped
  to ``profile.json`` and excluded from every deterministic artifact;
* :mod:`repro.obs.hooks` — ambient hooks the algorithmic hot paths
  report through without ever seeing a run context;
* :mod:`repro.obs.telemetry` — the per-run binder feeding metrics from
  the event bus and direct instrumentation;
* :mod:`repro.obs.workers` — worker-side telemetry capture for the
  sharded executor (logical worker slots, section shipping/merge);
* :mod:`repro.obs.prometheus` — text-exposition rendering;
* :mod:`repro.obs.report` — the ``python -m repro.obs report`` tables;
* :mod:`repro.obs.progress` — the live ``progress.json`` heartbeat;
* :mod:`repro.obs.tail` — incremental, torn-tolerant trace tailing;
* :mod:`repro.obs.serve` — the ``/metrics`` + ``/progress`` +
  ``/trace`` run-monitor HTTP endpoint;
* :mod:`repro.obs.diffing` — cross-run telemetry diffing;
* :mod:`repro.obs.timing` — the single platform-timing scraper behind
  every ``timing`` report section.

This package namespace re-exports only the engine-independent pieces:
:mod:`~repro.obs.telemetry`, :mod:`~repro.obs.report`,
:mod:`~repro.obs.progress`, :mod:`~repro.obs.serve` and
:mod:`~repro.obs.diffing` import engine modules (directly or through
the report loader) and are imported lazily by their users (the run
context, the CLI) to keep package initialization cycle-free — import
them by their full dotted path.
"""

from .prometheus import render_prometheus
from .profiling import PROFILE_FILE, SECTION_NAMES, Profiler, \
    profile_section
from .registry import MetricsRegistry
from .spans import SPAN_NAMES, SPANS_FILE, SpanTracer, read_spans
from .tail import TraceTail
from .timing import platform_timing
from .workers import capture_worker_sections, merge_worker_sections, \
    worker_slot

__all__ = [
    "MetricsRegistry",
    "PROFILE_FILE",
    "Profiler",
    "SECTION_NAMES",
    "SPAN_NAMES",
    "SPANS_FILE",
    "SpanTracer",
    "TraceTail",
    "capture_worker_sections",
    "merge_worker_sections",
    "platform_timing",
    "profile_section",
    "read_spans",
    "render_prometheus",
    "worker_slot",
]
