"""Deterministic filesystem fault injection for the storage layer.

The disk-side sibling of :mod:`repro.crowd.faults`: where that module
makes the *crowd* misbehave on a replayable schedule, this one makes
the *filesystem* misbehave — torn writes, a full disk, a process crash
straddling the atomic-replace sequence, bit rot on a file at rest, and
stale ``.tmp`` leftovers.  The same determinism contract applies: every
fault kind draws from its own named, seed-derived RNG stream
(:func:`storage_fault_seed`), so a given seed reproduces the exact
same torn-byte offsets and bit positions, and the crash-consistency
harness (``tests/test_storage_chaos.py``) can assert bit-identical
recovery.

An injector interposes on the numbered steps of
:func:`repro.storage.writer._atomic_write` via a module activation
stack (the :data:`repro.obs.profiling._ACTIVE` pattern): production
code never imports this module's machinery, it just hits the hook
points, which are no-ops unless a test armed an injector.  The fault
taxonomy, and where each fault lands in the write sequence:

================  ====================================================
kind              effect
================  ====================================================
torn_write        tmp file truncated at a drawn byte offset, then the
                  process "crashes" (:class:`SimulatedCrashError`) —
                  the target keeps its old complete content
enospc            the tmp write raises ``OSError(ENOSPC)`` — the write
                  fails cleanly, the caller sees a real disk error
crash_before      crash after the tmp is complete and fsynced but
                  before ``os.replace`` — old target + stale ``.tmp``
crash_after       crash after ``os.replace`` but before the directory
                  fsync — new target already visible
bitflip           one deterministic bit of a *finished* artifact is
                  inverted in place (bit rot at rest; applied by the
                  harness between kill and resume)
stale_tmp         junk ``*.tmp`` files scattered into a directory, as
                  a crashed predecessor would leave behind
================  ====================================================

The two crash kinds simulate a ``kill -9`` by raising
:class:`SimulatedCrashError` in-process; cleanup ``finally`` blocks do
run (unlike a real kill), which is the same compromise the engine's
existing kill/resume sweeps make — byte-identity of the *resumed* run
is what the harness asserts, and that is unaffected.
"""

from __future__ import annotations

import errno
import os
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from .writer import TMP_SUFFIX

__all__ = [
    "STORAGE_FAULT_KINDS",
    "SimulatedCrashError",
    "StorageFaultInjector",
    "activate",
    "active_injector",
    "deactivate",
    "storage_fault_seed",
]

FAULT_TORN_WRITE = "torn_write"
FAULT_ENOSPC = "enospc"
FAULT_CRASH_BEFORE = "crash_before"
FAULT_CRASH_AFTER = "crash_after"
FAULT_BITFLIP = "bitflip"
FAULT_STALE_TMP = "stale_tmp"

STORAGE_FAULT_KINDS = (
    FAULT_TORN_WRITE,
    FAULT_ENOSPC,
    FAULT_CRASH_BEFORE,
    FAULT_CRASH_AFTER,
    FAULT_BITFLIP,
    FAULT_STALE_TMP,
)
"""Every storage fault kind, each with its own RNG stream."""

_ACTIVE: list["StorageFaultInjector"] = []
"""The activation stack; the writer's hook points consult the top."""


class SimulatedCrashError(BaseException):
    """The process "died" mid-write (injected, test harness only).

    Derives from :class:`BaseException` — not ``Exception`` — so no
    production ``except Exception`` handler can accidentally swallow a
    simulated crash and carry on as if the write had succeeded; only
    the harness that armed the injector catches it.
    """

    def __init__(self, kind: str, path: Path) -> None:
        super().__init__(f"simulated crash ({kind}) while writing {path}")
        self.kind = kind
        self.path = Path(path)


def storage_fault_seed(root: int | np.random.SeedSequence,
                       kind: str) -> np.random.SeedSequence:
    """The named seed sequence for one storage-fault kind's stream.

    Mirrors :func:`repro.crowd.faults.fault_stream_seed` (and through
    it :meth:`repro.engine.context.RunContext.rng`): a deterministic
    function of the root seed and the stream *name* only, so arming one
    fault kind never shifts another kind's draws.
    """
    if not isinstance(root, np.random.SeedSequence):
        root = np.random.SeedSequence(root)
    key = zlib.crc32(f"storage.{kind}".encode("utf-8"))
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=(*root.spawn_key, key),
    )


def activate(injector: "StorageFaultInjector") -> None:
    """Make ``injector`` the target of the writer's hook points."""
    _ACTIVE.append(injector)


def deactivate(injector: "StorageFaultInjector") -> None:
    """Remove ``injector`` from the activation stack (no-op if absent)."""
    if injector in _ACTIVE:
        _ACTIVE.remove(injector)


def active_injector() -> "StorageFaultInjector | None":
    """The injector the writer should consult, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


class StorageFaultInjector:
    """Arms one storage fault against one write site, deterministically.

    The harness arms a (kind, filename-substring, occurrence) triple
    with :meth:`arm`; when the matching write reaches the fault's hook
    point, the injector fires once and disarms.  Use as a context
    manager to scope activation::

        injector = StorageFaultInjector(seed=7)
        injector.arm("torn_write", "checkpoint.json", skip=2)
        with injector:
            ...   # the third checkpoint.json write is torn

    Counts are kept per kind (`counts`) so the harness and the
    benchmark sweep can report how many faults actually fired.
    """

    def __init__(self, seed: int | np.random.SeedSequence = 0) -> None:
        self._rngs = {
            kind: np.random.default_rng(storage_fault_seed(seed, kind))
            for kind in STORAGE_FAULT_KINDS
        }
        self.counts: dict[str, int] = dict.fromkeys(STORAGE_FAULT_KINDS, 0)
        """Faults fired so far, by kind."""
        self._armed_kind: str | None = None
        self._armed_match: str = ""
        self._armed_skip = 0
        self.fired: SimulatedCrashError | None = None
        """The crash this injector raised, if any (harness telemetry)."""

    def __enter__(self) -> "StorageFaultInjector":
        activate(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        deactivate(self)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self, kind: str, match: str, skip: int = 0) -> None:
        """Schedule one fault of ``kind`` against the next write whose
        target filename contains ``match``, after skipping ``skip``
        earlier matches.  Only one fault is armed at a time; it disarms
        when it fires."""
        if kind not in STORAGE_FAULT_KINDS:
            raise ValueError(f"unknown storage fault kind: {kind!r}")
        self._armed_kind = kind
        self._armed_match = match
        self._armed_skip = int(skip)

    @property
    def armed(self) -> bool:
        """Whether a fault is scheduled and has not fired yet."""
        return self._armed_kind is not None

    def _take(self, kind: str, path: Path) -> bool:
        """True if the armed fault is ``kind`` and matches this write
        (consuming one skip otherwise)."""
        if self._armed_kind != kind or self._armed_match not in path.name:
            return False
        if self._armed_skip > 0:
            # Count down on *any* hook of the matching write, keyed to
            # the kind's own hook point so one write decrements once.
            self._armed_skip -= 1
            return False
        self._armed_kind = None
        self.counts[kind] += 1
        return True

    def _crash(self, kind: str, path: Path) -> None:
        """Raise (and remember) one simulated crash."""
        self.fired = SimulatedCrashError(kind, path)
        raise self.fired

    # ------------------------------------------------------------------
    # Hook points (called by repro.storage.writer._atomic_write)
    # ------------------------------------------------------------------

    def during_tmp_write(self, path: Path, tmp: Path, handle: Any) -> None:
        """Hook after the payload hits the tmp handle, before fsync."""
        if self._take(FAULT_TORN_WRITE, path):
            handle.flush()
            size = os.fstat(handle.fileno()).st_size
            # Tear strictly inside the payload: at least one byte is
            # lost, at least zero survive.
            cut = (int(self._rngs[FAULT_TORN_WRITE].integers(0, size))
                   if size > 0 else 0)
            os.ftruncate(handle.fileno(), cut)
            self._crash(FAULT_TORN_WRITE, path)
        if self._take(FAULT_ENOSPC, path):
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC),
                          str(tmp))

    def before_replace(self, path: Path, tmp: Path) -> None:
        """Hook between the tmp fsync and ``os.replace``."""
        if self._take(FAULT_CRASH_BEFORE, path):
            self._crash(FAULT_CRASH_BEFORE, path)

    def after_replace(self, path: Path) -> None:
        """Hook between ``os.replace`` and the directory fsync."""
        if self._take(FAULT_CRASH_AFTER, path):
            self._crash(FAULT_CRASH_AFTER, path)

    # ------------------------------------------------------------------
    # At-rest faults (applied by the harness, not via write hooks)
    # ------------------------------------------------------------------

    def flip_bit(self, path: str | Path) -> int:
        """Invert one deterministic bit of ``path`` in place.

        Simulates bit rot on a finished artifact: the byte offset and
        bit index come from the ``bitflip`` stream.  Returns the byte
        offset flipped.  The write is deliberately *not* atomic — rot
        does not announce itself.
        """
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            return 0
        rng = self._rngs[FAULT_BITFLIP]
        offset = int(rng.integers(0, len(data)))
        bit = int(rng.integers(0, 8))
        data[offset] ^= 1 << bit
        path.write_bytes(bytes(data))
        self.counts[FAULT_BITFLIP] += 1
        return offset

    def scatter_stale_tmp(self, directory: str | Path,
                          count: int = 2) -> list[Path]:
        """Drop ``count`` junk ``*.tmp`` files into ``directory``.

        Reproduces what a crashed predecessor leaves behind; resume is
        expected to sweep them (`repro.storage.recovery.cleanup_stale_tmp`).
        Contents and names are drawn from the ``stale_tmp`` stream.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        rng = self._rngs[FAULT_STALE_TMP]
        paths = []
        for _ in range(count):
            token = int(rng.integers(0, 1 << 30))
            junk = rng.integers(0, 256,
                                size=int(rng.integers(1, 64)),
                                dtype=np.uint8).tobytes()
            path = directory / f"stale-{token:08x}.json{TMP_SUFFIX}"
            path.write_bytes(junk)
            paths.append(path)
            self.counts[FAULT_STALE_TMP] += 1
        return paths
