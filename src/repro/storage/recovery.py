"""Read-side recovery: verify, quarantine, sweep, repair.

The write side (:mod:`repro.storage.writer`) guarantees each artifact
is either its old or its new complete content; this module is what a
*resuming* run uses to cope with everything the guarantee does not
cover — bit rot at rest, a stale manifest entry from a mid-batch
crash, ``.tmp`` droppings from a dead predecessor, and a torn tail on
the append-only trace.

The policy, applied by :func:`repro.engine.checkpoint.load_checkpoint`:

* an artifact whose manifest sha256 matches is trusted outright;
* one with **no** manifest entry (pre-durability run directory, or a
  crash landed between the artifact replace and the manifest flush) is
  accepted if it parses and passes its format check — the manifest is
  metadata, never the artifact of record;
* one whose entry **mismatches** is corrupt: it is moved under
  ``<run_dir>/quarantine/`` (never silently deleted — the bytes are
  evidence) and the loader falls back to the next-newest checkpoint
  generation.  The engine's kill/resume sweeps prove a resume from
  *any* checkpoint is bit-identical, so falling back is always safe;
* when nothing verifies, the caller raises a typed
  :class:`~repro.exceptions.DataError` naming the file and both
  checksums — never a raw JSON or numpy traceback.

Every recovery action is collected on a :class:`RecoveryLog`; the
pipeline replays the log onto the event bus once the bus exists (the
checkpoint is loaded *before* the engine is constructed, so there is
nothing to emit to at detection time).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from .writer import TMP_SUFFIX, file_sha256, load_manifest

__all__ = [
    "QUARANTINE_DIR",
    "RecoveryLog",
    "cleanup_stale_tmp",
    "quarantine_artifact",
    "repair_trace",
    "verify_artifact",
]

QUARANTINE_DIR = "quarantine"
"""Corrupt artifacts are moved (not deleted) under this run-dir child."""


class RecoveryLog:
    """Recovery actions observed before the event bus exists.

    ``load_checkpoint`` runs during resume, *before* the pipeline has
    built its :class:`~repro.engine.events.EventBus` — so recovery
    detections cannot be emitted at the moment they happen.  The log
    buffers them as ``(event_name, payload)`` records; the pipeline
    calls :meth:`replay` right after the bus's sequence counter has
    been restored, so recovery events land in the resumed trace in
    order.  On non-corrupt resumes the log stays empty and the trace is
    byte-identical to an uninterrupted run's.
    """

    def __init__(self) -> None:
        self.records: list[tuple[str, dict[str, Any]]] = []

    def emit(self, event_name: str, **payload: Any) -> None:
        """Buffer one recovery event for later (re-)emission."""
        self.records.append((event_name, dict(payload)))

    def replay(self, bus: Any) -> None:
        """Emit every buffered record onto ``bus``, oldest first."""
        for name, payload in self.records:
            bus.emit(name, **payload)
        self.records.clear()


def verify_artifact(root: str | Path, path: str | Path,
                    manifest: dict[str, Any] | None = None,
                    ) -> tuple[bool | None, str, str | None]:
    """Check one artifact's bytes against the run manifest.

    Returns ``(verdict, actual_sha, expected_sha)`` where ``verdict``
    is True (entry matches), False (entry mismatches — the file is
    corrupt or the manifest is stale) or None (no entry — verification
    unavailable, the caller falls back to content-level checks).
    ``manifest`` lets callers checking many artifacts load the ledger
    once.
    """
    root = Path(root)
    path = Path(path)
    if manifest is None:
        manifest = load_manifest(root)
    if manifest is None:
        return None, "", None
    try:
        key = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        key = path.name
    entry = manifest.get(key)
    if not isinstance(entry, dict) or "sha256" not in entry:
        return None, "", None
    expected = str(entry["sha256"])
    actual = file_sha256(path)
    return actual == expected, actual, expected


def quarantine_artifact(run_dir: str | Path, path: str | Path) -> Path:
    """Move a corrupt artifact under ``<run_dir>/quarantine/``.

    Naming is deterministic (no wall clock, per the determinism
    contract): the original filename, with an integer suffix appended
    if a previous quarantine already claimed it.  Returns the new
    location.
    """
    run_dir = Path(run_dir)
    path = Path(path)
    pen = run_dir / QUARANTINE_DIR
    pen.mkdir(parents=True, exist_ok=True)
    target = pen / path.name
    counter = 1
    while target.exists():
        target = pen / f"{path.name}.{counter}"
        counter += 1
    os.replace(path, target)
    return target


def cleanup_stale_tmp(run_dir: str | Path) -> list[Path]:
    """Remove ``*.tmp`` leftovers a crashed predecessor abandoned.

    An in-flight write that died between the tmp write and the replace
    leaves its tmp file behind; the artifact itself is intact (old
    content), so the leftovers are pure litter.  Swept recursively at
    resume.  Returns the removed paths, sorted for determinism.
    """
    run_dir = Path(run_dir)
    removed: list[Path] = []
    if not run_dir.is_dir():
        return removed
    for path in sorted(run_dir.rglob(f"*{TMP_SUFFIX}")):
        if path.is_file():
            path.unlink()
            removed.append(path)
    return removed


def repair_trace(path: str | Path) -> int:
    """Truncate a torn final line off an append-only JSONL trace.

    :class:`~repro.engine.events.JsonlTraceSink` writes one line per
    event and flushes; a crash mid-append can persist a prefix of the
    final line.  Every complete line ends in a newline, so a file whose
    last byte is not ``\\n`` carries a torn tail: cut it back to the
    last newline (or to empty).  Resume appends new events after the
    repair point — without this, fresh JSON would be concatenated onto
    the torn fragment and corrupt the line *beyond* repair.

    Returns the number of bytes truncated (0 for a clean trace).
    """
    path = Path(path)
    if not path.is_file():
        return 0
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return 0
    keep = data.rfind(b"\n") + 1
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return len(data) - keep
