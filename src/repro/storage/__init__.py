"""Durable artifact storage: atomic writes, manifests, fault recovery.

The storage layer owns every byte the run directory holds.  Three
modules:

* :mod:`~repro.storage.writer` — the one sanctioned way to write a
  run-directory artifact: tmp file, fsync, atomic replace, directory
  fsync, and a per-run ``MANIFEST.json`` ledger of sha256 + generation
  per artifact (corlint CL016 pins every write site to it);
* :mod:`~repro.storage.recovery` — the read-side policy: checksum
  verification, quarantine of corrupt artifacts, stale-``.tmp``
  sweeping and torn-trace repair, with a :class:`RecoveryLog` carrying
  detections to the event bus;
* :mod:`~repro.storage.faults` — deterministic filesystem fault
  injection (torn writes, ``ENOSPC``, crashes straddling the replace,
  bit rot, stale tmp litter) powering the crash-consistency harness.

See ``docs/robustness.md`` ("Storage durability") for the failure
model and recovery semantics.
"""

from .faults import (
    STORAGE_FAULT_KINDS,
    SimulatedCrashError,
    StorageFaultInjector,
    storage_fault_seed,
)
from .recovery import (
    QUARANTINE_DIR,
    RecoveryLog,
    cleanup_stale_tmp,
    quarantine_artifact,
    repair_trace,
    verify_artifact,
)
from .writer import (
    MANIFEST_FILE,
    ArtifactWriter,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    atomic_write_text,
    file_sha256,
    fsync_enabled,
    load_manifest,
    set_fsync,
    sha256_hex,
)

__all__ = [
    "MANIFEST_FILE",
    "QUARANTINE_DIR",
    "STORAGE_FAULT_KINDS",
    "ArtifactWriter",
    "RecoveryLog",
    "SimulatedCrashError",
    "StorageFaultInjector",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "atomic_write_text",
    "cleanup_stale_tmp",
    "file_sha256",
    "fsync_enabled",
    "load_manifest",
    "quarantine_artifact",
    "repair_trace",
    "set_fsync",
    "sha256_hex",
    "storage_fault_seed",
    "verify_artifact",
]
