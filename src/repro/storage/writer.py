"""Durable artifact writes: one fsync discipline for the whole tree.

Every run-directory artifact used to be persisted by a hand-rolled
``tmp + os.replace`` block — six copies, none of which called
``fsync``, so a crash at the wrong moment could surface a rename whose
*data* never reached the disk, and nothing recorded what the bytes were
supposed to be.  This module centralizes the discipline:

1. write the full payload to ``<name>.tmp`` in the target directory;
2. ``fsync`` the tmp file (the data is durable before it is visible);
3. ``os.replace`` the tmp over the target (atomic on POSIX);
4. ``fsync`` the parent directory (the *rename* is durable too).

:class:`ArtifactWriter` layers bookkeeping on top: a per-run
``MANIFEST.json`` mapping each artifact's run-relative path to its
sha256, byte count and a monotonically increasing *generation*, so
readers (:mod:`repro.storage.recovery`) can tell a bit-rotted file from
the bytes the writer actually produced.  The manifest itself is written
with the same discipline, always *after* the artifacts it describes —
a crash between the two leaves a stale manifest, which the read side
resolves by falling back to the newest artifact that still verifies.

Fault injection (:mod:`repro.storage.faults`) hooks the numbered steps
above: an activated injector can tear the tmp file at byte *k*, raise
``ENOSPC`` mid-write, or crash the process between any two steps —
which is how the crash-consistency harness proves the discipline holds.

``durable=False`` downgrades a write to a *volatile snapshot*: the tmp
stage and atomic replace are kept (a concurrent reader still never
sees a torn file) but both fsyncs are skipped, so a power loss may
surface the previous complete version instead of the new one.  Reserve
it for advisory artifacts that are regenerated from durable state —
the live telemetry exports, the progress heartbeat, the wall-clock
profile — never for anything resume reads.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "MANIFEST_FILE",
    "ArtifactWriter",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "atomic_write_text",
    "file_sha256",
    "fsync_enabled",
    "load_manifest",
    "set_fsync",
    "sha256_hex",
]

MANIFEST_FILE = "MANIFEST.json"
"""Per-run artifact ledger (sha256 + generation per artifact)."""

MANIFEST_FORMAT = "corleone-manifest"
MANIFEST_VERSION = 1

TMP_SUFFIX = ".tmp"
"""Suffix of in-flight write files (stale ones are crash leftovers)."""

_HASH_CHUNK = 1 << 20

_FSYNC = os.environ.get("CORLEONE_STORAGE_FSYNC", "1") != "0"
"""Module-wide fsync switch.  Disabled only by the durability-overhead
benchmark (``collect_results.py --storage``), which measures exactly
what the discipline costs; production and tests keep it on."""


def set_fsync(enabled: bool) -> None:
    """Toggle the fsync discipline (benchmark baseline only)."""
    global _FSYNC
    _FSYNC = bool(enabled)


def fsync_enabled() -> bool:
    """Whether writes currently fsync file and directory."""
    return _FSYNC


def sha256_hex(data: bytes) -> str:
    """The sha256 hex digest of an in-memory payload."""
    return hashlib.sha256(data).hexdigest()


def file_sha256(path: str | Path) -> str:
    """The sha256 hex digest of a file, read in bounded chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while chunk := handle.read(_HASH_CHUNK):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_file(handle: Any) -> None:
    """Flush and fsync one open file handle (if the discipline is on)."""
    handle.flush()
    if _FSYNC:
        os.fsync(handle.fileno())


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-completed rename is durable."""
    if not _FSYNC:
        return
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _active_injector():
    """The currently activated fault injector, if any (lazy import)."""
    from .faults import active_injector

    return active_injector()


def atomic_write_bytes(path: str | Path, data: bytes,
                       durable: bool = True) -> str:
    """Durably replace ``path`` with ``data``; return the sha256.

    Implements the full discipline (tmp write, file fsync, atomic
    replace, directory fsync).  A crash at any point leaves either the
    old complete file or the new complete file at ``path`` — never a
    torn mix — plus at worst a stale ``.tmp`` neighbour for
    :func:`repro.storage.recovery.cleanup_stale_tmp` to sweep.
    ``durable=False`` skips both fsyncs (see the module docstring) —
    replace-atomicity survives, power-loss durability does not.
    """

    def write(handle: Any) -> None:
        handle.write(data)

    return _atomic_write(Path(path), write, precomputed=sha256_hex(data),
                         durable=durable)


def atomic_write_text(path: str | Path, text: str,
                      durable: bool = True) -> str:
    """Durably replace ``path`` with UTF-8 ``text``; return the sha256."""
    return atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


def atomic_write_json(path: str | Path, document: Any,
                      indent: int | None = None,
                      sort_keys: bool = False,
                      durable: bool = True) -> str:
    """Durably replace ``path`` with a JSON document; return the sha256."""
    return atomic_write_text(
        path, json.dumps(document, indent=indent, sort_keys=sort_keys),
        durable=durable)


def atomic_write_npz(path: str | Path, arrays: dict[str, Any],
                     compressed: bool = False) -> str:
    """Durably replace ``path`` with an ``.npz`` archive of ``arrays``.

    The archive bytes are produced by numpy directly into the tmp file
    (zip writing seeks, so the digest is computed by re-reading the
    just-written tmp — still page-cache-hot).  Returns the sha256 of
    the final bytes.
    """
    import numpy as np

    def write(handle: Any) -> None:
        if compressed:
            np.savez_compressed(handle, **arrays)
        else:
            np.savez(handle, **arrays)

    return _atomic_write(Path(path), write, precomputed=None)


def _atomic_write(path: Path, write: Callable[[Any], None],
                  precomputed: str | None, durable: bool = True) -> str:
    """The shared discipline behind every ``atomic_write_*`` function.

    ``write`` fills the open tmp handle; ``precomputed`` carries the
    payload digest when the caller already holds the exact bytes (JSON
    and text), otherwise the tmp file is hashed after writing (npz).
    The activated fault injector (if any) is consulted at each step —
    see the module docstring for the step numbering.  ``durable=False``
    drops steps 2 and 4 (the fsyncs) but keeps every injector hook, so
    the crash-consistency harness exercises volatile writes too.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    injector = _active_injector()
    with open(tmp, "wb") as handle:
        write(handle)
        if injector is not None:
            injector.during_tmp_write(path, tmp, handle)
        if durable:
            _fsync_file(handle)
        else:
            handle.flush()
    digest = precomputed if precomputed is not None else file_sha256(tmp)
    if injector is not None:
        injector.before_replace(path, tmp)
    os.replace(tmp, path)
    if injector is not None:
        injector.after_replace(path)
    if durable:
        _fsync_dir(path.parent)
    return digest


def load_manifest(root: str | Path) -> dict[str, Any] | None:
    """The parsed artifact ledger of ``root``, or None.

    Tolerant by design: a missing manifest (pre-durability run
    directories, hand-built test fixtures) and an unreadable one both
    return None — verification is then simply unavailable and readers
    fall back to content-level checks.  The manifest is metadata about
    artifacts, never the artifact of record itself.
    """
    path = Path(root) / MANIFEST_FILE
    if not path.is_file():
        return None
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if document.get("format") != MANIFEST_FORMAT:
        return None
    artifacts = document.get("artifacts")
    return artifacts if isinstance(artifacts, dict) else None


class ArtifactWriter:
    """Durable writes under one root directory, with a manifest.

    All paths are recorded in the manifest relative to ``root`` (POSIX
    form), so a run directory can be archived or moved wholesale.  The
    manifest is rewritten (durably) after every write; wrap a burst of
    writes in :meth:`batch` to defer that to one rewrite — a crash
    mid-batch leaves the manifest stale, which the recovery reader
    treats as "fall back to the newest artifact that verifies".

    Several writers may share one root (the engine's checkpointer and
    the sharded blocking executor do): every manifest flush re-reads
    the ledger from disk and merges its own dirty entries, so writers
    never clobber each other's records.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._dirty: dict[str, dict[str, Any]] = {}
        self._batch_depth = 0

    # -- path bookkeeping ----------------------------------------------

    def _resolve(self, relpath: str | Path) -> tuple[Path, str]:
        """(absolute path, manifest key) for one artifact path."""
        path = Path(relpath)
        if not path.is_absolute():
            path = self.root / path
        try:
            key = path.resolve().relative_to(
                self.root.resolve()).as_posix()
        except ValueError:
            key = path.name
        return path, key

    # -- writes ---------------------------------------------------------

    def atomic_write_bytes(self, relpath: str | Path,
                           data: bytes) -> Path:
        """Durably write raw bytes and record them in the manifest."""
        path, key = self._resolve(relpath)
        digest = atomic_write_bytes(path, data)
        self._record(key, digest, len(data))
        return path

    def atomic_write_text(self, relpath: str | Path, text: str) -> Path:
        """Durably write UTF-8 text and record it in the manifest."""
        return self.atomic_write_bytes(relpath, text.encode("utf-8"))

    def atomic_write_json(self, relpath: str | Path, document: Any,
                          indent: int | None = None,
                          sort_keys: bool = False) -> Path:
        """Durably write a JSON document and record it in the manifest."""
        return self.atomic_write_text(
            relpath,
            json.dumps(document, indent=indent, sort_keys=sort_keys))

    def atomic_write_npz(self, relpath: str | Path,
                         arrays: dict[str, Any],
                         compressed: bool = False) -> Path:
        """Durably write an ``.npz`` archive and record it."""
        path, key = self._resolve(relpath)
        digest = atomic_write_npz(path, arrays, compressed=compressed)
        self._record(key, digest, path.stat().st_size)
        return path

    def record_file(self, relpath: str | Path) -> str:
        """Manifest an artifact that was written *outside* the writer.

        The escape hatch for bytes that cannot flow through a tmp file
        — memory-mapped spill matrices, whose canonical serialization
        *is* the file on disk.  The caller must have flushed the file
        first (:meth:`repro.plan.spill.SpillManager.flush`); this hashes
        the on-disk bytes and records them.  Returns the sha256.
        """
        path, key = self._resolve(relpath)
        digest = file_sha256(path)
        self._record(key, digest, path.stat().st_size)
        return digest

    # -- manifest -------------------------------------------------------

    def _record(self, key: str, digest: str, nbytes: int) -> None:
        """Stage one manifest entry; flush unless inside a batch."""
        previous = self._dirty.get(key)
        if previous is None:
            ledger = load_manifest(self.root) or {}
            previous = ledger.get(key)
        generation = (int(previous.get("generation", 0)) + 1
                      if isinstance(previous, dict) else 1)
        self._dirty[key] = {
            "sha256": digest,
            "bytes": int(nbytes),
            "generation": generation,
        }
        if self._batch_depth == 0:
            self.flush_manifest()

    def entry(self, relpath: str | Path) -> dict[str, Any] | None:
        """The staged-or-persisted manifest entry for one artifact."""
        _, key = self._resolve(relpath)
        if key in self._dirty:
            return dict(self._dirty[key])
        ledger = load_manifest(self.root) or {}
        value = ledger.get(key)
        return dict(value) if isinstance(value, dict) else None

    def forget(self, relpath: str | Path) -> None:
        """Drop an artifact's manifest entry (pruned generations)."""
        _, key = self._resolve(relpath)
        self._dirty.pop(key, None)
        ledger = load_manifest(self.root)
        if ledger is not None and key in ledger:
            del ledger[key]
            self._write_ledger(ledger)

    def flush_manifest(self) -> None:
        """Merge staged entries into the on-disk ledger, durably."""
        if not self._dirty:
            return
        ledger = load_manifest(self.root) or {}
        ledger.update(self._dirty)
        self._write_ledger(ledger)
        self._dirty.clear()

    def _write_ledger(self, ledger: dict[str, Any]) -> None:
        """One durable rewrite of ``MANIFEST.json``."""
        document = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "artifacts": {key: ledger[key] for key in sorted(ledger)},
        }
        atomic_write_json(self.root / MANIFEST_FILE, document,
                          indent=2, sort_keys=True)

    @contextmanager
    def batch(self):
        """Defer manifest flushes to one rewrite at block exit.

        The engine's checkpointer writes several manifested artifacts
        per checkpoint (the generation file, ``checkpoint.json``, and
        on the first cycle ``candidates.npz``); batching turns their
        ledger rewrites into one.  A crash inside the batch loses only
        manifest *entries* — the artifacts themselves are already
        durable, and recovery falls back past unverifiable ones.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self.flush_manifest()
