"""Simulated crowds.

:class:`SimulatedCrowd` implements the random-worker model of Ipeirotis et
al. / Guo et al. that the paper uses for its own sensitivity analysis
(Section 9.3): every answer is independently flipped with probability
``error_rate``.  :class:`PerfectCrowd` is the 0%-error special case and
:class:`HeterogeneousCrowd` draws a per-worker error rate, modelling a mix
of careful workers and spammers.

Every platform here defaults to a *fixed-seed* generator
(``np.random.default_rng(0)``) when no ``rng`` is passed — the
determinism contract (corlint CL001) forbids ambient entropy in crowd
code, so even a casually constructed crowd replays bit-identically.
Pass your own seeded Generator for independent answer streams.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Sequence

import numpy as np

from ..data.pairs import Pair
from ..exceptions import CrowdError
from .base import CrowdPlatform, WorkerAnswer

Oracle = Callable[[Pair], bool]
"""Ground truth: maps a pair to its true matched/unmatched label."""


class _StatefulCrowd(CrowdPlatform):
    """Shared answer-stream state capture for the simulated platforms.

    The staged execution engine checkpoints any platform exposing
    ``state_dict()`` / ``load_state()`` (duck-typed), so that a resumed
    run draws the *same* noisy answers the uninterrupted run would have
    — without it, a noisy crowd's RNG would restart and diverge.
    """

    _rng: np.random.Generator
    _answers_given: int

    def state_dict(self) -> dict:
        """The platform's answer-stream state (JSON-compatible)."""
        return {
            "rng": self._rng.bit_generator.state,
            "answers_given": self._answers_given,
        }

    def load_state(self, state: dict) -> None:
        """Restore answer-stream state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self._answers_given = int(state["answers_given"])


def oracle_from_matches(matches: Collection[Pair]) -> Oracle:
    """Build an oracle from the set of true matching pairs."""
    match_set = {Pair(*pair) for pair in matches}
    return lambda pair: Pair(*pair) in match_set


class SimulatedCrowd(_StatefulCrowd):
    """Random-worker crowd with one fixed error rate for all workers."""

    def __init__(self, oracle: Oracle | Collection[Pair],
                 error_rate: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        if not callable(oracle):
            oracle = oracle_from_matches(oracle)
        if not 0.0 <= error_rate <= 1.0:
            raise CrowdError("error_rate must be in [0, 1]")
        self._oracle: Oracle = oracle
        self.error_rate = error_rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._answers_given = 0

    @property
    def answers_given(self) -> int:
        """Total single-worker answers produced so far."""
        return self._answers_given

    def true_label(self, pair: Pair) -> bool:
        """Ground-truth label (used by evaluation code, never by Corleone)."""
        return self._oracle(pair)

    def ask(self, pair: Pair) -> WorkerAnswer:
        truth = self._oracle(pair)
        flip = self._rng.random() < self.error_rate
        self._answers_given += 1
        return WorkerAnswer(pair, truth != flip, worker_id=self._answers_given)


class PerfectCrowd(SimulatedCrowd):
    """A crowd that always answers correctly (0% error rate)."""

    def __init__(self, oracle: Oracle | Collection[Pair],
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(oracle, error_rate=0.0, rng=rng)


class BiasedCrowd(_StatefulCrowd):
    """A crowd with *asymmetric* error rates.

    Real EM workers miss matches more often than they invent them: a
    subtly different product pair gets a lazy "no" far more readily than
    a clearly distinct pair gets a "yes".  This platform models that
    with separate false-negative and false-positive rates, stressing the
    §8 voting analysis (which the paper develops under symmetric noise).
    """

    def __init__(self, oracle: Oracle | Collection[Pair],
                 false_negative_rate: float = 0.15,
                 false_positive_rate: float = 0.02,
                 rng: np.random.Generator | None = None) -> None:
        if not callable(oracle):
            oracle = oracle_from_matches(oracle)
        for name, rate in (("false_negative_rate", false_negative_rate),
                           ("false_positive_rate", false_positive_rate)):
            if not 0.0 <= rate <= 1.0:
                raise CrowdError(f"{name} must be in [0, 1]")
        self._oracle: Oracle = oracle
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._answers_given = 0

    @property
    def answers_given(self) -> int:
        """Total single-worker answers produced so far."""
        return self._answers_given

    def true_label(self, pair: Pair) -> bool:
        """Ground-truth label (evaluation only, never used by Corleone)."""
        return self._oracle(pair)

    def ask(self, pair: Pair) -> WorkerAnswer:
        """One answer, flipped at the class-conditional error rate."""
        truth = self._oracle(pair)
        rate = (self.false_negative_rate if truth
                else self.false_positive_rate)
        flip = self._rng.random() < rate
        self._answers_given += 1
        return WorkerAnswer(pair, truth != flip,
                            worker_id=self._answers_given)


class HeterogeneousCrowd(_StatefulCrowd):
    """A pool of workers with individually drawn error rates.

    Each question is routed to a uniformly random worker from the pool,
    so answer quality varies question to question — a closer model of a
    real AMT population than a single global error rate.
    """

    def __init__(self, oracle: Oracle | Collection[Pair],
                 worker_error_rates: Sequence[float],
                 rng: np.random.Generator | None = None) -> None:
        if not callable(oracle):
            oracle = oracle_from_matches(oracle)
        if not worker_error_rates:
            raise CrowdError("worker pool must not be empty")
        rates = [float(r) for r in worker_error_rates]
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise CrowdError("every worker error rate must be in [0, 1]")
        self._oracle: Oracle = oracle
        self._rates = rates
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._answers_given = 0

    @property
    def answers_given(self) -> int:
        """Total single-worker answers produced so far."""
        return self._answers_given

    def true_label(self, pair: Pair) -> bool:
        """Ground-truth label (evaluation only, never used by Corleone)."""
        return self._oracle(pair)

    def ask(self, pair: Pair) -> WorkerAnswer:
        """One answer from a uniformly chosen worker of the pool."""
        worker = int(self._rng.integers(len(self._rates)))
        truth = self._oracle(pair)
        flip = self._rng.random() < self._rates[worker]
        self._answers_given += 1
        return WorkerAnswer(pair, truth != flip, worker_id=worker)
