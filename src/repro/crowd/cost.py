"""Cost accounting for crowdsourced labelling.

Tracks every unit the paper reports: dollars spent (answers times
per-question price), distinct pairs labelled (the "# Pairs" columns of
Tables 2-4), total single-worker answers, and HITs posted.  Supports
named checkpoints so the pipeline can attribute cost to each step
(blocking vs matching vs estimation vs reduction).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..exceptions import BudgetExhaustedError


@dataclass
class CostSnapshot:
    """Cumulative totals at one point in time."""

    dollars: float = 0.0
    answers: int = 0
    pairs_labeled: int = 0
    hits: int = 0

    def minus(self, earlier: "CostSnapshot") -> "CostSnapshot":
        """The delta between this snapshot and an earlier one."""
        return CostSnapshot(
            dollars=self.dollars - earlier.dollars,
            answers=self.answers - earlier.answers,
            pairs_labeled=self.pairs_labeled - earlier.pairs_labeled,
            hits=self.hits - earlier.hits,
        )


class CostTracker:
    """Accumulates crowdsourcing cost, optionally under a budget cap."""

    def __init__(self, price_per_question: float = 0.01,
                 budget: float | None = None) -> None:
        self.price_per_question = price_per_question
        self.budget = budget
        self._dollars = 0.0
        self._answers = 0
        self._pairs_labeled = 0
        self._hits = 0
        self.on_spend: Callable[[int, float], None] | None = None
        """Optional observer called as ``on_spend(answers, dollars)``
        after every paid batch of answers (the engine's ``budget_spent``
        event hook)."""
        self.on_hits: Callable[[int], None] | None = None
        """Optional observer called as ``on_hits(n_hits)`` after HITs
        are metered (the telemetry layer's HITs-posted counter)."""

    @property
    def dollars(self) -> float:
        return self._dollars

    @property
    def answers(self) -> int:
        return self._answers

    @property
    def pairs_labeled(self) -> int:
        return self._pairs_labeled

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def remaining_budget(self) -> float | None:
        if self.budget is None:
            return None
        return max(0.0, self.budget - self._dollars)

    def check_budget(self) -> None:
        """Raise :class:`BudgetExhaustedError` if the budget is spent."""
        if self.budget is not None and self._dollars >= self.budget:
            raise BudgetExhaustedError(self._dollars, self.budget)

    def record_answers(self, n_answers: int) -> None:
        """Record ``n_answers`` paid single-worker answers."""
        self._answers += n_answers
        self._dollars += n_answers * self.price_per_question
        if self.on_spend is not None and n_answers:
            self.on_spend(n_answers, n_answers * self.price_per_question)

    def record_pair(self) -> None:
        """Record that one new distinct pair obtained a crowd label."""
        self._pairs_labeled += 1

    def record_hits(self, n_hits: int) -> None:
        """Record that ``n_hits`` HITs were posted to the platform."""
        self._hits += n_hits
        if self.on_hits is not None and n_hits:
            self.on_hits(n_hits)

    def snapshot(self) -> CostSnapshot:
        """Capture the current totals (for per-step cost attribution)."""
        return CostSnapshot(
            dollars=self._dollars,
            answers=self._answers,
            pairs_labeled=self._pairs_labeled,
            hits=self._hits,
        )

    def state_dict(self) -> dict[str, Any]:
        """The tracker's counters as a JSON-compatible dict.

        ``budget`` is deliberately excluded: the run-level budget comes
        from the configuration on resume, and phase contexts re-derive
        their temporary clamps (see
        :class:`~repro.core.budgeting.PhaseBudgetManager`).
        """
        return {
            "dollars": self._dollars,
            "answers": self._answers,
            "pairs_labeled": self._pairs_labeled,
            "hits": self._hits,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        self._dollars = float(state["dollars"])
        self._answers = int(state["answers"])
        self._pairs_labeled = int(state["pairs_labeled"])
        self._hits = int(state["hits"])
