"""Cost accounting for crowdsourced labelling.

Tracks every unit the paper reports: dollars spent (answers times
per-question price), distinct pairs labelled (the "# Pairs" columns of
Tables 2-4), total single-worker answers, and HITs posted.  Supports
named checkpoints so the pipeline can attribute cost to each step
(blocking vs matching vs estimation vs reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import BudgetExhaustedError


@dataclass
class CostSnapshot:
    """Cumulative totals at one point in time."""

    dollars: float = 0.0
    answers: int = 0
    pairs_labeled: int = 0
    hits: int = 0

    def minus(self, earlier: "CostSnapshot") -> "CostSnapshot":
        """The delta between this snapshot and an earlier one."""
        return CostSnapshot(
            dollars=self.dollars - earlier.dollars,
            answers=self.answers - earlier.answers,
            pairs_labeled=self.pairs_labeled - earlier.pairs_labeled,
            hits=self.hits - earlier.hits,
        )


class CostTracker:
    """Accumulates crowdsourcing cost, optionally under a budget cap."""

    def __init__(self, price_per_question: float = 0.01,
                 budget: float | None = None) -> None:
        self.price_per_question = price_per_question
        self.budget = budget
        self._dollars = 0.0
        self._answers = 0
        self._pairs_labeled = 0
        self._hits = 0

    @property
    def dollars(self) -> float:
        return self._dollars

    @property
    def answers(self) -> int:
        return self._answers

    @property
    def pairs_labeled(self) -> int:
        return self._pairs_labeled

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def remaining_budget(self) -> float | None:
        if self.budget is None:
            return None
        return max(0.0, self.budget - self._dollars)

    def check_budget(self) -> None:
        """Raise :class:`BudgetExhaustedError` if the budget is spent."""
        if self.budget is not None and self._dollars >= self.budget:
            raise BudgetExhaustedError(self._dollars, self.budget)

    def record_answers(self, n_answers: int) -> None:
        """Record ``n_answers`` paid single-worker answers."""
        self._answers += n_answers
        self._dollars += n_answers * self.price_per_question

    def record_pair(self) -> None:
        """Record that one new distinct pair obtained a crowd label."""
        self._pairs_labeled += 1

    def record_hits(self, n_hits: int) -> None:
        """Record that ``n_hits`` HITs were posted to the platform."""
        self._hits += n_hits

    def snapshot(self) -> CostSnapshot:
        """Capture the current totals (for per-step cost attribution)."""
        return CostSnapshot(
            dollars=self._dollars,
            answers=self._answers,
            pairs_labeled=self._pairs_labeled,
            hits=self._hits,
        )
