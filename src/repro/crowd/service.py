"""The labelling service: cache + HIT packing + aggregation + budget.

Every Corleone module labels pairs through one shared
:class:`LabelingService` (Section 8).  The service:

* caches labels and reuses them when a later step asks for the same pair
  with a scheme the cached label satisfies;
* packs uncached questions into HITs of ``questions_per_hit`` (10),
  applying the paper's rule that partial HITs are not posted when a batch
  is partly cache-served — except that a batch which would otherwise
  return *nothing* is posted as one padded HIT, so callers can always make
  progress (documented deviation for generality);
* aggregates noisy answers with the 2+1 / strong / asymmetric schemes;
* meters cost and enforces an optional budget.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..config import CrowdConfig
from ..data.pairs import Pair
from ..exceptions import (
    BudgetExhaustedError,
    CrowdError,
    CrowdUnavailableError,
)
from .aggregation import VoteScheme, aggregate
from .base import CrowdPlatform
from .cost import CostTracker


class _CountingPlatform(CrowdPlatform):
    """Pass-through proxy that counts consumed answers (for retry cost)."""

    def __init__(self, inner: CrowdPlatform) -> None:
        self._inner = inner
        self.asked = 0

    def ask(self, pair: Pair):
        """Forward to the wrapped platform, counting the answer."""
        answer = self._inner.ask(pair)
        self.asked += 1
        return answer


@dataclass(frozen=True)
class CachedLabel:
    """A cached crowd label and the strength it was obtained with."""

    label: bool
    strong: bool
    """True if a strong-majority standard backed this label."""


def _satisfies(entry: CachedLabel, scheme: VoteScheme) -> bool:
    """Does a cached entry meet the standard ``scheme`` requires?"""
    if scheme is VoteScheme.MAJORITY_2PLUS1:
        return True
    if scheme is VoteScheme.STRONG_MAJORITY:
        return entry.strong
    # Asymmetric: only positives need the strong standard.
    return entry.strong or not entry.label


def _entry_for(label: bool, scheme: VoteScheme) -> CachedLabel:
    """The cache entry recorded after labelling under ``scheme``."""
    if scheme is VoteScheme.MAJORITY_2PLUS1:
        return CachedLabel(label, strong=False)
    if scheme is VoteScheme.STRONG_MAJORITY:
        return CachedLabel(label, strong=True)
    # Asymmetric: positives were escalated, negatives stayed at 2+1.
    return CachedLabel(label, strong=label)


class LabelingService:
    """Labels pairs through a crowd platform with caching and budgeting."""

    def __init__(self, platform: CrowdPlatform, config: CrowdConfig,
                 tracker: CostTracker | None = None) -> None:
        self.platform = platform
        self.config = config
        self.tracker = tracker if tracker is not None else CostTracker(
            price_per_question=config.price_per_question
        )
        self._cache: dict[Pair, CachedLabel] = {}
        self.on_label: Callable[[Pair, bool, bool], None] | None = None
        """Optional observer called as ``on_label(pair, label, strong)``
        after every freshly purchased label (the engine's
        ``labels_purchased`` event hook).  Cache hits and injected seeds
        do not fire it — only labels the crowd was actually paid for."""

    # ------------------------------------------------------------------
    # Cache access
    # ------------------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def cached_label(self, pair: Pair) -> bool | None:
        """The cached label for ``pair``, if any (any strength)."""
        entry = self._cache.get(Pair(*pair))
        return entry.label if entry is not None else None

    def labeled_pairs(self) -> dict[Pair, bool]:
        """All labels obtained so far (a copy)."""
        return {pair: entry.label for pair, entry in self._cache.items()}

    def reliable_labels(self, scheme: VoteScheme) -> dict[Pair, bool]:
        """Cached labels that meet the standard ``scheme`` requires.

        §8's cache rule: a label may be reused only if it was "labeled
        the way we want".  Statistics that demand strong-majority
        positives (rule evaluation, estimation) must seed from this view
        rather than :meth:`labeled_pairs`, or a wrong 2+1 label from
        active learning can circularly certify the very rule that was
        overfit to it.
        """
        return {
            pair: entry.label
            for pair, entry in self._cache.items()
            if _satisfies(entry, scheme)
        }

    def positive_pairs(self) -> set[Pair]:
        """Pairs the crowd has labelled positive — the set T of §4.2."""
        return {p for p, entry in self._cache.items() if entry.label}

    def seed(self, labels: dict[Pair, bool], strong: bool = True) -> None:
        """Inject known labels (e.g. the user's four seed examples)."""
        for pair, label in labels.items():
            self._cache[Pair(*pair)] = CachedLabel(label, strong=strong)

    def cache_state(self) -> list[list]:
        """The cache as JSON-compatible rows, in insertion order.

        Each row is ``[a_id, b_id, label, strong]``.  Insertion order is
        preserved exactly so that a restored cache iterates identically
        to the original — part of the bit-identical resume contract.
        """
        return [
            [pair.a_id, pair.b_id, entry.label, entry.strong]
            for pair, entry in self._cache.items()
        ]

    def restore_cache(self, rows: Iterable[Sequence]) -> None:
        """Replace the cache with rows saved by :meth:`cache_state`."""
        self._cache = {
            Pair(str(a), str(b)): CachedLabel(bool(label), strong=bool(strong))
            for a, b, label, strong in rows
        }

    # ------------------------------------------------------------------
    # Labelling
    # ------------------------------------------------------------------

    def label_batch(self, pairs: Sequence[Pair],
                    scheme: VoteScheme = VoteScheme.ASYMMETRIC) -> dict[Pair, bool]:
        """Label a batch with the paper's HIT-packing rule (§8 item 3).

        Cached pairs are served for free.  Uncached pairs are posted only
        in complete HITs of ``questions_per_hit``; a trailing partial HIT
        is dropped when the batch already returns something, and posted
        (padded) only when the batch would otherwise be empty.

        Returns a label for every pair that was served; the caller must
        tolerate receiving fewer labels than requested.
        """
        pairs = [Pair(*p) for p in pairs]
        result: dict[Pair, bool] = {}
        uncached: list[Pair] = []
        for pair in pairs:
            entry = self._cache.get(pair)
            if entry is not None and _satisfies(entry, scheme):
                result[pair] = entry.label
            elif pair not in uncached:
                uncached.append(pair)

        per_hit = self.config.questions_per_hit
        n_full = len(uncached) // per_hit
        to_label = uncached[: n_full * per_hit]
        if not to_label and not result and uncached:
            # Nothing cached and no full HIT: post the remainder anyway so
            # the caller can make progress.
            to_label = uncached
            n_full = 1
        if to_label:
            # HITs are metered *after* their questions are consumed, so
            # a padded HIT that expires mid-flight and is reposted by the
            # gateway is not double-charged here: the repost fee is the
            # gateway's, and this charge always equals the questions the
            # platform actually served (ceil over HIT size).
            served = 0
            try:
                for pair in to_label:
                    result[pair] = self._label_one(pair, scheme)
                    served += 1
            finally:
                if served:
                    self.tracker.record_hits(-(-served // per_hit))
        return result

    def label_all(self, pairs: Iterable[Pair],
                  scheme: VoteScheme = VoteScheme.ASYMMETRIC) -> dict[Pair, bool]:
        """Label *every* given pair (cache-served or freshly solicited).

        Used where the algorithm needs complete coverage of a specific
        sample, e.g. the estimator's probes; HITs are padded as needed.
        """
        pairs = [Pair(*p) for p in pairs]
        result: dict[Pair, bool] = {}
        fresh = 0
        try:
            for pair in pairs:
                entry = self._cache.get(pair)
                if entry is not None and _satisfies(entry, scheme):
                    result[pair] = entry.label
                else:
                    result[pair] = self._label_one(pair, scheme)
                    fresh += 1
        finally:
            # Metered after consumption (like label_batch) so an aborted
            # batch is charged only for questions actually served.
            if fresh:
                per_hit = self.config.questions_per_hit
                self.tracker.record_hits(-(-fresh // per_hit))
        return result

    def _label_one(self, pair: Pair, scheme: VoteScheme) -> bool:
        """Aggregate fresh answers for one pair, meter cost, cache it.

        Transient platform failures are retried
        (``max_platform_retries`` per question); answers consumed by a
        failed aggregation attempt are still paid for — the workers
        answered even if the platform then hiccuped.
        """
        self.tracker.check_budget()
        counter = _CountingPlatform(self.platform)
        attempts = self.config.max_platform_retries + 1
        for attempt in range(attempts):
            consumed_before = counter.asked
            try:
                label, _ = aggregate(
                    counter, pair, scheme,
                    gap=self.config.strong_majority_gap,
                    max_answers=self.config.strong_majority_max,
                )
                break
            except BudgetExhaustedError:
                raise
            except CrowdUnavailableError:
                # The gateway's circuit is open: retrying here would just
                # hammer a dead platform.  Pay for answers already served
                # and let the engine degrade to its last checkpoint.
                self.tracker.record_answers(
                    counter.asked - consumed_before
                )
                raise
            except CrowdError:
                # Workers who answered before the failure still get paid.
                self.tracker.record_answers(
                    counter.asked - consumed_before
                )
                if attempt == attempts - 1:
                    raise
        self.tracker.record_answers(counter.asked - consumed_before)
        if pair not in self._cache:
            self.tracker.record_pair()
        entry = _entry_for(label, scheme)
        self._cache[pair] = entry
        if self.on_label is not None:
            self.on_label(pair, entry.label, entry.strong)
        return label
