"""The resilient labelling gateway: retry, backoff, repost, break.

:class:`ResilientCrowd` sits between the
:class:`~repro.crowd.service.LabelingService` and a (possibly faulty)
platform and makes the labelling path survive the realistic failure
taxonomy of :mod:`repro.crowd.faults`:

* **per-question timeout** — an :class:`AnswerTimeoutError` charges the
  full question deadline to the shared simulated clock before retrying
  (we waited that long for nothing);
* **capped exponential backoff** with *deterministic* jitter — the
  jitter draws come from the gateway's own seeded stream, and every
  delay advances the :class:`~repro.crowd.latency.SimulatedClock`
  shared with :class:`~repro.crowd.latency.TimedCrowd`, never wall time
  (CL001);
* **HIT reposting** — a :class:`HitExpiredError` reposts the question
  as a fresh HIT, metered in the :class:`~repro.crowd.cost.CostTracker`
  so reposted spend shows up in the run's cost report;
* **a circuit breaker** — after ``failure_threshold`` consecutive
  platform failures the circuit opens and the gateway raises a typed
  :class:`CrowdUnavailableError`; the engine's last checkpoint is on
  disk, so :meth:`~repro.core.pipeline.Corleone.resume` continues the
  run once the platform recovers.  After ``cooldown_seconds`` of
  simulated time the breaker goes *half-open* and lets one trial
  question through.

Every hook (``on_retry`` / ``on_repost`` / ``on_circuit_open``) is
wired to the engine's event bus by
:class:`~repro.engine.context.RunContext`, surfacing the
``retry_scheduled`` / ``hit_reposted`` / ``circuit_opened`` events; see
``docs/robustness.md`` for the full state machine.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..data.pairs import Pair
from ..exceptions import (
    AnswerTimeoutError,
    BudgetExhaustedError,
    ConfigurationError,
    CrowdUnavailableError,
    HitExpiredError,
    TransientCrowdError,
)
from .base import CrowdPlatform, WorkerAnswer
from .cost import CostTracker
from .latency import SimulatedClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import GatewayConfig

CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half_open"

RetryObserver = Callable[[str, int, float], None]
"""``on_retry(kind, attempt, delay_seconds)`` — a retry was scheduled."""

RepostObserver = Callable[[Pair, int], None]
"""``on_repost(pair, attempt)`` — an expired HIT was reposted."""

CircuitObserver = Callable[[int], None]
"""``on_circuit_open(failures)`` — the circuit breaker just opened."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter."""

    max_attempts: int = 5
    """Total tries per question (first attempt + retries)."""

    base_delay_seconds: float = 30.0
    """Backoff delay before the first retry."""

    backoff_factor: float = 2.0
    """Multiplier applied to the delay per further retry."""

    max_delay_seconds: float = 600.0
    """Cap on any single backoff delay."""

    jitter_fraction: float = 0.1
    """Delays are perturbed by up to this fraction either way, drawn
    from the gateway's own seeded stream (deterministic jitter)."""

    question_timeout_seconds: float = 300.0
    """Simulated time charged for a question whose answer never arrived
    (the per-HIT deadline the gateway waited out)."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")
        if self.question_timeout_seconds < 0:
            raise ConfigurationError(
                "question_timeout_seconds must be >= 0"
            )

    def delay_seconds(self, attempt: int,
                      rng: np.random.Generator) -> float:
        """The backoff delay before retry number ``attempt`` (0-based).

        Capped exponential, then jittered by a draw from ``rng`` — one
        draw per scheduled retry, so identical seeds yield bit-identical
        retry schedules.
        """
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0")
        delay = min(self.max_delay_seconds,
                    self.base_delay_seconds * self.backoff_factor ** attempt)
        if self.jitter_fraction:
            swing = self.jitter_fraction * (2.0 * float(rng.random()) - 1.0)
            delay *= 1.0 + swing
        return delay


class CircuitBreaker:
    """The gateway's closed / open / half-open failure state machine.

    Closed: questions flow, consecutive failures are counted.  Open:
    questions are rejected until ``cooldown_seconds`` of *simulated*
    time pass.  Half-open: one trial question is allowed; success closes
    the circuit, failure re-opens it (and restarts the cooldown).
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown_seconds: float = 3600.0,
                 clock: SimulatedClock | None = None) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock if clock is not None else SimulatedClock()
        self._failures = 0
        self._open = False
        self._opened_at = 0.0
        self._trial_pending = False

    @property
    def consecutive_failures(self) -> int:
        """Platform failures since the last successful answer."""
        return self._failures

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half_open`` (cooldown elapsed)."""
        if not self._open:
            return CIRCUIT_CLOSED
        if self.clock.now - self._opened_at >= self.cooldown_seconds:
            return CIRCUIT_HALF_OPEN
        return CIRCUIT_OPEN

    def allow(self) -> bool:
        """May a question be attempted right now?

        Half-open admits exactly one in-flight trial; its outcome
        (``record_success`` / ``record_failure``) decides what happens
        next.
        """
        state = self.state
        if state == CIRCUIT_CLOSED:
            return True
        if state == CIRCUIT_HALF_OPEN and not self._trial_pending:
            self._trial_pending = True
            return True
        return False

    def record_success(self) -> None:
        """An answer arrived: close the circuit, reset the count."""
        self._failures = 0
        self._open = False
        self._trial_pending = False

    def record_failure(self) -> bool:
        """One platform failure; returns True if the circuit just opened.

        A failed half-open trial re-opens immediately (and restarts the
        cooldown); a closed circuit opens once the consecutive-failure
        count reaches the threshold.
        """
        self._failures += 1
        was_open = self._open
        if self._trial_pending:
            self._trial_pending = False
            self._opened_at = self.clock.now
            return False  # re-opened, not newly opened
        if not self._open and self._failures >= self.failure_threshold:
            self._open = True
            self._opened_at = self.clock.now
        return self._open and not was_open

    def state_dict(self) -> dict:
        """The breaker's state (JSON-compatible)."""
        return {
            "failures": self._failures,
            "open": self._open,
            "opened_at": self._opened_at,
            "trial_pending": self._trial_pending,
        }

    def load_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._failures = int(state["failures"])
        self._open = bool(state["open"])
        self._opened_at = float(state["opened_at"])
        self._trial_pending = bool(state["trial_pending"])


def find_clock(platform: CrowdPlatform) -> SimulatedClock | None:
    """The first :class:`SimulatedClock` down a decorator stack, if any.

    Lets the gateway share the clock a :class:`TimedCrowd` somewhere
    below it already accounts answer latency on.
    """
    node: object = platform
    while node is not None:
        clock = getattr(node, "clock", None)
        if isinstance(clock, SimulatedClock):
            return clock
        node = getattr(node, "_inner", None)
    return None


class ResilientCrowd(CrowdPlatform):
    """The retry/backoff/repost/circuit-breaker gateway platform.

    Wraps any platform (usually a :class:`~repro.crowd.faults.FaultyCrowd`
    or :class:`~repro.crowd.latency.TimedCrowd` stack) and guarantees its
    caller one of exactly two outcomes per ``ask``: a
    :class:`WorkerAnswer`, or a typed error —
    :class:`CrowdUnavailableError` once the breaker opens,
    :class:`BudgetExhaustedError` passed through untouched, or the last
    :class:`TransientCrowdError` if retries ran out while the circuit
    stayed closed.
    """

    def __init__(self, inner: CrowdPlatform,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 clock: SimulatedClock | None = None,
                 rng: np.random.Generator | None = None,
                 tracker: CostTracker | None = None) -> None:
        self._inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        if clock is None:
            clock = find_clock(inner)
        self.clock = clock if clock is not None else SimulatedClock()
        if breaker is None:
            breaker = CircuitBreaker(clock=self.clock)
        else:
            breaker.clock = self.clock
        self.breaker = breaker
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.tracker = tracker  # corlint: derived
        """Bound by :class:`~repro.engine.context.RunContext` so reposted
        HITs are metered in the run's cost ledger — a rebindable
        dependency, re-injected on resume rather than serialized."""
        self.retries_scheduled = 0
        self.hits_reposted = 0
        self.answers_recovered = 0
        """Answers that arrived only after at least one retry."""
        self.retry_seconds = 0.0
        """Simulated time spent waiting on timeouts and backoff."""
        self.on_retry: RetryObserver | None = None
        self.on_repost: RepostObserver | None = None
        self.on_circuit_open: CircuitObserver | None = None

    @classmethod
    def from_config(cls, inner: CrowdPlatform, config: "GatewayConfig",
                    **kwargs: object) -> "ResilientCrowd":
        """Build a gateway from a :class:`~repro.config.GatewayConfig`."""
        policy = RetryPolicy(
            max_attempts=config.max_attempts,
            base_delay_seconds=config.base_delay_seconds,
            backoff_factor=config.backoff_factor,
            max_delay_seconds=config.max_delay_seconds,
            jitter_fraction=config.jitter_fraction,
            question_timeout_seconds=config.question_timeout_seconds,
        )
        gateway = cls(inner, policy=policy, **kwargs)  # type: ignore[arg-type]
        gateway.breaker.failure_threshold = config.failure_threshold
        gateway.breaker.cooldown_seconds = config.cooldown_seconds
        return gateway

    @property
    def inner(self) -> CrowdPlatform:
        """The wrapped platform."""
        return self._inner

    def bind_tracker(self, tracker: CostTracker) -> None:
        """Meter reposted HITs into ``tracker`` from now on."""
        self.tracker = tracker

    # ------------------------------------------------------------------
    # The answer path
    # ------------------------------------------------------------------

    def ask(self, pair: Pair) -> WorkerAnswer:
        """One answer for ``pair``, retried/reposted as needed."""
        last_error: TransientCrowdError | None = None
        for attempt in range(self.policy.max_attempts):
            if not self.breaker.allow():
                raise CrowdUnavailableError(
                    self.breaker.consecutive_failures,
                    "crowd platform unavailable: circuit is open "
                    f"(cooldown {self.breaker.cooldown_seconds:.0f}s on "
                    "the simulated clock)",
                )
            try:
                answer = self._inner.ask(pair)
            except BudgetExhaustedError:
                # Money running out is the caller's concern, not a
                # platform failure; never counts against the breaker.
                raise
            except TransientCrowdError as error:
                last_error = error
                if self._note_failure(pair, error, attempt):
                    # The breaker just opened: degrade, don't retry.
                    if self.on_circuit_open is not None:
                        self.on_circuit_open(
                            self.breaker.consecutive_failures
                        )
                    raise CrowdUnavailableError(
                        self.breaker.consecutive_failures
                    ) from error
                if attempt + 1 < self.policy.max_attempts:
                    self._schedule_retry(error, attempt)
                continue
            self.breaker.record_success()
            if attempt > 0:
                self.answers_recovered += 1
            return answer
        assert last_error is not None
        raise last_error

    def _note_failure(self, pair: Pair, error: TransientCrowdError,
                      attempt: int) -> bool:
        """Account one platform failure: clock, breaker, reposting.

        Returns True when this failure opened the circuit breaker.
        """
        if isinstance(error, AnswerTimeoutError):
            # We waited the full question deadline for nothing.
            waited = self.policy.question_timeout_seconds
            self.clock.advance(waited)
            self.retry_seconds += waited
        if isinstance(error, HitExpiredError):
            # The HIT died; repost it as a fresh one (and pay the fee).
            self.hits_reposted += 1
            if self.tracker is not None:
                self.tracker.record_hits(1)
            if self.on_repost is not None:
                self.on_repost(pair, attempt)
        return self.breaker.record_failure()

    def _schedule_retry(self, error: TransientCrowdError,
                        attempt: int) -> None:
        """Back off (on the simulated clock) before the next attempt."""
        delay = self.policy.delay_seconds(attempt, self._rng)
        self.clock.advance(delay)
        self.retry_seconds += delay
        self.retries_scheduled += 1
        if self.on_retry is not None:
            self.on_retry(type(error).__name__, attempt, delay)

    # ------------------------------------------------------------------
    # Checkpoint support (duck-typed by the engine's Checkpointer)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """The gateway's full state (JSON-compatible)."""
        state: dict = {
            "rng": self._rng.bit_generator.state,
            "breaker": self.breaker.state_dict(),
            "clock": self.clock.state_dict(),
            "retries_scheduled": self.retries_scheduled,
            "hits_reposted": self.hits_reposted,
            "answers_recovered": self.answers_recovered,
            "retry_seconds": self.retry_seconds,
        }
        if hasattr(self._inner, "state_dict"):
            state["inner"] = self._inner.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self.breaker.load_state(state["breaker"])
        self.clock.load_state(state["clock"])
        self.retries_scheduled = int(state["retries_scheduled"])
        self.hits_reposted = int(state["hits_reposted"])
        self.answers_recovered = int(state["answers_recovered"])
        self.retry_seconds = float(state["retry_seconds"])
        if "inner" in state and hasattr(self._inner, "load_state"):
            self._inner.load_state(state["inner"])
